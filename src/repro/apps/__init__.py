"""Applications on the token substrate: distributed mutual exclusion,
totally-ordered broadcast, and round-robin scheduling — the use cases the
paper's introduction motivates."""

from repro.apps.broadcast import TotalOrderBroadcast
from repro.apps.groups import GroupEvent, ViewSynchronousGroup
from repro.apps.mutex import SimMutex
from repro.apps.scheduler import RoundRobinScheduler

__all__ = ["GroupEvent", "RoundRobinScheduler", "SimMutex",
           "TotalOrderBroadcast", "ViewSynchronousGroup"]
