"""View-synchronous group messaging — the GCS the paper motivates.

Section 1 presents group communication services as the flagship use of
logical token rings (citing Totem's single-ring protocol).  This app
composes the repository's pieces into a small GCS with the two guarantees
such services advertise:

- **total order** — messages are delivered to every member in one global
  order (the token possession order, exactly as in
  :class:`~repro.apps.broadcast.TotalOrderBroadcast`);
- **view synchrony** — membership changes are delivered as *view events*
  inside the same total order, so every member sees precisely the same
  sequence of messages and views, and any two members agree on which
  messages were delivered in which view.

Views are installed through the token itself: a membership change is
submitted as a special view-change message which, when its turn in the
total order comes, atomically flips the current view.  Because the order
is total, no member can deliver a message in the wrong view — the
view-synchrony argument is one line, which is the paper's point about
building on components with orthogonal guarantees.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.cluster import Cluster
from repro.errors import MembershipError, ProtocolError

__all__ = ["GroupEvent", "ViewSynchronousGroup"]


class GroupEvent:
    """One delivered event: either an application message or a view."""

    __slots__ = ("seq", "kind", "view_id", "sender", "payload", "members")

    def __init__(self, seq: int, kind: str, view_id: int,
                 sender: Optional[int] = None, payload: object = None,
                 members: Tuple[int, ...] = ()) -> None:
        self.seq = seq
        self.kind = kind            # "message" | "view"
        self.view_id = view_id
        self.sender = sender
        self.payload = payload
        self.members = members

    def __repr__(self) -> str:
        if self.kind == "view":
            return f"View(#{self.seq}, v{self.view_id}, {self.members})"
        return f"Msg(#{self.seq}, v{self.view_id}, from {self.sender})"

    def __eq__(self, other) -> bool:
        return (isinstance(other, GroupEvent)
                and (self.seq, self.kind, self.view_id, self.sender,
                     self.payload, self.members)
                == (other.seq, other.kind, other.view_id, other.sender,
                    other.payload, other.members))


class ViewSynchronousGroup:
    """Totally-ordered, view-synchronous messaging over a DES cluster."""

    def __init__(self, cluster: Cluster, delivery_delay: float = 1.0) -> None:
        if cluster.config.hold_until_release:
            raise ProtocolError(
                "ViewSynchronousGroup requires auto-release grants"
            )
        self.cluster = cluster
        self.delivery_delay = delivery_delay
        self._members: Tuple[int, ...] = tuple(range(cluster.n))
        self._view_id = 0
        self._next_seq = 0
        self._outbox: Dict[int, List[object]] = {}
        self._pending_views: Dict[int, List[Tuple[str, int]]] = {}
        #: The agreed global event sequence.
        self.history: List[GroupEvent] = []
        #: Per-member delivered logs (only members of the event's view
        #: receive it).
        self.logs: Dict[int, List[GroupEvent]] = {
            node: [] for node in range(cluster.n)
        }
        cluster.on_grant(self._on_grant)

    # -- application interface --------------------------------------------------

    @property
    def view(self) -> Tuple[int, Tuple[int, ...]]:
        """The current (view id, members)."""
        return self._view_id, self._members

    def send(self, node: int, payload: object) -> None:
        """Multicast ``payload`` from ``node`` to the group, totally
        ordered and stamped with the view current at delivery time."""
        if node not in self._members:
            raise MembershipError(f"node {node} is not in the current view")
        self._outbox.setdefault(node, []).append(payload)
        self.cluster.request(node)

    def request_leave(self, node: int) -> None:
        """Ask for a view without ``node`` (installed in total order)."""
        if node not in self._members:
            raise MembershipError(f"node {node} is not in the current view")
        if len(self._members) == 1:
            raise MembershipError("cannot empty the group")
        self._pending_views.setdefault(node, []).append(("leave", node))
        self.cluster.request(node)

    def request_join(self, sponsor: int, joiner: int) -> None:
        """Ask for a view including ``joiner`` (sponsored by a member)."""
        if sponsor not in self._members:
            raise MembershipError(f"sponsor {sponsor} is not a member")
        if joiner in self._members:
            raise MembershipError(f"node {joiner} is already a member")
        if not 0 <= joiner < self.cluster.n:
            raise MembershipError(f"node {joiner} does not exist")
        self._pending_views.setdefault(sponsor, []).append(("join", joiner))
        self.cluster.request(sponsor)

    # -- ordering ------------------------------------------------------------------

    def _on_grant(self, node: int, req_seq: int, now: float) -> None:
        # View changes first: they were requested before later messages of
        # the same holder and must bound the epoch of its own sends.
        for action, subject in self._pending_views.pop(node, []):
            if action == "leave" and subject in self._members:
                self._members = tuple(m for m in self._members
                                      if m != subject)
            elif action == "join" and subject not in self._members:
                self._members = tuple(sorted(self._members + (subject,)))
            else:
                continue
            self._view_id += 1
            self._emit(GroupEvent(
                self._next_seq, "view", self._view_id,
                members=self._members,
            ))
        for payload in self._outbox.pop(node, []):
            if node not in self._members:
                continue  # sender left before its turn: message dropped
            self._emit(GroupEvent(
                self._next_seq, "message", self._view_id,
                sender=node, payload=payload,
            ))

    def _emit(self, event: GroupEvent) -> None:
        self._next_seq += 1
        self.history.append(event)
        recipients = event.members if event.kind == "view" else self._members
        for member in recipients:
            self.cluster.sim.schedule(
                self.delivery_delay, self._deliver, member, event
            )

    def _deliver(self, member: int, event: GroupEvent) -> None:
        self.logs[member].append(event)

    # -- auditing --------------------------------------------------------------------

    def assert_view_synchrony(self) -> None:
        """Audit, at quiescence: every member delivered in ascending global
        order, and every message reached exactly the members of the view it
        was stamped with."""
        for member, log in self.logs.items():
            ids = [e.seq for e in log]
            if ids != sorted(ids):
                raise ProtocolError(f"member {member} delivered out of order")
        for event in self.history:
            if event.kind != "message":
                continue
            view_members = self._members_at(event.view_id)
            for member, log in self.logs.items():
                got = event in log
                should = member in view_members
                if got != should:
                    raise ProtocolError(
                        f"member {member}: event #{event.seq} delivery "
                        f"mismatch (got={got}, member-of-view={should})"
                    )

    def _members_at(self, view_id: int) -> Tuple[int, ...]:
        members = tuple(range(self.cluster.n))
        for event in self.history:
            if event.kind == "view" and event.view_id <= view_id:
                members = event.members
        return members

    def delivered_sequences_agree(self) -> bool:
        """Any two members' logs agree on the order of common events —
        the heart of view synchrony."""
        logs = list(self.logs.values())
        for i in range(len(logs)):
            for j in range(i + 1, len(logs)):
                a = [e.seq for e in logs[i]]
                b = [e.seq for e in logs[j]]
                common = set(a) & set(b)
                if [s for s in a if s in common] != \
                        [s for s in b if s in common]:
                    return False
        return True
