"""Distributed mutual exclusion on top of the token protocols.

The paper's framing: a node "may wish to obtain an exclusive possession of
a broadcast medium ... or to acquire exclusive access to some shared
resource, in the same global order" — broadcast and mutual exclusion are
the same token abstraction.  This module provides both faces of the lock:

- :class:`SimMutex` — callback-style critical sections inside the
  discrete-event simulation (used by tests to verify exclusion under
  contention with non-zero critical-section times);
- asyncio locking is provided directly by
  :meth:`repro.aio.cluster.AioCluster.lock`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.cluster import Cluster
from repro.errors import ProtocolError

__all__ = ["SimMutex"]


class SimMutex:
    """Critical-section manager over a DES cluster.

    The cluster must be built with ``hold_until_release=True`` (the lock
    holds the token for the duration of the critical section).  Exclusion
    is audited continuously: overlapping critical sections raise.
    """

    def __init__(self, cluster: Cluster) -> None:
        if not cluster.config.hold_until_release:
            raise ProtocolError(
                "SimMutex requires a cluster with hold_until_release=True"
            )
        self.cluster = cluster
        self._holder: Optional[int] = None
        self._pending: Dict[int, Tuple[Callable[[int], None], float]] = {}
        #: (node, enter_time, exit_time) per completed critical section
        self.history: List[Tuple[int, float, float]] = []
        self._enter_time = 0.0
        cluster.on_grant(self._on_grant)

    def acquire(self, node: int, body: Callable[[int], None],
                hold_for: float = 0.0) -> None:
        """Request the lock for ``node``; when granted, run ``body(node)``
        inside the critical section and release ``hold_for`` later."""
        if node in self._pending:
            raise ProtocolError(f"node {node} already waiting for the lock")
        self._pending[node] = (body, hold_for)
        self.cluster.request(node)

    def _on_grant(self, node: int, req_seq: int, now: float) -> None:
        if self._holder is not None:
            raise ProtocolError(
                f"mutual exclusion violated: {node} granted while "
                f"{self._holder} holds the lock"
            )
        entry = self._pending.pop(node, None)
        if entry is None:
            # A grant without an acquire: release immediately.
            self.cluster.release(node)
            return
        body, hold_for = entry
        self._holder = node
        self._enter_time = now
        body(node)
        if hold_for > 0:
            self.cluster.sim.schedule(hold_for, self._exit, node)
        else:
            self._exit(node)

    def _exit(self, node: int) -> None:
        if self._holder != node:
            raise ProtocolError(f"release by non-holder {node}")
        self.history.append((node, self._enter_time, self.cluster.sim.now))
        self._holder = None
        self.cluster.release(node)

    @property
    def holder(self) -> Optional[int]:
        """The node currently inside the critical section, if any."""
        return self._holder

    def assert_serialized(self) -> None:
        """Verify the recorded critical sections never overlapped."""
        ordered = sorted(self.history, key=lambda r: r[1])
        for (_, _, exit_a), (_, enter_b, _) in zip(ordered, ordered[1:]):
            if enter_b < exit_a:
                raise ProtocolError(
                    f"critical sections overlap: exit={exit_a}, next enter={enter_b}"
                )
