"""Round-robin scheduling — another of the paper's headline applications.

Token circulation *is* a round-robin schedule: each visit is the node's
turn.  :class:`RoundRobinScheduler` hands every node a work queue and
executes up to ``quantum`` queued jobs per token visit, giving
deterministic, starvation-free service with the ring's fairness — and,
on the adaptive protocol, the same logarithmic responsiveness for nodes
that suddenly become busy (they simply request the token instead of
waiting a full rotation).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.cluster import Cluster
from repro.errors import ConfigError

__all__ = ["RoundRobinScheduler"]

Job = Callable[[], object]


class RoundRobinScheduler:
    """Token-driven round-robin job scheduler over a DES cluster."""

    def __init__(self, cluster: Cluster, quantum: int = 1,
                 eager: bool = True) -> None:
        if quantum < 1:
            raise ConfigError(f"quantum must be >= 1, got {quantum}")
        self.cluster = cluster
        self.quantum = quantum
        #: With ``eager`` the node requests the token on submission (the
        #: adaptive fast path); otherwise it waits for its rotation turn.
        self.eager = eager
        self._queues: Dict[int, Deque[Tuple[int, Job]]] = {
            node: deque() for node in range(cluster.n)
        }
        self._job_counter = 0
        #: (job id, node, completion virtual time, result) in run order.
        self.completed: List[Tuple[int, int, float, object]] = []
        cluster.drivers  # cluster must exist before we subscribe
        for driver in cluster.drivers.values():
            driver.subscribe(self._on_event)

    def submit(self, node: int, job: Job) -> int:
        """Queue ``job`` at ``node``; returns the job id."""
        if node not in self._queues:
            raise ConfigError(f"node {node} out of range")
        job_id = self._job_counter
        self._job_counter += 1
        self._queues[node].append((job_id, job))
        if self.eager:
            self.cluster.request(node)
        return job_id

    def pending(self, node: Optional[int] = None) -> int:
        """Jobs still queued (at one node or overall)."""
        if node is not None:
            return len(self._queues[node])
        return sum(len(q) for q in self._queues.values())

    def _on_event(self, node: int, kind: str, payload: tuple, now: float) -> None:
        # Both the rotation visit and an adaptive grant are a "turn".
        if kind not in ("token_visit", "granted"):
            return
        queue = self._queues[node]
        for _ in range(min(self.quantum, len(queue))):
            job_id, job = queue.popleft()
            result = job()
            self.completed.append((job_id, node, now, result))

    def run_until_drained(self, max_rounds: int = 10_000) -> None:
        """Drive the cluster until every queued job has executed."""
        self.cluster.start()
        while self.pending() > 0:
            before = len(self.completed)
            self.cluster.run(rounds=self.cluster.rounds + 2,
                             max_events=5_000_000)
            if len(self.completed) == before and self.pending() > 0:
                raise ConfigError("scheduler made no progress")
            if self.cluster.rounds > max_rounds:
                raise ConfigError("scheduler exceeded the round budget")
