"""Totally-ordered broadcast — the paper's motivating GCS use case.

"The data of some ready node is broadcast to all the nodes" in *the same
global order* at every node: exactly System S's history ``H``, realised on
the executable protocols.  Token possession serialises publishers, so the
sequencer counter that would ride the token in a wire deployment is safely
advanced at grant time; each message gets a global sequence number and is
appended to every member's delivery log in that order.

The prefix property (Definition 2) holds by construction and is auditable:
every node's log is a prefix of the global history at all times
(:meth:`TotalOrderBroadcast.assert_prefix_property` machine-checks it, and
the delivery fan-out models per-member lag).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.cluster import Cluster
from repro.errors import ProtocolError

__all__ = ["TotalOrderBroadcast"]


class TotalOrderBroadcast:
    """Token-ordered broadcast over a DES cluster.

    The cluster must auto-release (``hold_until_release=False``): a grant
    stamps the publisher's queued payloads and the token moves on.
    Delivery to members takes one message delay (configurable), modelling
    the fan-out; member logs therefore lag the global history — as
    prefixes of it.
    """

    def __init__(self, cluster: Cluster, delivery_delay: float = 1.0) -> None:
        if cluster.config.hold_until_release:
            raise ProtocolError(
                "TotalOrderBroadcast requires auto-release (the token "
                "carries the data onward; grants must not block)"
            )
        self.cluster = cluster
        self.delivery_delay = delivery_delay
        self._outbox: Dict[int, List[object]] = {}
        self._next_seq = 0
        #: The global history: (seq, publisher, payload), in order.
        self.history: List[Tuple[int, int, object]] = []
        #: Per-member ordered delivery logs.
        self.logs: Dict[int, List[Tuple[int, int, object]]] = {
            node: [] for node in range(cluster.n)
        }
        cluster.on_grant(self._on_grant)

    def publish(self, node: int, payload: object) -> None:
        """Queue ``payload`` at ``node`` and request the token."""
        self._outbox.setdefault(node, []).append(payload)
        self.cluster.request(node)

    def _on_grant(self, node: int, req_seq: int, now: float) -> None:
        pending = self._outbox.pop(node, [])
        for payload in pending:
            entry = (self._next_seq, node, payload)
            self._next_seq += 1
            self.history.append(entry)
            for member in self.logs:
                self.cluster.sim.schedule(
                    self.delivery_delay, self._deliver, member, entry
                )

    def _deliver(self, member: int, entry: Tuple[int, int, object]) -> None:
        log = self.logs[member]
        expected = log[-1][0] + 1 if log else 0
        if entry[0] != expected:
            raise ProtocolError(
                f"member {member}: out-of-order delivery "
                f"(got seq {entry[0]}, expected {expected})"
            )
        log.append(entry)

    def assert_prefix_property(self) -> None:
        """Definition 2: every member's log is a prefix of the history."""
        for member, log in self.logs.items():
            if log != self.history[: len(log)]:
                raise ProtocolError(
                    f"member {member}'s log is not a prefix of the history"
                )

    def delivered_everywhere(self) -> int:
        """Number of messages every member has delivered."""
        if not self.logs:
            return 0
        return min(len(log) for log in self.logs.values())
