"""Term language for the Term Rewriting System (TRS) layer.

The paper specifies its protocols as TRSs (Section 2).  This module provides
the term constructors used to encode system states:

- :class:`Atom` — a constant; matches only itself (the paper's Greek-letter
  identifiers such as ``phi_x`` and ``tau_x`` are atoms or structs of atoms).
- :class:`Var` — a variable; matches any term and binds (the paper's
  English-letter identifiers).
- :class:`Wildcard` — the paper's ``-`` placeholder; matches anything
  without binding.
- :class:`Struct` — a named, fixed-arity constructor, e.g. ``(x, d_x)``
  pairs or whole system states.
- :class:`Seq` — an ordered sequence; models histories built with the
  append operator ``⊕``.
- :class:`Bag` — an unordered multiset; models the associative/commutative
  catenation connective ``|``.  A bag *pattern* may carry a ``rest``
  variable capturing the unmatched remainder, which is how the paper writes
  ``Q | (x, d_x)`` with the set variable ``Q``.

Terms are immutable, hashable, and **hash-consed**: every constructor
interns its result in a per-class weak table keyed by the identities of the
children (and by value/name for leaves), so constructing the same term from
the same child objects returns the same canonical object.  Hashes and the
``ground`` flag are computed once at construction, equality starts with an
identity check, and bags carry a cached multiset fingerprint so semantic
(AC) equality needs no sorting or repeated deep walks.

The intern keys for containers are *order-sensitive* on purpose: a bag's
item tuple keeps exactly the order it was built with, so pattern-match
enumeration order — and therefore every seeded random reduction — is
bit-identical to the pre-interning engine.  Interning only collapses
*reconstructions of the same ordered term* into one object; it never
reorders anything (see DESIGN.md §8).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, ClassVar, Dict, FrozenSet, Iterable, Iterator, Optional, Tuple
from weakref import WeakValueDictionary

from repro.errors import TermError

__all__ = [
    "Term",
    "Atom",
    "Var",
    "Wildcard",
    "Struct",
    "Seq",
    "Bag",
    "atom",
    "var",
    "struct",
    "seq",
    "bag",
    "is_ground",
    "intern_stats",
    "variables_of",
]


class Term:
    """Abstract base class for all terms.

    Subclasses populate ``_hash`` (the precomputed structural hash) and
    ``ground`` (True when the term contains no variables or wildcards) in
    ``__new__``; both are read-only caches, never recomputed.
    """

    __slots__ = ("__weakref__", "_hash", "ground")

    _hash: int
    ground: bool

    def is_pattern(self) -> bool:
        """Return True when the term contains variables or wildcards."""
        return not self.ground


# Interning tables.  Values are held weakly: a term stays interned exactly
# as long as something outside the table references it.  Container keys use
# child *identities* (``id``), which is sound because the interned value
# holds strong references to its children — a live entry pins its children,
# so a key can never refer to a recycled id.
_ATOMS: "WeakValueDictionary[Tuple[type, Any], Atom]" = WeakValueDictionary()
_VARS: "WeakValueDictionary[str, Var]" = WeakValueDictionary()
_STRUCTS: "WeakValueDictionary[Tuple[str, Tuple[int, ...]], Struct]" = (
    WeakValueDictionary()
)
_SEQS: "WeakValueDictionary[Tuple[int, ...], Seq]" = WeakValueDictionary()
_BAGS: "WeakValueDictionary[Tuple[Tuple[int, ...], int], Bag]" = WeakValueDictionary()


def intern_stats() -> Dict[str, int]:
    """Live entry counts of the per-class intern tables (diagnostics)."""
    return {
        "atoms": len(_ATOMS),
        "vars": len(_VARS),
        "structs": len(_STRUCTS),
        "seqs": len(_SEQS),
        "bags": len(_BAGS),
    }


class Atom(Term):
    """A constant term wrapping a hashable Python value.

    Two atoms are equal exactly when their values are equal; an atom matches
    only an equal atom.
    """

    __slots__ = ("value",)

    value: Any

    def __new__(cls, value: Any) -> "Atom":
        try:
            h = hash(("Atom", value))
        except TypeError:
            raise TermError(f"Atom value must be hashable, got {value!r}") from None
        # Key by (class, value) rather than value alone so 1/True/1.0 keep
        # their own canonical atoms (they stay `==` via the value fallback).
        key = (value.__class__, value)
        if cls is Atom:
            cached = _ATOMS.get(key)
            if cached is not None:
                return cached
        self = super().__new__(cls)
        self.value = value
        self.ground = True
        self._hash = h
        if cls is Atom:
            _ATOMS[key] = self
        return self

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, Atom) and self.value == other.value

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self) -> Tuple[Any, ...]:
        return (Atom, (self.value,))

    def __repr__(self) -> str:
        return f"Atom({self.value!r})"


class Var(Term):
    """A named variable.  Matches any term and binds it under the name."""

    __slots__ = ("name",)

    name: str

    def __new__(cls, name: str) -> "Var":
        if not name or not isinstance(name, str):
            raise TermError(f"Var name must be a non-empty string, got {name!r}")
        if cls is Var:
            cached = _VARS.get(name)
            if cached is not None:
                return cached
        self = super().__new__(cls)
        self.name = name
        self.ground = False
        self._hash = hash(("Var", name))
        if cls is Var:
            _VARS[name] = self
        return self

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, Var) and self.name == other.name

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self) -> Tuple[Any, ...]:
        return (Var, (self.name,))

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


class Wildcard(Term):
    """The paper's ``-`` placeholder: matches any term, binds nothing."""

    __slots__ = ()

    _instance: ClassVar[Optional["Wildcard"]] = None

    def __new__(cls) -> "Wildcard":
        if cls is Wildcard:
            cached = Wildcard._instance
            if cached is not None:
                return cached
        self = super().__new__(cls)
        self.ground = False
        self._hash = hash("Wildcard")
        if cls is Wildcard:
            Wildcard._instance = self
        return self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Wildcard)

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self) -> Tuple[Any, ...]:
        return (Wildcard, ())

    def __repr__(self) -> str:
        return "_"


class Struct(Term):
    """A named constructor with a fixed tuple of argument terms."""

    __slots__ = ("functor", "args")

    functor: str
    args: Tuple[Term, ...]

    def __new__(cls, functor: str, args: Iterable[Term] = ()) -> "Struct":
        if not isinstance(functor, str) or not functor:
            raise TermError(f"Struct functor must be a non-empty string, got {functor!r}")
        args_t = tuple(args)
        key = (functor, tuple(map(id, args_t)))
        if cls is Struct:
            cached = _STRUCTS.get(key)
            if cached is not None:
                return cached
        ground = True
        for a in args_t:
            if not isinstance(a, Term):
                raise TermError(f"Struct argument must be a Term, got {a!r}")
            if not a.ground:
                ground = False
        self = super().__new__(cls)
        self.functor = functor
        self.args = args_t
        self.ground = ground
        self._hash = hash(("Struct", functor, args_t))
        if cls is Struct:
            _STRUCTS[key] = self
        return self

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, Struct)
            and self._hash == other._hash
            and self.functor == other.functor
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self) -> Tuple[Any, ...]:
        return (Struct, (self.functor, self.args))

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.functor}({inner})"


class Seq(Term):
    """An ordered sequence of terms (history logs, ``⊕`` append)."""

    __slots__ = ("items",)

    items: Tuple[Term, ...]

    def __new__(cls, items: Iterable[Term] = ()) -> "Seq":
        items_t = tuple(items)
        key = tuple(map(id, items_t))
        if cls is Seq:
            cached = _SEQS.get(key)
            if cached is not None:
                return cached
        ground = True
        for a in items_t:
            if not isinstance(a, Term):
                raise TermError(f"Seq item must be a Term, got {a!r}")
            if not a.ground:
                ground = False
        self = super().__new__(cls)
        self.items = items_t
        self.ground = ground
        self._hash = hash(("Seq", items_t))
        if cls is Seq:
            _SEQS[key] = self
        return self

    def append(self, item: Term) -> "Seq":
        """Return a new sequence with ``item`` appended (the ``⊕`` operator)."""
        if not isinstance(item, Term):
            raise TermError(f"Seq item must be a Term, got {item!r}")
        return Seq(self.items + (item,))

    def extend(self, items: Iterable[Term]) -> "Seq":
        """Return a new sequence with all of ``items`` appended."""
        out = self
        for item in items:
            out = out.append(item)
        return out

    def is_prefix_of(self, other: "Seq") -> bool:
        """Return True when this sequence is a prefix of ``other``."""
        if not isinstance(other, Seq):
            raise TermError(f"is_prefix_of expects a Seq, got {other!r}")
        if self is other:
            return True
        mine = self.items
        if len(mine) > len(other.items):
            return False
        return mine == other.items[: len(mine)]

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[Term]:
        return iter(self.items)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, Seq)
            and self._hash == other._hash
            and self.items == other.items
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self) -> Tuple[Any, ...]:
        return (Seq, (self.items,))

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.items)
        return f"Seq[{inner}]"


class Bag(Term):
    """An unordered multiset of terms — the AC catenation connective ``|``.

    When used as a *pattern*, a bag may carry a ``rest`` variable: the
    pattern ``Bag([(x, d_x)], rest=Var("Q"))`` encodes the paper's
    ``Q | (x, d_x)`` and binds ``Q`` to the remainder multiset (as a Bag).
    Ground bags (states) must not have a rest variable.

    Although equality and hashing are order-insensitive (multiset
    semantics), the ``items`` tuple preserves construction order and the
    intern key is order-sensitive — matching enumerates candidates in
    ``items`` order, exactly as before interning.  The hash folds the
    items' cached hashes with a commutative sum, so it needs no sorting;
    the exact multiset fingerprint (``_fp``) is built lazily, only when a
    non-identical candidate survives the hash filter in ``__eq__`` —
    ephemeral bags (match remainders) never pay for it.  ``_index`` caches
    the discrimination index lazily built by :mod:`repro.trs.matching`
    for ground bags.
    """

    __slots__ = ("items", "rest", "_fp", "_index")

    items: Tuple[Term, ...]
    rest: Optional[Var]
    _fp: Optional[FrozenSet[Tuple[Term, int]]]
    _index: Optional[Dict[Any, Any]]

    def __new__(cls, items: Iterable[Term] = (), rest: Optional[Var] = None) -> "Bag":
        flat = []
        for a in items:
            if not isinstance(a, Term):
                raise TermError(f"Bag item must be a Term, got {a!r}")
            if isinstance(a, Bag) and a.rest is None:
                flat.extend(a.items)
            else:
                flat.append(a)
        if rest is not None and not isinstance(rest, Var):
            raise TermError(f"Bag rest must be a Var or None, got {rest!r}")
        items_t = tuple(flat)
        key = (tuple(map(id, items_t)), id(rest))
        if cls is Bag:
            cached = _BAGS.get(key)
            if cached is not None:
                return cached
        ground = rest is None
        acc = 0
        if ground:
            for a in items_t:
                if not a.ground:
                    ground = False
                acc += a._hash
        else:
            for a in items_t:
                acc += a._hash
        self = super().__new__(cls)
        self.items = items_t
        self.rest = rest
        self.ground = ground
        self._fp = None
        self._hash = hash(("Bag", len(items_t), acc, rest))
        self._index = None
        if cls is Bag:
            _BAGS[key] = self
        return self

    @property
    def fingerprint(self) -> FrozenSet[Tuple[Term, int]]:
        """The exact multiset fingerprint ``{(item, multiplicity)}``
        (computed on first use, cached on the interned term)."""
        fp = self._fp
        if fp is None:
            fp = frozenset(Counter(self.items).items())
            self._fp = fp
        return fp

    def add(self, item: Term) -> "Bag":
        """Return a new bag with ``item`` added."""
        if self.rest is not None:
            raise TermError("cannot add to a bag pattern with a rest variable")
        return Bag(self.items + (item,))

    def remove_one(self, item: Term) -> "Bag":
        """Return a new bag with one occurrence of ``item`` removed."""
        if self.rest is not None:
            raise TermError("cannot remove from a bag pattern with a rest variable")
        items = list(self.items)
        try:
            items.remove(item)
        except ValueError:
            raise TermError(f"bag does not contain {item!r}") from None
        return Bag(items)

    def union(self, other: "Bag") -> "Bag":
        """Return the multiset union of two ground bags."""
        if self.rest is not None or other.rest is not None:
            raise TermError("cannot union bag patterns with rest variables")
        return Bag(self.items + other.items)

    def count(self, item: Term) -> int:
        """Return the multiplicity of ``item`` in the bag."""
        return sum(1 for i in self.items if i == item)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[Term]:
        return iter(self.items)

    def __contains__(self, item: object) -> bool:
        return any(i == item for i in self.items)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Bag):
            return False
        if self._hash != other._hash or self.rest != other.rest:
            return False
        if self.items == other.items:
            return True
        return self.fingerprint == other.fingerprint

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self) -> Tuple[Any, ...]:
        return (Bag, (self.items, self.rest))

    def __repr__(self) -> str:
        inner = " | ".join(repr(a) for a in self.items)
        if self.rest is not None:
            inner = f"{self.rest!r} | {inner}" if inner else repr(self.rest)
        return f"Bag{{{inner}}}"


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------

def atom(value: Any) -> Atom:
    """Shorthand for :class:`Atom`."""
    return Atom(value)


def var(name: str) -> Var:
    """Shorthand for :class:`Var`."""
    return Var(name)


def struct(functor: str, *args: Term) -> Struct:
    """Shorthand for :class:`Struct` with varargs."""
    return Struct(functor, args)


def seq(*items: Term) -> Seq:
    """Shorthand for :class:`Seq` with varargs."""
    return Seq(items)


def bag(*items: Term, rest: Optional[Var] = None) -> Bag:
    """Shorthand for :class:`Bag` with varargs and an optional rest var."""
    return Bag(items, rest=rest)


def is_ground(term: Term) -> bool:
    """Return True when ``term`` contains no variables or wildcards."""
    try:
        return term.ground
    except AttributeError:
        raise TermError(f"unknown term type: {term!r}") from None


def variables_of(term: Term) -> FrozenSet[str]:
    """Return the set of variable names occurring in ``term``."""
    names: set = set()

    def walk(t: Term) -> None:
        if t.ground:
            return
        if isinstance(t, Var):
            names.add(t.name)
        elif isinstance(t, Struct):
            for a in t.args:
                walk(a)
        elif isinstance(t, Seq):
            for a in t.items:
                walk(a)
        elif isinstance(t, Bag):
            for a in t.items:
                walk(a)
            if t.rest is not None:
                names.add(t.rest.name)

    walk(term)
    return frozenset(names)
