"""Term language for the Term Rewriting System (TRS) layer.

The paper specifies its protocols as TRSs (Section 2).  This module provides
the term constructors used to encode system states:

- :class:`Atom` — a constant; matches only itself (the paper's Greek-letter
  identifiers such as ``phi_x`` and ``tau_x`` are atoms or structs of atoms).
- :class:`Var` — a variable; matches any term and binds (the paper's
  English-letter identifiers).
- :class:`Wildcard` — the paper's ``-`` placeholder; matches anything
  without binding.
- :class:`Struct` — a named, fixed-arity constructor, e.g. ``(x, d_x)``
  pairs or whole system states.
- :class:`Seq` — an ordered sequence; models histories built with the
  append operator ``⊕``.
- :class:`Bag` — an unordered multiset; models the associative/commutative
  catenation connective ``|``.  A bag *pattern* may carry a ``rest``
  variable capturing the unmatched remainder, which is how the paper writes
  ``Q | (x, d_x)`` with the set variable ``Q``.

Terms are immutable and hashable (bags hash via a sorted multiset key), so
they can be stored in sets and used as dictionary keys when exploring
reachable state spaces.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

from repro.errors import TermError

__all__ = [
    "Term",
    "Atom",
    "Var",
    "Wildcard",
    "Struct",
    "Seq",
    "Bag",
    "atom",
    "var",
    "struct",
    "seq",
    "bag",
    "is_ground",
    "variables_of",
]


class Term:
    """Abstract base class for all terms."""

    __slots__ = ()

    def is_pattern(self) -> bool:
        """Return True when the term contains variables or wildcards."""
        return not is_ground(self)


class Atom(Term):
    """A constant term wrapping a hashable Python value.

    Two atoms are equal exactly when their values are equal; an atom matches
    only an equal atom.
    """

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        try:
            hash(value)
        except TypeError:
            raise TermError(f"Atom value must be hashable, got {value!r}")
        self.value = value

    def __eq__(self, other) -> bool:
        return isinstance(other, Atom) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("Atom", self.value))

    def __repr__(self) -> str:
        return f"Atom({self.value!r})"


class Var(Term):
    """A named variable.  Matches any term and binds it under the name."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise TermError(f"Var name must be a non-empty string, got {name!r}")
        self.name = name

    def __eq__(self, other) -> bool:
        return isinstance(other, Var) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Var", self.name))

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


class Wildcard(Term):
    """The paper's ``-`` placeholder: matches any term, binds nothing."""

    __slots__ = ()

    def __eq__(self, other) -> bool:
        return isinstance(other, Wildcard)

    def __hash__(self) -> int:
        return hash("Wildcard")

    def __repr__(self) -> str:
        return "_"


class Struct(Term):
    """A named constructor with a fixed tuple of argument terms."""

    __slots__ = ("functor", "args")

    def __init__(self, functor: str, args: Iterable[Term] = ()) -> None:
        if not isinstance(functor, str) or not functor:
            raise TermError(f"Struct functor must be a non-empty string, got {functor!r}")
        args = tuple(args)
        for a in args:
            if not isinstance(a, Term):
                raise TermError(f"Struct argument must be a Term, got {a!r}")
        self.functor = functor
        self.args = args

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Struct)
            and self.functor == other.functor
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return hash(("Struct", self.functor, self.args))

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.functor}({inner})"


class Seq(Term):
    """An ordered sequence of terms (history logs, ``⊕`` append)."""

    __slots__ = ("items",)

    def __init__(self, items: Iterable[Term] = ()) -> None:
        items = tuple(items)
        for a in items:
            if not isinstance(a, Term):
                raise TermError(f"Seq item must be a Term, got {a!r}")
        self.items = items

    def append(self, item: Term) -> "Seq":
        """Return a new sequence with ``item`` appended (the ``⊕`` operator)."""
        if not isinstance(item, Term):
            raise TermError(f"Seq item must be a Term, got {item!r}")
        return Seq(self.items + (item,))

    def extend(self, items: Iterable[Term]) -> "Seq":
        """Return a new sequence with all of ``items`` appended."""
        out = self
        for item in items:
            out = out.append(item)
        return out

    def is_prefix_of(self, other: "Seq") -> bool:
        """Return True when this sequence is a prefix of ``other``."""
        if not isinstance(other, Seq):
            raise TermError(f"is_prefix_of expects a Seq, got {other!r}")
        if len(self.items) > len(other.items):
            return False
        return self.items == other.items[: len(self.items)]

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[Term]:
        return iter(self.items)

    def __eq__(self, other) -> bool:
        return isinstance(other, Seq) and self.items == other.items

    def __hash__(self) -> int:
        return hash(("Seq", self.items))

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.items)
        return f"Seq[{inner}]"


def _multiset_key(items: Tuple[Term, ...]) -> Tuple:
    """A canonical, order-independent key for a collection of terms."""
    return tuple(sorted((repr(i) for i in items)))


class Bag(Term):
    """An unordered multiset of terms — the AC catenation connective ``|``.

    When used as a *pattern*, a bag may carry a ``rest`` variable: the
    pattern ``Bag([(x, d_x)], rest=Var("Q"))`` encodes the paper's
    ``Q | (x, d_x)`` and binds ``Q`` to the remainder multiset (as a Bag).
    Ground bags (states) must not have a rest variable.
    """

    __slots__ = ("items", "rest")

    def __init__(self, items: Iterable[Term] = (), rest: Optional[Var] = None) -> None:
        flat = []
        for a in items:
            if not isinstance(a, Term):
                raise TermError(f"Bag item must be a Term, got {a!r}")
            if isinstance(a, Bag) and a.rest is None:
                flat.extend(a.items)
            else:
                flat.append(a)
        if rest is not None and not isinstance(rest, Var):
            raise TermError(f"Bag rest must be a Var or None, got {rest!r}")
        self.items = tuple(flat)
        self.rest = rest

    def add(self, item: Term) -> "Bag":
        """Return a new bag with ``item`` added."""
        if self.rest is not None:
            raise TermError("cannot add to a bag pattern with a rest variable")
        return Bag(self.items + (item,))

    def remove_one(self, item: Term) -> "Bag":
        """Return a new bag with one occurrence of ``item`` removed."""
        if self.rest is not None:
            raise TermError("cannot remove from a bag pattern with a rest variable")
        items = list(self.items)
        try:
            items.remove(item)
        except ValueError:
            raise TermError(f"bag does not contain {item!r}")
        return Bag(items)

    def union(self, other: "Bag") -> "Bag":
        """Return the multiset union of two ground bags."""
        if self.rest is not None or other.rest is not None:
            raise TermError("cannot union bag patterns with rest variables")
        return Bag(self.items + other.items)

    def count(self, item: Term) -> int:
        """Return the multiplicity of ``item`` in the bag."""
        return sum(1 for i in self.items if i == item)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[Term]:
        return iter(self.items)

    def __contains__(self, item) -> bool:
        return any(i == item for i in self.items)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Bag):
            return False
        if self.rest != other.rest:
            return False
        if len(self.items) != len(other.items):
            return False
        remaining = list(other.items)
        for i in self.items:
            try:
                remaining.remove(i)
            except ValueError:
                return False
        return True

    def __hash__(self) -> int:
        return hash(("Bag", _multiset_key(self.items), self.rest))

    def __repr__(self) -> str:
        inner = " | ".join(repr(a) for a in self.items)
        if self.rest is not None:
            inner = f"{self.rest!r} | {inner}" if inner else repr(self.rest)
        return f"Bag{{{inner}}}"


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------

def atom(value) -> Atom:
    """Shorthand for :class:`Atom`."""
    return Atom(value)


def var(name: str) -> Var:
    """Shorthand for :class:`Var`."""
    return Var(name)


def struct(functor: str, *args: Term) -> Struct:
    """Shorthand for :class:`Struct` with varargs."""
    return Struct(functor, args)


def seq(*items: Term) -> Seq:
    """Shorthand for :class:`Seq` with varargs."""
    return Seq(items)


def bag(*items: Term, rest: Optional[Var] = None) -> Bag:
    """Shorthand for :class:`Bag` with varargs and an optional rest var."""
    return Bag(items, rest=rest)


def is_ground(term: Term) -> bool:
    """Return True when ``term`` contains no variables or wildcards."""
    if isinstance(term, (Var, Wildcard)):
        return False
    if isinstance(term, Atom):
        return True
    if isinstance(term, Struct):
        return all(is_ground(a) for a in term.args)
    if isinstance(term, Seq):
        return all(is_ground(a) for a in term.items)
    if isinstance(term, Bag):
        if term.rest is not None:
            return False
        return all(is_ground(a) for a in term.items)
    raise TermError(f"unknown term type: {term!r}")


def variables_of(term: Term) -> frozenset:
    """Return the set of variable names occurring in ``term``."""
    names = set()

    def walk(t: Term) -> None:
        if isinstance(t, Var):
            names.add(t.name)
        elif isinstance(t, Struct):
            for a in t.args:
                walk(a)
        elif isinstance(t, Seq):
            for a in t.items:
                walk(a)
        elif isinstance(t, Bag):
            for a in t.items:
                walk(a)
            if t.rest is not None:
                names.add(t.rest.name)

    walk(term)
    return frozenset(names)
