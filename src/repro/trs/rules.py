"""Rewrite rules and rule sets.

A rule follows the paper's general structure (Section 2)::

    s1 -> s2   (if p(s1))

with two executable extensions that the paper writes informally:

- a **guard** — the optional predicate ``p``; a callable over the binding
  (and an optional mutable context), e.g. the ``where y = x^{+1}`` side
  conditions of rule 3';
- a **where-clause** — computes additional bindings from the matched ones,
  e.g. rule 6's ``u = x^{-n/2}`` direction computation, or rule 1's fresh
  datum ``new_x``.  A where-clause may return ``None`` to veto the match
  (useful when the computation itself decides applicability).

Rules are matched at the root of the state term; the paper's systems are
written so that the whole system state is the redex (set components are
opened up with bag-rest variables).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import RuleError
from repro.trs.matching import Binding, compile_builder, compile_pattern
from repro.trs.terms import Term, variables_of

__all__ = ["Rule", "RuleSet", "RuleContext"]


class RuleContext:
    """Mutable context threaded through a reduction.

    The paper's rule 1 introduces fresh data ``new_x``; to keep state terms
    faithful to the paper (no extra counter component) the freshness source
    lives here.  ``fresh()`` returns consecutive integers, deterministic per
    reduction.
    """

    def __init__(self) -> None:
        self._counter = 0

    def fresh(self) -> int:
        """Return the next fresh integer nonce."""
        value = self._counter
        self._counter += 1
        return value


GuardFn = Callable[[Binding, RuleContext], bool]
WhereFn = Callable[[Binding, RuleContext], Optional[Binding]]
ChoicesFn = Callable[[Binding, RuleContext], Iterator[Binding]]


class Rule:
    """A guarded rewrite rule with optional where-clause and choice points.

    ``choices`` models rules whose right-hand side has a genuinely
    *nondeterministic* free variable (e.g. System Token's rule 2 passes the
    token to *some* node ``y``): it maps a match binding to an iterable of
    extra bindings, one per allowed choice, and each extension counts as a
    separate instantiation.  Restricting a system (e.g. rule 3' fixing
    ``y = x⁺¹``) then amounts to narrowing ``choices`` to a single option.
    """

    def __init__(
        self,
        name: str,
        lhs: Term,
        rhs: Term,
        guard: Optional[GuardFn] = None,
        where: Optional[WhereFn] = None,
        choices: Optional[ChoicesFn] = None,
    ) -> None:
        if not name:
            raise RuleError("rule name must be non-empty")
        self.name = name
        self.lhs = lhs
        self.rhs = rhs
        self.guard = guard
        self.where = where
        self.choices = choices
        # RHS variables not bound by the LHS must be produced by the
        # where-clause or a choice point; record them so application can
        # verify.
        self._rhs_free = variables_of(rhs) - variables_of(lhs)
        if self._rhs_free and where is None and choices is None:
            raise RuleError(
                f"rule {name!r} has free RHS variables {sorted(self._rhs_free)} "
                "but no where-clause or choices to bind them"
            )
        # Compile once: the LHS becomes a closure pipeline over the state
        # (indexed AC matching for bag parts), the RHS a substitution
        # skeleton that rebuilds only the variable-carrying spine.
        self._matcher = compile_pattern(lhs)
        self._builder = compile_builder(rhs)

    def instantiations(self, state: Term, ctx: RuleContext) -> Iterator[Binding]:
        """Yield every binding under which this rule applies to ``state``.

        Choice points are expanded here (each choice is an instantiation);
        guards are evaluated on the expanded binding.  Where-clauses are
        *not* run here (they may be effectful via the context) — they run at
        application time in :meth:`apply`.
        """
        if self.choices is None and self.guard is None:
            # Fast path for the common unguarded, choice-free rule: the
            # matcher's bindings are the instantiations verbatim.
            return self._matcher(state)
        return self._expand(state, ctx)

    def _expand(self, state: Term, ctx: RuleContext) -> Iterator[Binding]:
        for binding in self._matcher(state):
            if self.choices is None:
                expansions = [binding]
            else:
                expansions = []
                for extra in self.choices(dict(binding), ctx):
                    merged = dict(binding)
                    merged.update(extra)
                    expansions.append(merged)
            for expanded in expansions:
                if self.guard is not None and not self.guard(expanded, ctx):
                    continue
                yield expanded

    def apply(self, state: Term, binding: Binding, ctx: RuleContext) -> Optional[Term]:
        """Apply the rule under ``binding``; None when the where-clause vetoes.

        Raises :class:`RuleError` when the result is not ground (which
        indicates an ill-formed rule, not a failed match).
        """
        full = binding
        if self.where is not None:
            extra = self.where(dict(binding), ctx)
            if extra is None:
                return None
            full = dict(binding)
            full.update(extra)
        missing = self._rhs_free - set(full)
        if missing:
            raise RuleError(
                f"rule {self.name!r}: where-clause left RHS variables unbound: "
                f"{sorted(missing)}"
            )
        result = self._builder(full)
        if not result.ground:
            raise RuleError(
                f"rule {self.name!r} produced a non-ground state: {result!r}"
            )
        return result

    # -- introspection (used by repro.lint) ---------------------------------

    @property
    def lhs_variables(self) -> frozenset:
        """Names of the variables bound by matching the LHS."""
        return variables_of(self.lhs)

    @property
    def rhs_variables(self) -> frozenset:
        """Names of the variables the RHS substitutes."""
        return variables_of(self.rhs)

    @property
    def rhs_free_variables(self) -> frozenset:
        """RHS variables the LHS does not bind (must come from the
        where-clause or a choice point)."""
        return frozenset(self._rhs_free)

    def overlaps(self, other: "Rule") -> bool:
        """True when some state enables both rules' LHS patterns
        (guards/where-clauses aside)."""
        from repro.trs.matching import patterns_overlap

        return patterns_overlap(self.lhs, other.lhs)

    def subsumes(self, other: "Rule") -> bool:
        """True when every state matching ``other``'s LHS also matches this
        rule's LHS (guards/where-clauses aside)."""
        from repro.trs.matching import pattern_subsumes

        return pattern_subsumes(self.lhs, other.lhs)

    @property
    def is_unconditional(self) -> bool:
        """True when the rule fires on every LHS match: no guard, no
        where-clause (a where may veto), no choice point (choices may be
        empty)."""
        return self.guard is None and self.where is None and self.choices is None

    def restricted(
        self,
        name: Optional[str] = None,
        guard: Optional[GuardFn] = None,
        choices: Optional[ChoicesFn] = None,
    ) -> "Rule":
        """Return a restricted copy of this rule.

        The paper refines systems by *constraining* when rules apply
        (Section 4): "these conditions always involve only the local state".
        A restricted rule keeps the LHS/RHS but narrows the guard (both
        must hold) and/or replaces the choice point, so every behaviour of
        the restricted rule is a behaviour of the original.
        """
        base_guard = self.guard

        if guard is None:
            merged_guard = base_guard
        elif base_guard is None:
            merged_guard = guard
        else:
            def merged_guard(binding, ctx, _a=base_guard, _b=guard):
                return _a(binding, ctx) and _b(binding, ctx)

        return Rule(
            name or self.name,
            self.lhs,
            self.rhs,
            guard=merged_guard,
            where=self.where,
            choices=choices if choices is not None else self.choices,
        )

    def __repr__(self) -> str:
        return f"Rule({self.name!r})"


class RuleSet:
    """An ordered collection of uniquely named rules."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        names = [r.name for r in rules]
        if len(names) != len(set(names)):
            raise RuleError(f"duplicate rule names in rule set: {names}")
        self.rules: Tuple[Rule, ...] = tuple(rules)
        self._by_name: Dict[str, Rule] = {r.name: r for r in rules}

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __getitem__(self, name: str) -> Rule:
        try:
            return self._by_name[name]
        except KeyError:
            raise RuleError(f"no rule named {name!r} in rule set") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> List[str]:
        """Return rule names in declaration order."""
        return [r.name for r in self.rules]

    def without(self, *names: str) -> "RuleSet":
        """Return a copy with the named rules removed (disabling rules,
        as in the Lemma 5 restriction that disables rule 4)."""
        for n in names:
            if n not in self._by_name:
                raise RuleError(f"cannot remove unknown rule {n!r}")
        return RuleSet([r for r in self.rules if r.name not in names])

    def replaced(self, rule: Rule) -> "RuleSet":
        """Return a copy with the same-named rule replaced (e.g. swapping
        rule 3 for rule 3' in System Message-Passing)."""
        if rule.name not in self._by_name:
            raise RuleError(f"cannot replace unknown rule {rule.name!r}")
        return RuleSet([rule if r.name == rule.name else r for r in self.rules])

    def extended(self, rule: Rule) -> "RuleSet":
        """Return a copy with ``rule`` appended."""
        return RuleSet(list(self.rules) + [rule])
