"""Term Rewriting System (TRS) engine.

The paper (Section 2) specifies every protocol as a TRS: terms model system
states and guarded rewrite rules model transitions.  This package provides
the term language, AC pattern matching, rules with guards and where-clauses,
rewriting strategies, reduction traces, and the engine itself.
"""

from repro.trs.engine import Rewriter
from repro.trs.matching import Binding, match, match_all, match_first, substitute
from repro.trs.pretty import pretty, pretty_reduction
from repro.trs.rules import Rule, RuleContext, RuleSet
from repro.trs.strategies import (
    avoid_rules,
    first_applicable,
    prefer_rules,
    random_strategy,
    weighted_strategy,
)
from repro.trs.terms import (
    Atom,
    Bag,
    Seq,
    Struct,
    Term,
    Var,
    Wildcard,
    atom,
    bag,
    is_ground,
    seq,
    struct,
    var,
    variables_of,
)
from repro.trs.trace import Reduction, Step

__all__ = [
    "Atom",
    "Bag",
    "Binding",
    "Reduction",
    "Rewriter",
    "Rule",
    "RuleContext",
    "RuleSet",
    "Seq",
    "Step",
    "Struct",
    "Term",
    "Var",
    "Wildcard",
    "atom",
    "avoid_rules",
    "bag",
    "first_applicable",
    "is_ground",
    "match",
    "match_all",
    "match_first",
    "prefer_rules",
    "pretty",
    "pretty_reduction",
    "random_strategy",
    "seq",
    "struct",
    "substitute",
    "var",
    "variables_of",
    "weighted_strategy",
]
