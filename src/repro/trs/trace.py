"""Reduction traces.

A *reduction* (paper, Section 2) is a sequence of terms starting from an
initial term and obtained by successive rule application.  The trace records
which rule and binding produced each state so that safety properties can be
checked along the whole path and failures can be reported with the exact
step that broke them.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from repro.errors import SpecError
from repro.trs.matching import Binding
from repro.trs.terms import Term

__all__ = ["Step", "Reduction"]


class Step:
    """One rewriting step: rule name, binding used, and resulting state."""

    __slots__ = ("rule_name", "binding", "state")

    def __init__(self, rule_name: str, binding: Binding, state: Term) -> None:
        self.rule_name = rule_name
        self.binding = binding
        self.state = state

    def __repr__(self) -> str:
        return f"Step({self.rule_name!r})"


class Reduction:
    """A recorded reduction: initial state plus the steps taken."""

    def __init__(self, initial: Term) -> None:
        self.initial = initial
        self.steps: List[Step] = []

    def record(self, rule_name: str, binding: Binding, state: Term) -> None:
        """Append a step to the trace."""
        self.steps.append(Step(rule_name, binding, state))

    @property
    def final(self) -> Term:
        """The last state of the reduction (the initial state if empty)."""
        return self.steps[-1].state if self.steps else self.initial

    def states(self) -> Iterator[Term]:
        """Yield every state along the reduction, initial state first."""
        yield self.initial
        for step in self.steps:
            yield step.state

    def transitions(self) -> Iterator[Tuple[Term, Step]]:
        """Yield ``(pre_state, step)`` pairs along the reduction."""
        prev = self.initial
        for step in self.steps:
            yield prev, step
            prev = step.state

    def rule_counts(self) -> dict:
        """Return how many times each rule fired."""
        counts: dict = {}
        for step in self.steps:
            counts[step.rule_name] = counts.get(step.rule_name, 0) + 1
        return counts

    def check_invariant(
        self, invariant: Callable[[Term], bool], name: Optional[str] = None
    ) -> None:
        """Assert ``invariant`` on every state; raise SpecError at the first
        violating step with its index and producing rule."""
        label = name or getattr(invariant, "__name__", "invariant")
        if not invariant(self.initial):
            raise SpecError(f"{label} violated by the initial state")
        for idx, step in enumerate(self.steps):
            if not invariant(step.state):
                raise SpecError(
                    f"{label} violated at step {idx} (rule {step.rule_name!r})"
                )

    def __len__(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:
        return f"Reduction(steps={len(self.steps)})"
