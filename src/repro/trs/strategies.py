"""Rewriting strategies.

The paper notes that "a rewriting strategy can be used to specify which rule
among the applicable rules should be applied at each rewriting step"
(Section 2).  A strategy here is a callable receiving the list of enabled
``(rule, binding)`` instantiations and returning the chosen one, or ``None``
to stop the reduction.

All randomized strategies take an explicit :class:`random.Random` so that
reductions are reproducible.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

from repro.trs.matching import Binding
from repro.trs.rules import Rule

__all__ = [
    "Strategy",
    "first_applicable",
    "random_strategy",
    "weighted_strategy",
    "prefer_rules",
    "avoid_rules",
]

Choice = Tuple[Rule, Binding]
Strategy = Callable[[List[Choice]], Optional[Choice]]


def first_applicable(choices: List[Choice]) -> Optional[Choice]:
    """Pick the first enabled instantiation in rule-declaration order."""
    return choices[0] if choices else None


def random_strategy(rng: random.Random) -> Strategy:
    """Pick uniformly at random among enabled instantiations."""

    def choose(choices: List[Choice]) -> Optional[Choice]:
        if not choices:
            return None
        return rng.choice(choices)

    return choose


def weighted_strategy(rng: random.Random, weights: dict, default: float = 1.0) -> Strategy:
    """Pick with per-rule-name weights (useful to bias reductions toward
    progress rules when random walks would otherwise dawdle)."""

    def choose(choices: List[Choice]) -> Optional[Choice]:
        if not choices:
            return None
        ws = [max(0.0, weights.get(rule.name, default)) for rule, _ in choices]
        total = sum(ws)
        if total <= 0.0:
            return None
        pick = rng.uniform(0.0, total)
        acc = 0.0
        for choice, w in zip(choices, ws):
            acc += w
            if pick <= acc:
                return choice
        return choices[-1]

    return choose


def prefer_rules(names: Sequence[str], fallback: Strategy) -> Strategy:
    """Choose among instantiations of the named rules when any are enabled;
    otherwise defer to ``fallback``."""
    wanted = set(names)

    def choose(choices: List[Choice]) -> Optional[Choice]:
        preferred = [c for c in choices if c[0].name in wanted]
        return fallback(preferred) if preferred else fallback(choices)

    return choose


def avoid_rules(names: Sequence[str], fallback: Strategy) -> Strategy:
    """Never choose the named rules unless nothing else is enabled."""
    unwanted = set(names)

    def choose(choices: List[Choice]) -> Optional[Choice]:
        others = [c for c in choices if c[0].name not in unwanted]
        return fallback(others) if others else fallback(choices)

    return choose
