"""Pattern matching for TRS terms, including AC (bag) matching.

Matching a pattern against a ground term yields zero or more *bindings*
(immutable dicts mapping variable names to ground terms).  Bag patterns are
matched associatively/commutatively with backtracking: each element pattern
is assigned to a distinct bag element, and the optional ``rest`` variable
captures the remaining multiset, mirroring the paper's ``Q | (x, d_x)``
notation.

All matching functions are generators so callers can enumerate every match
(needed when several rule instantiations apply to one state) or stop at the
first.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.errors import MatchError, TermError
from repro.trs.terms import Atom, Bag, Seq, Struct, Term, Var, Wildcard

__all__ = [
    "Binding",
    "match",
    "match_first",
    "match_all",
    "substitute",
    "patterns_overlap",
    "pattern_subsumes",
    "skolemize",
]

Binding = Dict[str, Term]


def _bind(binding: Binding, name: str, value: Term) -> Optional[Binding]:
    """Extend ``binding`` with ``name -> value``; None on conflict."""
    existing = binding.get(name)
    if existing is None:
        out = dict(binding)
        out[name] = value
        return out
    if existing == value:
        return binding
    return None


def match(pattern: Term, term: Term, binding: Optional[Binding] = None) -> Iterator[Binding]:
    """Yield every binding under which ``pattern`` matches ``term``.

    ``term`` must be ground.  The same variable occurring twice must match
    equal subterms (non-linear patterns are supported).
    """
    if binding is None:
        binding = {}

    if isinstance(pattern, Wildcard):
        yield binding
        return

    if isinstance(pattern, Var):
        extended = _bind(binding, pattern.name, term)
        if extended is not None:
            yield extended
        return

    if isinstance(pattern, Atom):
        if isinstance(term, Atom) and pattern.value == term.value:
            yield binding
        return

    if isinstance(pattern, Struct):
        if (
            isinstance(term, Struct)
            and pattern.functor == term.functor
            and len(pattern.args) == len(term.args)
        ):
            yield from _match_fixed(pattern.args, term.args, binding)
        return

    if isinstance(pattern, Seq):
        if isinstance(term, Seq) and len(pattern.items) == len(term.items):
            yield from _match_fixed(pattern.items, term.items, binding)
        return

    if isinstance(pattern, Bag):
        if isinstance(term, Bag):
            if term.rest is not None:
                raise MatchError("cannot match against a bag pattern (term has a rest var)")
            yield from _match_bag(pattern, term, binding)
        return

    raise TermError(f"unknown pattern type: {pattern!r}")


def _match_fixed(patterns, terms, binding: Binding) -> Iterator[Binding]:
    """Match parallel tuples of patterns/terms, threading bindings."""
    if not patterns:
        yield binding
        return
    head_p, rest_p = patterns[0], patterns[1:]
    head_t, rest_t = terms[0], terms[1:]
    for b in match(head_p, head_t, binding):
        yield from _match_fixed(rest_p, rest_t, b)


def _match_bag(pattern: Bag, term: Bag, binding: Binding) -> Iterator[Binding]:
    """AC-match a bag pattern against a ground bag.

    Each pattern element is matched against a distinct term element, in every
    possible way; the remainder binds to ``pattern.rest`` when present, and
    must be empty otherwise.
    """
    if pattern.rest is None and len(pattern.items) != len(term.items):
        return
    if len(pattern.items) > len(term.items):
        return

    def assign(p_idx: int, available: list, b: Binding) -> Iterator[Binding]:
        if p_idx == len(pattern.items):
            if pattern.rest is None:
                if not available:
                    yield b
            else:
                remainder = Bag([term.items[i] for i in available])
                extended = _bind(b, pattern.rest.name, remainder)
                if extended is not None:
                    yield extended
            return
        p = pattern.items[p_idx]
        seen = []
        for pos, t_idx in enumerate(available):
            t = term.items[t_idx]
            # Skip duplicate candidates at the same pattern position: matching
            # an identical element again can only reproduce the same bindings.
            if any(t == s for s in seen):
                continue
            seen.append(t)
            rest_avail = available[:pos] + available[pos + 1 :]
            for b2 in match(p, t, b):
                yield from assign(p_idx + 1, rest_avail, b2)

    yield from assign(0, list(range(len(term.items))), binding)


def match_first(pattern: Term, term: Term) -> Optional[Binding]:
    """Return the first binding matching ``pattern`` to ``term``, or None."""
    for b in match(pattern, term):
        return b
    return None


def match_all(pattern: Term, term: Term) -> list:
    """Return all distinct bindings matching ``pattern`` to ``term``."""
    out = []
    for b in match(pattern, term):
        if b not in out:
            out.append(b)
    return out


# ---------------------------------------------------------------------------
# Pattern/pattern comparison (used by the static linter, repro.lint)
# ---------------------------------------------------------------------------
#
# The rule sets in this repository match at the root of the state term, so
# deciding whether two rule LHS patterns can fire on a common state — or
# whether one pattern *subsumes* another — is a comparison between two
# patterns, not a pattern and a ground term.  Full AC-unification is
# undecidable in general settings and overkill here; the functions below
# implement the sound approximations the linter needs for the term shapes
# the specs actually use (single-level bag rest variables, struct items).


class _SkolemCounter:
    """Fresh-name source for skolemization."""

    def __init__(self) -> None:
        self.n = 0

    def fresh(self) -> int:
        self.n += 1
        return self.n


def skolemize(pattern: Term, prefix: str = "$sk", _counter: Optional[_SkolemCounter] = None) -> Term:
    """Replace every variable/wildcard in ``pattern`` with a distinct atom.

    The result is a ground term that is a *most general instance* of the
    pattern: any pattern matching the skolemized term matches every
    instance of the original (for the linear, struct-shaped patterns used
    by the spec systems).  A bag rest variable is skolemized as one extra
    distinguished element, which keeps the bag shape while marking "some
    unknown remainder".
    """
    counter = _counter or _SkolemCounter()
    if isinstance(pattern, Atom):
        return pattern
    if isinstance(pattern, Var):
        return Atom((prefix, pattern.name))
    if isinstance(pattern, Wildcard):
        return Atom((prefix, "_", counter.fresh()))
    if isinstance(pattern, Struct):
        return Struct(
            pattern.functor,
            tuple(skolemize(a, prefix, counter) for a in pattern.args),
        )
    if isinstance(pattern, Seq):
        return Seq(tuple(skolemize(a, prefix, counter) for a in pattern.items))
    if isinstance(pattern, Bag):
        items = [skolemize(a, prefix, counter) for a in pattern.items]
        if pattern.rest is not None:
            items.append(Atom((prefix, "rest", pattern.rest.name)))
        return Bag(items)
    raise TermError(f"unknown pattern type: {pattern!r}")


def pattern_subsumes(general: Term, specific: Term) -> bool:
    """True when every instance of ``specific`` is an instance of ``general``.

    Decided by matching ``general`` against a skolemized copy of
    ``specific``: the skolem atoms are fresh constants no pattern mentions,
    so ``general`` can absorb them only through its own variables,
    wildcards, or bag rest — exactly the subsumption condition.  A bag rest
    variable in ``specific`` becomes a single skolem element; ``general``
    can then only absorb it with a rest variable of its own (an item
    variable would fix the remainder's size, which subsumption forbids) —
    but a lone ``Var`` item in ``general`` against the skolem-rest element
    over-approximates, so results are exact for the repo's rule shapes
    (bag items are structs) and conservative-permissive otherwise.
    """
    ground = skolemize(specific)
    for _ in match(general, ground):
        return True
    return False


def patterns_overlap(a: Term, b: Term) -> bool:
    """True when some ground term can match both patterns (LHS overlap).

    Implemented as a simultaneous structural walk — a unification that
    treats the two patterns' variables as disjoint and answers only the
    yes/no question.  Variables and wildcards overlap with anything (the
    patterns in this repository are linear apart from repeated state
    variables, and a repeated variable can always be instantiated
    consistently when each occurrence overlaps); bags overlap when the
    fixed items can be injectively paired up and any excess on either side
    is absorbed by the other's rest variable.
    """
    if isinstance(a, (Var, Wildcard)) or isinstance(b, (Var, Wildcard)):
        return True
    if isinstance(a, Atom) or isinstance(b, Atom):
        return isinstance(a, Atom) and isinstance(b, Atom) and a.value == b.value
    if isinstance(a, Struct) or isinstance(b, Struct):
        return (
            isinstance(a, Struct)
            and isinstance(b, Struct)
            and a.functor == b.functor
            and len(a.args) == len(b.args)
            and all(patterns_overlap(x, y) for x, y in zip(a.args, b.args))
        )
    if isinstance(a, Seq) or isinstance(b, Seq):
        return (
            isinstance(a, Seq)
            and isinstance(b, Seq)
            and len(a.items) == len(b.items)
            and all(patterns_overlap(x, y) for x, y in zip(a.items, b.items))
        )
    if isinstance(a, Bag) and isinstance(b, Bag):
        return _bags_overlap(a, b)
    raise TermError(f"unknown pattern type: {a!r} / {b!r}")


def _bags_overlap(a: Bag, b: Bag) -> bool:
    """Backtracking search for an injective pairing of fixed bag items."""
    if a.rest is None and b.rest is None and len(a.items) != len(b.items):
        return False
    if a.rest is None and len(b.items) > len(a.items):
        return False
    if b.rest is None and len(a.items) > len(b.items):
        return False

    def assign(i: int, available: list) -> bool:
        if i == len(a.items):
            # Leftover b-items must be absorbable by a's rest variable.
            return a.rest is not None or not available
        item = a.items[i]
        for pos, j in enumerate(available):
            if patterns_overlap(item, b.items[j]):
                if assign(i + 1, available[:pos] + available[pos + 1 :]):
                    return True
        # Or this a-item is absorbed by b's rest variable.
        if b.rest is not None and assign(i + 1, available):
            return True
        return False

    return assign(0, list(range(len(b.items))))


def substitute(term: Term, binding: Binding) -> Term:
    """Replace every variable in ``term`` with its image under ``binding``.

    Unbound variables are left in place (the result is then still a
    pattern).  A bag whose rest variable is bound to a bag is spliced flat;
    a bound wildcard is impossible (wildcards never bind).
    """
    if isinstance(term, (Atom, Wildcard)):
        return term
    if isinstance(term, Var):
        return binding.get(term.name, term)
    if isinstance(term, Struct):
        return Struct(term.functor, tuple(substitute(a, binding) for a in term.args))
    if isinstance(term, Seq):
        return Seq(tuple(substitute(a, binding) for a in term.items))
    if isinstance(term, Bag):
        items = [substitute(a, binding) for a in term.items]
        if term.rest is not None:
            bound = binding.get(term.rest.name)
            if bound is None:
                return Bag(items, rest=term.rest)
            if not isinstance(bound, Bag):
                raise MatchError(
                    f"bag rest variable {term.rest.name!r} bound to non-bag {bound!r}"
                )
            items.extend(bound.items)
        return Bag(items)
    raise TermError(f"unknown term type: {term!r}")
