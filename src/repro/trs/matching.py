"""Pattern matching for TRS terms, including AC (bag) matching.

Matching a pattern against a ground term yields zero or more *bindings*
(immutable dicts mapping variable names to ground terms).  Bag patterns are
matched associatively/commutatively with backtracking: each element pattern
is assigned to a distinct bag element, and the optional ``rest`` variable
captures the remaining multiset, mirroring the paper's ``Q | (x, d_x)``
notation.

All matching functions are generators so callers can enumerate every match
(needed when several rule instantiations apply to one state) or stop at the
first.

Implementation notes (DESIGN.md §8).  Patterns are *compiled once* into a
closure pipeline (:func:`compile_pattern`): deterministic sub-patterns
(atoms, variables, ground bag-free subterms, structs/seqs thereof) become
single-shot destructuring functions, while bag patterns become generators
that enumerate candidates through a per-``Bag`` discrimination index keyed
by functor/arity (refined by the first fixed argument).  During a match,
partial bindings live in *chains* — immutable ``(name, value, parent)``
links over the caller's base dict — and are materialised into a plain dict
only when a complete match is yielded, eliminating the per-extension dict
copies of the naive matcher.  Enumeration order is bit-identical to the
original backtracking matcher: index buckets preserve bag item order, and
candidates that an index lookup skips are exactly those the old scan would
have rejected.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple
from weakref import finalize

from repro.errors import MatchError, TermError
from repro.trs.terms import Atom, Bag, Seq, Struct, Term, Var, Wildcard, variables_of

__all__ = [
    "Binding",
    "match",
    "match_first",
    "match_all",
    "compile_pattern",
    "compile_builder",
    "substitute",
    "patterns_overlap",
    "pattern_subsumes",
    "skolemize",
]

Binding = Dict[str, Term]

#: Sentinel distinguishing "name not bound" from any legitimate bound value
#: (``binding.get(name) is None`` would misread a future None-valued atom —
#: see the regression tests in tests/trs/test_matching.py).
_UNBOUND: Any = object()

#: Sentinel returned by deterministic matchers on failure (``None`` is a
#: valid — empty — binding chain).
_FAIL: Any = object()

_EMPTY_BUCKET: Tuple[int, ...] = ()
_SINGLETON_BUCKET: Tuple[int, ...] = (0,)


# ---------------------------------------------------------------------------
# Binding chains
# ---------------------------------------------------------------------------
#
# A chain is ``None`` (no new bindings) or a ``(name, value, parent)`` tuple;
# the caller's initial binding dict (``base``) sits below every chain and is
# never copied during the search.

def _chain_lookup(chain: Any, base: Optional[Binding], name: str) -> Any:
    """Value bound to ``name`` in ``chain``/``base``, or ``_UNBOUND``."""
    while chain is not None:
        if chain[0] == name:
            return chain[1]
        chain = chain[2]
    if base is not None:
        return base.get(name, _UNBOUND)
    return _UNBOUND


def _chain_to_dict(chain: Any, base: Optional[Binding]) -> Binding:
    """Materialise a chain (plus the base dict) into a plain binding dict."""
    out: Binding = dict(base) if base else {}
    if chain is not None:
        entries = []
        while chain is not None:
            entries.append(chain)
            chain = chain[2]
        for name, value, _ in reversed(entries):
            out[name] = value
    return out


# ---------------------------------------------------------------------------
# Discrimination index over ground bags
# ---------------------------------------------------------------------------
#
# Built lazily, once per interned Bag, and cached on the term (``_index``).
# Every element is registered under a coarse shape key — ("a", value) for
# atoms, ("s", functor, arity) for structs, ("q", len) for seqs — plus one
# refinement key per fixed struct argument, so a pattern like
# ``in(x, -, token(h))`` only ever visits ``in``-structs whose third
# argument is a ``token`` struct.  Bucket lists keep ascending positions:
# enumeration order inside a bucket equals the old full-scan order.

def _item_index_keys(item: Term) -> Iterator[tuple]:
    """Keys under which one ground bag element is registered."""
    if isinstance(item, Atom):
        yield ("a", item.value)
    elif isinstance(item, Struct):
        f = item.functor
        n = len(item.args)
        yield ("s", f, n)
        for j, a in enumerate(item.args):
            if isinstance(a, Atom):
                yield ("sa", f, n, j, a.value)
            elif isinstance(a, Struct):
                yield ("ss", f, n, j, a.functor, len(a.args))
            elif isinstance(a, Seq):
                yield ("sq", f, n, j, len(a.items))
    elif isinstance(item, Seq):
        yield ("q", len(item.items))
    else:  # defensive: bags inside ground bags are flattened away
        yield ("b",)


def _pattern_index_key(p: Term) -> Optional[tuple]:
    """Most selective index key for an element pattern (None = scan all)."""
    if isinstance(p, Atom):
        return ("a", p.value)
    if isinstance(p, Struct):
        f = p.functor
        n = len(p.args)
        for j, a in enumerate(p.args):
            if isinstance(a, Atom):
                return ("sa", f, n, j, a.value)
            if isinstance(a, Struct):
                return ("ss", f, n, j, a.functor, len(a.args))
            if isinstance(a, Seq):
                return ("sq", f, n, j, len(a.items))
        return ("s", f, n)
    if isinstance(p, Seq):
        return ("q", len(p.items))
    return None  # Var, Wildcard, nested bag patterns: no discrimination


def _bag_index(term: Bag) -> Tuple[Dict[tuple, List[int]], bool]:
    """``(index, has_dups)`` for a ground bag, built once and cached.

    ``has_dups`` records whether any element occurs more than once (by
    term equality); when all elements are distinct the matcher can skip
    its duplicate-candidate bookkeeping entirely.
    """
    cached = term._index
    if cached is None:
        index: Dict[tuple, List[int]] = {}
        for pos, item in enumerate(term.items):
            for key in _item_index_keys(item):
                bucket = index.get(key)
                if bucket is None:
                    index[key] = [pos]
                else:
                    bucket.append(pos)
        has_dups = len(set(term.items)) != len(term.items)
        cached = (index, has_dups)
        term._index = cached
    return cached


# ---------------------------------------------------------------------------
# Pattern compilation
# ---------------------------------------------------------------------------
#
# ``_compile`` returns ``(is_gen, fn)``.  Deterministic matchers have the
# shape ``fn(term, chain, base) -> chain | _FAIL``; generator matchers yield
# zero or more chains.  Only bag patterns (and containers holding them) need
# the generator form.

def _has_bag(t: Term) -> bool:
    if isinstance(t, Bag):
        return True
    if isinstance(t, Struct):
        return any(_has_bag(a) for a in t.args)
    if isinstance(t, Seq):
        return any(_has_bag(a) for a in t.items)
    return False


def _compile(pattern: Term) -> Tuple[bool, Callable[..., Any]]:
    if isinstance(pattern, Wildcard):
        return False, lambda t, c, b: c

    if isinstance(pattern, Var):
        def match_var(t, c, b, _name=pattern.name):
            existing = _chain_lookup(c, b, _name)
            if existing is _UNBOUND:
                return (_name, t, c)
            if existing is t or existing == t:
                return c
            return _FAIL
        return False, match_var

    if not isinstance(pattern, (Atom, Struct, Seq, Bag)):
        raise TermError(f"unknown pattern type: {pattern!r}")

    if pattern.ground and not _has_bag(pattern):
        # Atoms and ground bag-free structs/seqs: one interned comparison.
        def match_ground(t, c, b, _p=pattern):
            if t is _p or _p == t:
                return c
            return _FAIL
        return False, match_ground

    if isinstance(pattern, Struct):
        return _compile_fixed(pattern.functor,
                              [_compile(a) for a in pattern.args])

    if isinstance(pattern, Seq):
        return _compile_fixed(None, [_compile(a) for a in pattern.items])

    return True, _compile_bag(pattern)


def _compile_fixed(
    functor: Optional[str],
    compiled: List[Tuple[bool, Callable[..., Any]]],
) -> Tuple[bool, Callable[..., Any]]:
    """Compile a struct (``functor`` given) or seq (None) element pipeline."""
    n = len(compiled)
    if all(not is_gen for is_gen, _ in compiled):
        fns = tuple(fn for _, fn in compiled)
        if functor is not None:
            def match_struct(t, c, b, _f=functor, _n=n, _fns=fns):
                if not isinstance(t, Struct) or t.functor != _f:
                    return _FAIL
                args = t.args
                if len(args) != _n:
                    return _FAIL
                for sub, a in zip(_fns, args):
                    c = sub(a, c, b)
                    if c is _FAIL:
                        return _FAIL
                return c
            return False, match_struct

        def match_seq(t, c, b, _n=n, _fns=fns):
            if not isinstance(t, Seq):
                return _FAIL
            items = t.items
            if len(items) != _n:
                return _FAIL
            for sub, a in zip(_fns, items):
                c = sub(a, c, b)
                if c is _FAIL:
                    return _FAIL
            return c
        return False, match_seq

    pairs = tuple(compiled)

    def match_mixed(t, c, b, _f=functor, _n=n, _pairs=pairs):
        if _f is not None:
            if not isinstance(t, Struct) or t.functor != _f:
                return
            elems = t.args
        else:
            if not isinstance(t, Seq):
                return
            elems = t.items
        if len(elems) != _n:
            return

        def at(i, cc):
            if i == _n:
                yield cc
                return
            is_gen, fn = _pairs[i]
            if is_gen:
                for c2 in fn(elems[i], cc, b):
                    yield from at(i + 1, c2)
            else:
                c2 = fn(elems[i], cc, b)
                if c2 is not _FAIL:
                    yield from at(i + 1, c2)

        yield from at(0, c)

    return True, match_mixed


def _compile_bag(pattern: Bag) -> Callable[..., Any]:
    """AC bag matcher: index-filtered candidates, used-set backtracking.

    Reproduces the original backtracking semantics exactly: pattern elements
    are assigned left to right, candidates are visited in bag item order,
    duplicate candidates are skipped at each pattern position (matching an
    identical element again can only reproduce the same bindings), and the
    remainder binds to ``rest`` (must be empty without one).
    """
    compiled = tuple(_compile(e) for e in pattern.items)
    keys = tuple(_pattern_index_key(e) for e in pattern.items)
    n_pat = len(compiled)
    rest = pattern.rest
    rest_name = rest.name if rest is not None else None

    if n_pat == 0:
        def match_empty(term, chain, base):
            if not isinstance(term, Bag):
                return
            if term.rest is not None:
                raise MatchError(
                    "cannot match against a bag pattern (term has a rest var)")
            if rest_name is None:
                if not term.items:
                    yield chain
                return
            existing = _chain_lookup(chain, base, rest_name)
            if existing is _UNBOUND:
                yield (rest_name, term, chain)
            elif existing is term or existing == term:
                yield chain
        return match_empty

    if n_pat == 1:
        # The dominant shape in the spec systems (``Q | (x, d_x)``): no
        # assignment backtracking at all — one candidate loop, remainder
        # spliced from the items tuple.
        is_gen0, fn0 = compiled[0]
        key0 = keys[0]

        def match_single(term, chain, base):
            if not isinstance(term, Bag):
                return
            if term.rest is not None:
                raise MatchError(
                    "cannot match against a bag pattern (term has a rest var)")
            items = term.items
            n_items = len(items)
            if rest_name is None:
                if n_items != 1:
                    return
                candidates = _SINGLETON_BUCKET
                has_dups = False
            elif n_items == 0:
                return
            else:
                index, has_dups = _bag_index(term)
                candidates = range(n_items) if key0 is None \
                    else index.get(key0, _EMPTY_BUCKET)
            seen = set() if has_dups else None
            for pos in candidates:
                t = items[pos]
                if seen is not None:
                    if t in seen:
                        continue
                    seen.add(t)
                if is_gen0:
                    results = fn0(t, chain, base)
                else:
                    c2 = fn0(t, chain, base)
                    results = (c2,) if c2 is not _FAIL else ()
                for c2 in results:
                    if rest_name is None:
                        yield c2
                        continue
                    remainder = Bag(items[:pos] + items[pos + 1:])
                    existing = _chain_lookup(c2, base, rest_name)
                    if existing is _UNBOUND:
                        yield (rest_name, remainder, c2)
                    elif existing is remainder or existing == remainder:
                        yield c2
        return match_single

    def match_bag(term, chain, base):
        if not isinstance(term, Bag):
            return
        if term.rest is not None:
            raise MatchError("cannot match against a bag pattern (term has a rest var)")
        items = term.items
        n_items = len(items)
        if rest_name is None:
            if n_pat != n_items:
                return
        elif n_pat > n_items:
            return
        if n_items:
            index, has_dups = _bag_index(term)
        else:
            index, has_dups = {}, False
        used: set = set()

        def assign(i, c):
            if i == n_pat:
                if rest_name is None:
                    yield c
                    return
                if used:
                    remainder = Bag([items[k] for k in range(n_items)
                                     if k not in used])
                else:
                    remainder = term
                existing = _chain_lookup(c, base, rest_name)
                if existing is _UNBOUND:
                    yield (rest_name, remainder, c)
                elif existing is remainder or existing == remainder:
                    yield c
                return
            is_gen, fn = compiled[i]
            key = keys[i]
            candidates = range(n_items) if key is None \
                else index.get(key, _EMPTY_BUCKET)
            # Skip duplicate candidates at the same pattern position:
            # matching an identical element again can only reproduce the
            # same bindings.  When the bag has no duplicates at all the
            # bookkeeping is skipped.
            seen = set() if has_dups else None
            for pos in candidates:
                if pos in used:
                    continue
                t = items[pos]
                if seen is not None:
                    if t in seen:
                        continue
                    seen.add(t)
                used.add(pos)
                if is_gen:
                    for c2 in fn(t, c, base):
                        yield from assign(i + 1, c2)
                else:
                    c2 = fn(t, c, base)
                    if c2 is not _FAIL:
                        yield from assign(i + 1, c2)
                used.discard(pos)

        yield from assign(0, chain)

    return match_bag


# ---------------------------------------------------------------------------
# Product decomposition of top-level struct patterns
# ---------------------------------------------------------------------------
#
# Every rule LHS in the spec systems is a struct over the state components
# (``BS(Q, P, T, I, O, W)``...), and a rewrite step changes only a few of
# them — the rest keep their identity under interning.  So the top-level
# pattern is compiled into one *fragment enumerator per argument*, each
# caching its results per interned component term: matching a state whose
# ``P``/``O``/``W`` components are unchanged since the previous step reuses
# their cached factor matches outright.  A full match is the left-to-right
# product of the factor fragments, filtered for consistency on the names
# two factors share — exactly the original backtracking enumeration order,
# because the original matcher also visits arguments left to right and
# candidates in bag-item order (cross-factor pruning only removes products
# that are filtered here, it never reorders survivors).

_NO_FRAGS: Tuple[tuple, ...] = ()
_UNIT_FRAGS: Tuple[tuple, ...] = ((),)


def _chain_pairs(chain: Any) -> tuple:
    """Chain entries as ``((name, value), ...)`` in binding order."""
    entries = []
    while chain is not None:
        entries.append((chain[0], chain[1]))
        chain = chain[2]
    entries.reverse()
    return tuple(entries)


#: Shared fragment enumerators, keyed by factor-pattern identity.  Rules
#: routinely destructure the same state component with the *same* interned
#: sub-pattern (``Bag{Q | q(x, d)}`` appears in four BinarySearch rules);
#: sharing the enumerator shares its per-target fragment cache, so a
#: component changed by a step is re-enumerated once, not once per rule.
_FRAG_ENUMS: Dict[int, Callable[[Term], tuple]] = {}


def _fragment_enum(sub: Term) -> Callable[[Term], tuple]:
    """Compile one product factor into a cached fragment enumerator.

    ``fn(term)`` returns every way ``sub`` matches ``term`` from an empty
    binding, as a tuple of name/value pair tuples in enumeration order.
    Non-trivial factors cache per interned ``term`` (entries evicted when
    the term is collected).
    """
    if isinstance(sub, Wildcard):
        return lambda t: _UNIT_FRAGS
    if isinstance(sub, Var):
        name = sub.name
        return lambda t: (((name, t),),)
    if sub.ground and not _has_bag(sub):
        def enum_ground(t, _p=sub):
            if t is _p or _p == t:
                return _UNIT_FRAGS
            return _NO_FRAGS
        return enum_ground
    skey = id(sub)
    shared = _FRAG_ENUMS.get(skey)
    if shared is not None:
        return shared
    is_gen, fn = _compile(sub)
    cache: Dict[int, tuple] = {}

    def enum(t):
        key = id(t)
        frags = cache.get(key)
        if frags is None:
            if is_gen:
                frags = tuple(_chain_pairs(c) for c in fn(t, None, None))
            else:
                c = fn(t, None, None)
                frags = (_chain_pairs(c),) if c is not _FAIL else _NO_FRAGS
            cache[key] = frags
            finalize(t, cache.pop, key, None)
        return frags

    _FRAG_ENUMS[skey] = enum
    finalize(sub, _FRAG_ENUMS.pop, skey, None)
    return enum


def _generic_query(pattern: Term) -> Callable[[Term, Optional[Binding]], Iterator[Binding]]:
    """The non-product compiled matcher: chains in, binding dicts out."""
    is_gen, raw = _compile(pattern)
    if is_gen:
        fn = raw

        def query(term, base):
            for chain in fn(term, None, base):
                yield _chain_to_dict(chain, base)
    else:
        det = raw

        def query(term, base):
            chain = det(term, None, base)
            if chain is not _FAIL:
                yield _chain_to_dict(chain, base)
    return query


def _group_frags(frags: tuple, names: tuple) -> dict:
    """Group a factor's fragments by the values of its join names,
    preserving fragment order within each group.

    Join-name pairs are stripped from the stored fragments: the join
    guarantees agreement up to ``==``, and the binding must keep the
    *first* bound value (``_bind`` never rebinds), which may differ in
    object identity (e.g. equal bags interned under different item
    orders)."""
    groups: dict = {}
    if len(names) == 1:
        nm = names[0]
        for frag in frags:
            key = None
            rest = []
            for pair in frag:
                if pair[0] == nm:
                    key = pair[1]
                else:
                    rest.append(pair)
            groups.setdefault(key, []).append(tuple(rest))
    else:
        nmset = set(names)
        for frag in frags:
            d = dict(frag)
            key = tuple(d[nm] for nm in names)
            rest = tuple(p for p in frag if p[0] not in nmset)
            groups.setdefault(key, []).append(rest)
    return groups


def _compile_product(pattern: Struct) -> Callable[[Term, Optional[Binding]], Iterable[Binding]]:
    functor = pattern.functor
    n = len(pattern.args)
    rng = range(n)
    # Split factors: a plain Var whose name appears in no other factor
    # ("trivial") binds its component verbatim and never constrains the
    # rest; wildcards contribute nothing.  Everything else participates in
    # the joined partial product below.
    name_count: Dict[str, int] = {}
    factor_names = [variables_of(a) for a in pattern.args]
    for names in factor_names:
        for nm in names:
            name_count[nm] = name_count.get(nm, 0) + 1
    trivial: List[Tuple[str, int]] = []   # (var name, argument index)
    nt_idx: List[int] = []
    for i in rng:
        a = pattern.args[i]
        if isinstance(a, Wildcard):
            continue
        if isinstance(a, Var) and name_count[a.name] == 1:
            trivial.append((a.name, i))
            continue
        nt_idx.append(i)
    trivial_t = tuple(trivial)
    nt_t = tuple(nt_idx)
    nt_enums = tuple(_fragment_enum(pattern.args[i]) for i in nt_t)
    # join_names[k]: factor k's variables already bound by an earlier
    # non-trivial factor; matching is a left-to-right natural join.
    bound_before: set = set()
    join_names = []
    for i in nt_t:
        names = factor_names[i]
        join_names.append(tuple(sorted(names & bound_before)))
        bound_before |= names
    join_names_t = tuple(join_names)
    group_caches = tuple({} if jn else None for jn in join_names_t)
    nt_rng = range(len(nt_t))
    # The joined product over the non-trivial factors depends only on their
    # target components — cached by their identity tuple, so a state whose
    # relevant components are unchanged reuses the whole enumeration
    # (including "no match").
    partial_cache: Dict[tuple, tuple] = {}
    generic: Optional[Callable[..., Any]] = None

    def partials(args) -> tuple:
        frag_lists = []
        for k in nt_rng:
            frags = nt_enums[k](args[nt_t[k]])
            if not frags:
                return _NO_FRAGS
            frag_lists.append(frags)
        # Breadth-wise product: extend the partial-binding list factor by
        # factor.  List order equals depth-first backtracking order (each
        # partial binding is extended by its fragments in fragment order),
        # so enumeration order is identical to the naive nested loops.
        envs: List[Binding] = [{}]
        for k in nt_rng:
            frags = frag_lists[k]
            join = join_names_t[k]
            if not join:
                if len(frags) == 1:
                    frag = frags[0]
                    if frag:
                        for env in envs:
                            env.update(frag)
                    continue
                new: List[Binding] = []
                last = len(frags) - 1
                for env in envs:
                    for j in range(last):
                        e2 = dict(env)
                        e2.update(frags[j])
                        new.append(e2)
                    env.update(frags[last])
                    new.append(env)
                envs = new
                continue
            if len(frags) == 1:
                # One fragment: keep the partials that agree on the join
                # names, binding the rest in place (discarded partials may
                # keep a partial update — they are dropped entirely).
                frag = frags[0]
                new = []
                for env in envs:
                    for name, value in frag:
                        cur = env.get(name, _UNBOUND)
                        if cur is _UNBOUND:
                            env[name] = value
                        elif cur is value or cur == value:
                            continue
                        else:
                            break
                    else:
                        new.append(env)
                envs = new
            else:
                cache = group_caches[k]
                targ = args[nt_t[k]]
                tkey = id(targ)
                groups = cache.get(tkey)
                if groups is None:
                    groups = _group_frags(frags, join)
                    cache[tkey] = groups
                    finalize(targ, cache.pop, tkey, None)
                single = len(join) == 1
                nm = join[0]
                new = []
                for env in envs:
                    key = env[nm] if single else tuple(env[j] for j in join)
                    bucket = groups.get(key)
                    if not bucket:
                        continue
                    last = len(bucket) - 1
                    for j in range(last):
                        e2 = dict(env)
                        e2.update(bucket[j])
                        new.append(e2)
                    env.update(bucket[last])
                    new.append(env)
                envs = new
            if not envs:
                return _NO_FRAGS
        return tuple(tuple(e.items()) for e in envs)

    def run(term, base):
        nonlocal generic
        if base:
            # Pre-bound queries bypass the empty-binding fragment caches.
            if generic is None:
                generic = _generic_query(pattern)
            return generic(term, base)
        if not isinstance(term, Struct) or term.functor != functor:
            return _NO_FRAGS
        args = term.args
        if len(args) != n:
            return _NO_FRAGS
        if nt_t:
            ckey = tuple(map(id, args)) if len(nt_t) == n else \
                tuple(id(args[i]) for i in nt_t)
            parts = partial_cache.get(ckey)
            if parts is None:
                parts = partials(args)
                partial_cache[ckey] = parts
                for i in nt_t:
                    finalize(args[i], partial_cache.pop, ckey, None)
            if not parts:
                return _NO_FRAGS
        else:
            parts = _UNIT_FRAGS
        out = []
        for pairs in parts:
            env = dict(pairs)
            for nm, i in trivial_t:
                env[nm] = args[i]
            out.append(env)
        return out

    return run


# Compiled-pattern cache, keyed by pattern *identity*: two ``==`` bags with
# different item orders must keep their own (order-faithful) matchers, so an
# equality-keyed cache would be wrong.  Interning already unifies patterns
# built the same way.  Entries are evicted when the pattern is collected.
_COMPILED: Dict[int, Callable[..., Any]] = {}


def _det_as_gen(fn: Callable[..., Any]) -> Callable[..., Any]:
    def run(term, chain, base):
        c = fn(term, chain, base)
        if c is not _FAIL:
            yield c
    return run


def _compiled_top(pattern: Term) -> Callable[[Term, Optional[Binding]], Iterator[Binding]]:
    key = id(pattern)
    fn = _COMPILED.get(key)
    if fn is None:
        if (isinstance(pattern, Struct) and not pattern.ground
                and len(pattern.args) > 1 and _has_bag(pattern)):
            fn = _compile_product(pattern)
        else:
            fn = _generic_query(pattern)
        if isinstance(pattern, (Atom, Struct, Seq, Bag)) and pattern.ground \
                and not _has_bag(pattern):
            # The ground matcher closes over the pattern itself; caching it
            # would pin the cache key forever.  Compilation is trivial here.
            return fn
        _COMPILED[key] = fn
        finalize(pattern, _COMPILED.pop, key, None)
    return fn


def compile_pattern(pattern: Term) -> Callable[..., Iterator[Binding]]:
    """Compile ``pattern`` once; the returned callable is ``match`` bound to
    it: ``compiled(term, binding=None)`` yields every matching binding."""
    fn = _compiled_top(pattern)

    def run(term: Term, binding: Optional[Binding] = None) -> Iterator[Binding]:
        return fn(term, binding if binding else None)

    return run


def match(pattern: Term, term: Term, binding: Optional[Binding] = None) -> Iterator[Binding]:
    """Yield every binding under which ``pattern`` matches ``term``.

    ``term`` must be ground.  The same variable occurring twice must match
    equal subterms (non-linear patterns are supported).
    """
    return _compiled_top(pattern)(term, binding if binding else None)


def match_first(pattern: Term, term: Term) -> Optional[Binding]:
    """Return the first binding matching ``pattern`` to ``term``, or None."""
    for b in match(pattern, term):
        return b
    return None


def match_all(pattern: Term, term: Term) -> list:
    """Return all distinct bindings matching ``pattern`` to ``term``."""
    out: list = []
    for b in match(pattern, term):
        if b not in out:
            out.append(b)
    return out


# ---------------------------------------------------------------------------
# RHS instantiation
# ---------------------------------------------------------------------------

def compile_builder(term: Term) -> Callable[[Binding], Term]:
    """Compile ``term`` into a substitution skeleton.

    The returned callable is ``substitute`` specialised to ``term``: ground
    subterms are returned as-is (interning makes that exact, not just
    equal), variables become dict lookups, and only the variable-carrying
    spine is rebuilt per instantiation.
    """
    if not isinstance(term, Term):
        raise TermError(f"unknown term type: {term!r}")
    if term.ground:
        return lambda b: term
    if isinstance(term, Var):
        def build_var(b, _name=term.name, _t=term):
            v = b.get(_name, _UNBOUND)
            return _t if v is _UNBOUND else v
        return build_var
    if isinstance(term, Wildcard):
        return lambda b: term
    if isinstance(term, Struct):
        arg_fns = tuple(compile_builder(a) for a in term.args)

        def build_struct(b, _f=term.functor, _fns=arg_fns):
            return Struct(_f, [fn(b) for fn in _fns])
        return build_struct
    if isinstance(term, Seq):
        item_fns = tuple(compile_builder(a) for a in term.items)

        def build_seq(b, _fns=item_fns):
            return Seq([fn(b) for fn in _fns])
        return build_seq
    if isinstance(term, Bag):
        bag_fns = tuple(compile_builder(a) for a in term.items)
        rest = term.rest
        if rest is None:
            def build_bag(b, _fns=bag_fns):
                return Bag([fn(b) for fn in _fns])
            return build_bag

        def build_bag_rest(b, _fns=bag_fns, _rest=rest, _name=rest.name):
            items = [fn(b) for fn in _fns]
            bound = b.get(_name, _UNBOUND)
            if bound is _UNBOUND:
                return Bag(items, rest=_rest)
            if not isinstance(bound, Bag):
                raise MatchError(
                    f"bag rest variable {_name!r} bound to non-bag {bound!r}"
                )
            items.extend(bound.items)
            return Bag(items)
        return build_bag_rest
    raise TermError(f"unknown term type: {term!r}")


def substitute(term: Term, binding: Binding) -> Term:
    """Replace every variable in ``term`` with its image under ``binding``.

    Unbound variables are left in place (the result is then still a
    pattern).  A bag whose rest variable is bound to a bag is spliced flat;
    a bound wildcard is impossible (wildcards never bind).
    """
    try:
        if term.ground:
            return term
    except AttributeError:
        raise TermError(f"unknown term type: {term!r}") from None
    if isinstance(term, Wildcard):
        return term
    if isinstance(term, Var):
        bound = binding.get(term.name, _UNBOUND)
        return term if bound is _UNBOUND else bound
    if isinstance(term, Struct):
        return Struct(term.functor, [substitute(a, binding) for a in term.args])
    if isinstance(term, Seq):
        return Seq([substitute(a, binding) for a in term.items])
    if isinstance(term, Bag):
        items = [substitute(a, binding) for a in term.items]
        if term.rest is not None:
            bound = binding.get(term.rest.name, _UNBOUND)
            if bound is _UNBOUND:
                return Bag(items, rest=term.rest)
            if not isinstance(bound, Bag):
                raise MatchError(
                    f"bag rest variable {term.rest.name!r} bound to non-bag {bound!r}"
                )
            items.extend(bound.items)
        return Bag(items)
    raise TermError(f"unknown term type: {term!r}")


# ---------------------------------------------------------------------------
# Pattern/pattern comparison (used by the static linter, repro.lint)
# ---------------------------------------------------------------------------
#
# The rule sets in this repository match at the root of the state term, so
# deciding whether two rule LHS patterns can fire on a common state — or
# whether one pattern *subsumes* another — is a comparison between two
# patterns, not a pattern and a ground term.  Full AC-unification is
# undecidable in general settings and overkill here; the functions below
# implement the sound approximations the linter needs for the term shapes
# the specs actually use (single-level bag rest variables, struct items).


class _SkolemCounter:
    """Fresh-name source for skolemization."""

    def __init__(self) -> None:
        self.n = 0

    def fresh(self) -> int:
        self.n += 1
        return self.n


def skolemize(pattern: Term, prefix: str = "$sk", _counter: Optional[_SkolemCounter] = None) -> Term:
    """Replace every variable/wildcard in ``pattern`` with a distinct atom.

    The result is a ground term that is a *most general instance* of the
    pattern: any pattern matching the skolemized term matches every
    instance of the original (for the linear, struct-shaped patterns used
    by the spec systems).  A bag rest variable is skolemized as one extra
    distinguished element, which keeps the bag shape while marking "some
    unknown remainder".
    """
    counter = _counter or _SkolemCounter()
    if isinstance(pattern, Atom):
        return pattern
    if isinstance(pattern, Var):
        return Atom((prefix, pattern.name))
    if isinstance(pattern, Wildcard):
        return Atom((prefix, "_", counter.fresh()))
    if isinstance(pattern, Struct):
        return Struct(
            pattern.functor,
            tuple(skolemize(a, prefix, counter) for a in pattern.args),
        )
    if isinstance(pattern, Seq):
        return Seq(tuple(skolemize(a, prefix, counter) for a in pattern.items))
    if isinstance(pattern, Bag):
        items = [skolemize(a, prefix, counter) for a in pattern.items]
        if pattern.rest is not None:
            items.append(Atom((prefix, "rest", pattern.rest.name)))
        return Bag(items)
    raise TermError(f"unknown pattern type: {pattern!r}")


def pattern_subsumes(general: Term, specific: Term) -> bool:
    """True when every instance of ``specific`` is an instance of ``general``.

    Decided by matching ``general`` against a skolemized copy of
    ``specific``: the skolem atoms are fresh constants no pattern mentions,
    so ``general`` can absorb them only through its own variables,
    wildcards, or bag rest — exactly the subsumption condition.  A bag rest
    variable in ``specific`` becomes a single skolem element; ``general``
    can then only absorb it with a rest variable of its own (an item
    variable would fix the remainder's size, which subsumption forbids) —
    but a lone ``Var`` item in ``general`` against the skolem-rest element
    over-approximates, so results are exact for the repo's rule shapes
    (bag items are structs) and conservative-permissive otherwise.
    """
    ground = skolemize(specific)
    for _ in match(general, ground):
        return True
    return False


def patterns_overlap(a: Term, b: Term) -> bool:
    """True when some ground term can match both patterns (LHS overlap).

    Implemented as a simultaneous structural walk — a unification that
    treats the two patterns' variables as disjoint and answers only the
    yes/no question.  Variables and wildcards overlap with anything (the
    patterns in this repository are linear apart from repeated state
    variables, and a repeated variable can always be instantiated
    consistently when each occurrence overlaps); bags overlap when the
    fixed items can be injectively paired up and any excess on either side
    is absorbed by the other's rest variable.
    """
    if isinstance(a, (Var, Wildcard)) or isinstance(b, (Var, Wildcard)):
        return True
    if isinstance(a, Atom) or isinstance(b, Atom):
        return isinstance(a, Atom) and isinstance(b, Atom) and a.value == b.value
    if isinstance(a, Struct) or isinstance(b, Struct):
        return (
            isinstance(a, Struct)
            and isinstance(b, Struct)
            and a.functor == b.functor
            and len(a.args) == len(b.args)
            and all(patterns_overlap(x, y) for x, y in zip(a.args, b.args))
        )
    if isinstance(a, Seq) or isinstance(b, Seq):
        return (
            isinstance(a, Seq)
            and isinstance(b, Seq)
            and len(a.items) == len(b.items)
            and all(patterns_overlap(x, y) for x, y in zip(a.items, b.items))
        )
    if isinstance(a, Bag) and isinstance(b, Bag):
        return _bags_overlap(a, b)
    raise TermError(f"unknown pattern type: {a!r} / {b!r}")


def _bags_overlap(a: Bag, b: Bag) -> bool:
    """Backtracking search for an injective pairing of fixed bag items."""
    if a.rest is None and b.rest is None and len(a.items) != len(b.items):
        return False
    if a.rest is None and len(b.items) > len(a.items):
        return False
    if b.rest is None and len(a.items) > len(b.items):
        return False

    def assign(i: int, available: list) -> bool:
        if i == len(a.items):
            # Leftover b-items must be absorbable by a's rest variable.
            return a.rest is not None or not available
        item = a.items[i]
        for pos, j in enumerate(available):
            if patterns_overlap(item, b.items[j]):
                if assign(i + 1, available[:pos] + available[pos + 1 :]):
                    return True
        # Or this a-item is absorbed by b's rest variable.
        if b.rest is not None and assign(i + 1, available):
            return True
        return False

    return assign(0, list(range(len(b.items))))
