"""Paper-notation pretty-printing for TRS terms and reductions.

Renders states the way the paper writes them — ``(Q|(x,d_x), H, P, T)``
style — so reduction traces read like Figures 2–7 instead of nested
constructor dumps.  Conventions (matching :mod:`repro.specs.common`):

- ``phi_x``/empty sequences print as ``∅``; data ``d(x,k)`` as ``d_x^k``;
  ``visit(x)`` as ``v_x``; traps ``trap(x,z)`` as ``(x,τ_z)``;
- ``out(x,y,m)`` / ``in(x,y,m)`` print as ``x→y:m`` / ``x←y:m``;
- bags print with the ``|`` connective, sequences with ``⊕``.
"""

from __future__ import annotations

from typing import List

from repro.trs.terms import Atom, Bag, Seq, Struct, Term, Var, Wildcard
from repro.trs.trace import Reduction

__all__ = ["pretty", "pretty_reduction"]


def _payload(term: Term) -> str:
    if isinstance(term, Struct):
        if term.functor == "token":
            return f"token({pretty(term.args[0])})"
        if term.functor == "loan":
            return f"loan^({pretty(term.args[0])})"
        if term.functor == "gimme":
            n, history, z = term.args
            return f"gimme(n={pretty(n)},{pretty(history)},τ_{pretty(z)})"
        if term.functor == "ask":
            return f"τ_{pretty(term.args[0])}"
    return pretty(term)


def pretty(term: Term) -> str:
    """Render one term in paper-style notation."""
    if isinstance(term, Atom):
        return "⊥" if term.value == "bot" else str(term.value)
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Wildcard):
        return "-"
    if isinstance(term, Seq):
        if not term.items:
            return "∅"
        return "⊕".join(pretty(i) for i in term.items)
    if isinstance(term, Bag):
        parts: List[str] = [pretty(i) for i in term.items]
        if term.rest is not None:
            parts.insert(0, term.rest.name)
        return "{" + " | ".join(parts) + "}" if parts else "∅"
    if isinstance(term, Struct):
        f = term.functor
        if f == "q":
            return f"({pretty(term.args[0])},{pretty(term.args[1])})"
        if f == "p":
            return f"({pretty(term.args[0])},{pretty(term.args[1])})"
        if f == "d":
            return f"d_{pretty(term.args[0])}^{pretty(term.args[1])}"
        if f == "visit":
            return f"v_{pretty(term.args[0])}"
        if f == "trap":
            return f"({pretty(term.args[0])},τ_{pretty(term.args[1])})"
        if f == "out":
            x, y, m = term.args
            return f"{pretty(x)}→{pretty(y)}:{_payload(m)}"
        if f == "in":
            x, y, m = term.args
            return f"{pretty(x)}←{pretty(y)}:{_payload(m)}"
        if f in ("S", "S1", "Tok", "MP", "Srch", "BS"):
            inner = ", ".join(pretty(a) for a in term.args)
            return f"{f}({inner})"
        inner = ", ".join(pretty(a) for a in term.args)
        return f"{f}({inner})"
    return repr(term)


def pretty_reduction(reduction: Reduction, limit: int = 20) -> str:
    """Render a reduction as numbered rewrite steps (first ``limit``)."""
    lines = [f"    {pretty(reduction.initial)}"]
    for idx, step in enumerate(reduction.steps[:limit]):
        lines.append(f"--{step.rule_name}-->")
        lines.append(f"    {pretty(step.state)}")
    if len(reduction.steps) > limit:
        lines.append(f"... ({len(reduction.steps) - limit} more steps)")
    return "\n".join(lines)
