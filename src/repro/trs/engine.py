"""The rewriting engine.

:class:`Rewriter` enumerates enabled rule instantiations of a state,
applies chosen ones, and drives whole reductions under a strategy.  It also
provides bounded reachability search (used by the refinement checker to
verify that a mapped fine-system step is simulated by the coarse system in
a small number of steps).
"""

from __future__ import annotations

import random
from typing import Callable, Iterator, List, Optional, Set, Tuple

from repro.errors import NoApplicableRuleError
from repro.trs.matching import Binding
from repro.trs.rules import Rule, RuleContext, RuleSet
from repro.trs.strategies import Strategy, first_applicable
from repro.trs.terms import Term
from repro.trs.trace import Reduction

__all__ = ["Rewriter"]


class Rewriter:
    """Applies a :class:`RuleSet` to system-state terms."""

    def __init__(self, ruleset: RuleSet, ctx: Optional[RuleContext] = None) -> None:
        self.ruleset = ruleset
        self.ctx = ctx if ctx is not None else RuleContext()

    # -- enumeration --------------------------------------------------------

    def instantiations(self, state: Term) -> List[Tuple[Rule, Binding]]:
        """All enabled ``(rule, binding)`` pairs for ``state``, in rule order."""
        out: List[Tuple[Rule, Binding]] = []
        for rule in self.ruleset:
            for binding in rule.instantiations(state, self.ctx):
                out.append((rule, binding))
        return out

    def is_normal_form(self, state: Term) -> bool:
        """True when no rule applies to ``state``."""
        for rule in self.ruleset:
            for _ in rule.instantiations(state, self.ctx):
                return False
        return True

    # -- single steps --------------------------------------------------------

    def apply(self, state: Term, rule: Rule, binding: Binding) -> Optional[Term]:
        """Apply one instantiation; None when its where-clause vetoes."""
        return rule.apply(state, binding, self.ctx)

    def step(self, state: Term, strategy: Strategy = first_applicable) -> Optional[Tuple[str, Binding, Term]]:
        """Perform one rewriting step chosen by ``strategy``.

        Returns ``(rule_name, binding, new_state)``, or None when the
        strategy declines every enabled instantiation (or none is enabled).
        Instantiations vetoed by their where-clause are retried with the
        remaining choices.
        """
        choices = self.instantiations(state)
        while choices:
            chosen = strategy(choices)
            if chosen is None:
                return None
            rule, binding = chosen
            result = self.apply(state, rule, binding)
            if result is not None:
                return rule.name, binding, result
            choices.remove(chosen)
        return None

    def successors(self, state: Term) -> Iterator[Tuple[str, Term]]:
        """Yield every one-step successor of ``state`` as ``(rule, state)``."""
        for rule, binding in self.instantiations(state):
            result = self.apply(state, rule, binding)
            if result is not None:
                yield rule.name, result

    # -- reductions ----------------------------------------------------------

    def reduce(
        self,
        initial: Term,
        max_steps: int,
        strategy: Strategy = first_applicable,
        stop: Optional[Callable[[Term], bool]] = None,
        require_progress: bool = False,
    ) -> Reduction:
        """Drive a reduction of up to ``max_steps`` steps.

        Stops early when ``stop(state)`` becomes true or when no step is
        possible.  With ``require_progress`` a dead end before ``max_steps``
        raises :class:`NoApplicableRuleError` instead of returning.
        """
        reduction = Reduction(initial)
        state = initial
        for _ in range(max_steps):
            if stop is not None and stop(state):
                break
            outcome = self.step(state, strategy)
            if outcome is None:
                if require_progress:
                    raise NoApplicableRuleError(
                        f"reduction stuck after {len(reduction)} steps"
                    )
                break
            rule_name, binding, state = outcome
            reduction.record(rule_name, binding, state)
        return reduction

    def random_reduction(
        self, initial: Term, max_steps: int, seed: int, weights: Optional[dict] = None
    ) -> Reduction:
        """Convenience: a seeded uniformly (or weighted) random reduction."""
        rng = random.Random(seed)
        if weights is None:
            from repro.trs.strategies import random_strategy

            strategy = random_strategy(rng)
        else:
            from repro.trs.strategies import weighted_strategy

            strategy = weighted_strategy(rng, weights)
        return self.reduce(initial, max_steps, strategy)

    # -- bounded search ------------------------------------------------------

    def reachable(self, initial: Term, max_states: int) -> Set[Term]:
        """Breadth-first set of states reachable from ``initial`` (bounded).

        Intended for small instances; raises ``NoApplicableRuleError`` never —
        exploration just stops at the bound.
        """
        seen: Set[Term] = {initial}
        frontier = [initial]
        cursor = 0  # list + cursor: pop(0) is O(n) per dequeue
        while cursor < len(frontier) and len(seen) < max_states:
            state = frontier[cursor]
            cursor += 1
            for _, succ in self.successors(state):
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
                    if len(seen) >= max_states:
                        break
        return seen

    def can_reach(self, source: Term, target: Term, max_depth: int) -> bool:
        """True when ``target`` is reachable from ``source`` within
        ``max_depth`` steps (used by the refinement checker)."""
        if source == target:
            return True
        frontier = {source}
        seen = {source}
        for _ in range(max_depth):
            next_frontier: Set[Term] = set()
            for state in frontier:
                for _, succ in self.successors(state):
                    if succ == target:
                        return True
                    if succ not in seen:
                        seen.add(succ)
                        next_frontier.add(succ)
            if not next_frontier:
                return False
            frontier = next_frontier
        return False
