"""Keyed arrival processes for the multi-token fabric.

Where :mod:`repro.workload.generators` decides *when nodes become ready*
on one cluster, these generators decide *which key* traffic lands on — the
realistic regime for a lock service is heavy skew (a few hot keys, a long
cold tail), modelled here with Zipf-distributed key popularity.

Two loop disciplines:

- :class:`ZipfKeyedWorkload` — **open loop**: arrivals are a Poisson
  process whose rate does not react to grant latency (the honest way to
  measure responsiveness under load; queueing shows up as waiting, and
  arrivals on a node already waiting are dropped by the lane exactly like
  ``Cluster.request``).
- :class:`ClosedLoopKeyedWorkload` — **closed loop**: a fixed population
  of clients, each pinned to a Zipf-drawn key, cycling request → grant →
  think.  Offered load self-throttles to the fabric's grant throughput.

All draws flow from the *fabric* RNG (never a lane RNG), so keyed traffic
cannot perturb per-key determinism.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Tuple

from repro.errors import ConfigError

__all__ = ["KeyedWorkload", "ZipfKeyedWorkload", "ClosedLoopKeyedWorkload",
           "zipf_cdf"]


def zipf_cdf(n_keys: int, s: float) -> List[float]:
    """Cumulative Zipf distribution over ``n_keys`` ranks.

    Rank ``k`` (0-based) gets probability proportional to ``1/(k+1)**s``;
    draw a key with ``bisect_left(cdf, rng.random())``.
    """
    if n_keys < 1:
        raise ConfigError(f"n_keys must be >= 1, got {n_keys}")
    if s < 0:
        raise ConfigError(f"zipf exponent must be >= 0, got {s}")
    weights = [1.0 / (k + 1) ** s for k in range(n_keys)]
    total = sum(weights)
    cdf: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w
        cdf.append(acc / total)
    cdf[-1] = 1.0  # guard against float drift at the top
    return cdf


class KeyedWorkload:
    """Base class; ``bind`` wires the workload to a fabric."""

    fabric = None

    def bind(self, fabric) -> None:
        if len(fabric) == 0:
            raise ConfigError("cannot bind a keyed workload to an empty fabric")
        self.fabric = fabric
        self.on_bind()

    def on_bind(self) -> None:
        """Subclass hook: draw static state, schedule the first events."""

    def on_grant(self, key_id: int, node: int, req_seq: int, now: float) -> None:
        """Fabric grant fan-out (closed-loop generators react here)."""


class ZipfKeyedWorkload(KeyedWorkload):
    """Open-loop Poisson arrivals over Zipf-popular keys.

    ``mean_interval`` is the fabric-wide mean gap between arrivals; each
    arrival draws a key rank from Zipf(``s``) and a node on that lane —
    the key's *home node* (``key_id % n``, modelling client affinity) with
    probability ``home_bias``, else uniform.  ``start`` delays the first
    arrival.
    """

    def __init__(self, mean_interval: float, s: float = 1.1,
                 home_bias: float = 0.7, start: float = 0.0) -> None:
        if mean_interval <= 0:
            raise ConfigError(f"mean_interval must be > 0, got {mean_interval}")
        if not 0.0 <= home_bias <= 1.0:
            raise ConfigError(f"home_bias must be in [0, 1], got {home_bias}")
        self.mean_interval = mean_interval
        self.s = s
        self.home_bias = home_bias
        self.start = start
        self._cdf: List[float] = []
        self._ns: List[int] = []

    def on_bind(self) -> None:
        fabric = self.fabric
        self._cdf = zipf_cdf(len(fabric), self.s)
        self._ns = [lane.n for lane in fabric.lanes()]
        # Hot loop: pre-bind everything the per-arrival tick touches.
        rng = fabric.rng
        self._random = rng.random
        self._expovariate = rng.expovariate
        self._randrange = rng.randrange
        self._request_id = fabric.request_id
        self._post = fabric.post
        self._rate = 1.0 / self.mean_interval
        gap = rng.expovariate(self._rate)
        fabric.post(self.start + gap, self._tick)

    def _tick(self) -> None:
        random = self._random
        kid = bisect_left(self._cdf, random())
        n = self._ns[kid]
        if random() < self.home_bias:
            node = kid % n
        else:
            node = self._randrange(n)
        self._request_id(kid, node)
        self._post(self._expovariate(self._rate), self._tick)

    def arrivals(self, rng, ns: List[int],
                 horizon: float) -> List[Tuple[float, int, int]]:
        """Precompute the arrival stream to ``horizon`` as
        ``(time, key_id, node)`` triples.

        Open-loop traffic never reacts to grants, so the stream depends
        only on the RNG.  The draw order here replicates the event-driven
        path exactly (gap, then key, bias, [node], next gap), making the
        precomputed stream bit-identical to a live run — this is what lets
        :class:`~repro.fabric.fast.FastFabric` compile keyed traffic.
        """
        cdf = zipf_cdf(len(ns), self.s)
        rate = 1.0 / self.mean_interval
        time = self.start + rng.expovariate(rate)
        out: List[Tuple[float, int, int]] = []
        while time <= horizon:
            kid = bisect_left(cdf, rng.random())
            n = ns[kid]
            if rng.random() < self.home_bias:
                node = kid % n
            else:
                node = rng.randrange(n)
            out.append((time, kid, node))
            time += rng.expovariate(rate)
        return out


class ClosedLoopKeyedWorkload(KeyedWorkload):
    """A fixed client population cycling request → grant → think.

    ``clients`` clients each draw a Zipf(``s``) key and a home node once
    at bind.  Think times are exponential with mean ``think_time``.  Lanes
    drop arrivals on an already-waiting node, so clients sharing a
    ``(key, node)`` seat coalesce: a grant serves one of them and the
    remainder re-request immediately (their queueing was real, their
    protocol request was merged).
    """

    def __init__(self, clients: int = 16, think_time: float = 1.0,
                 s: float = 1.1) -> None:
        if clients < 1:
            raise ConfigError(f"clients must be >= 1, got {clients}")
        if think_time <= 0:
            raise ConfigError(f"think_time must be > 0, got {think_time}")
        self.clients = clients
        self.think_time = think_time
        self.s = s
        self._pending: Dict[Tuple[int, int], int] = {}

    def on_bind(self) -> None:
        fabric = self.fabric
        rng = fabric.rng
        cdf = zipf_cdf(len(fabric), self.s)
        ns = [lane.n for lane in fabric.lanes()]
        for _ in range(self.clients):
            kid = bisect_left(cdf, rng.random())
            node = kid % ns[kid] if rng.random() < 0.5 else rng.randrange(ns[kid])
            fabric.post(rng.expovariate(1.0 / self.think_time),
                        self._request, kid, node)

    def _request(self, kid: int, node: int) -> None:
        seat = (kid, node)
        self._pending[seat] = self._pending.get(seat, 0) + 1
        self.fabric.request_id(kid, node)

    def on_grant(self, key_id: int, node: int, req_seq: int, now: float) -> None:
        seat = (key_id, node)
        waiting = self._pending.get(seat, 0)
        if waiting == 0:
            return  # grant for traffic some other workload offered
        fabric = self.fabric
        self._pending[seat] = waiting - 1
        fabric.post(fabric.rng.expovariate(1.0 / self.think_time),
                    self._request, key_id, node)
        if waiting > 1:
            # Coalesced seat-mates: put the merged request back on the wire.
            fabric.post(0.0, fabric.request_id, key_id, node)
