"""Workload generators for the simulation experiments."""

from repro.workload.generators import (
    BurstyWorkload,
    FixedRateWorkload,
    HotspotWorkload,
    SaturatedWorkload,
    SingleShotWorkload,
    UniformIntervalWorkload,
    Workload,
    open_loop_arrivals,
)
from repro.workload.keyed import (
    ClosedLoopKeyedWorkload,
    KeyedWorkload,
    ZipfKeyedWorkload,
    zipf_cdf,
)

__all__ = [
    "BurstyWorkload",
    "ClosedLoopKeyedWorkload",
    "FixedRateWorkload",
    "HotspotWorkload",
    "KeyedWorkload",
    "SaturatedWorkload",
    "SingleShotWorkload",
    "UniformIntervalWorkload",
    "Workload",
    "ZipfKeyedWorkload",
    "open_loop_arrivals",
    "zipf_cdf",
]
