"""Workload generators for the simulation experiments."""

from repro.workload.generators import (
    BurstyWorkload,
    FixedRateWorkload,
    HotspotWorkload,
    SaturatedWorkload,
    SingleShotWorkload,
    UniformIntervalWorkload,
    Workload,
)

__all__ = [
    "BurstyWorkload",
    "FixedRateWorkload",
    "HotspotWorkload",
    "SaturatedWorkload",
    "SingleShotWorkload",
    "UniformIntervalWorkload",
    "Workload",
]
