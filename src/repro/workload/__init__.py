"""Workload generators for the simulation experiments."""

from repro.workload.generators import (
    BurstyWorkload,
    FixedRateWorkload,
    HotspotWorkload,
    SaturatedWorkload,
    SingleShotWorkload,
    UniformIntervalWorkload,
    Workload,
)
from repro.workload.keyed import (
    ClosedLoopKeyedWorkload,
    KeyedWorkload,
    ZipfKeyedWorkload,
    zipf_cdf,
)

__all__ = [
    "BurstyWorkload",
    "ClosedLoopKeyedWorkload",
    "FixedRateWorkload",
    "HotspotWorkload",
    "KeyedWorkload",
    "SaturatedWorkload",
    "SingleShotWorkload",
    "UniformIntervalWorkload",
    "Workload",
    "ZipfKeyedWorkload",
    "zipf_cdf",
]
