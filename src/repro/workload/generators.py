"""Workload generators.

A workload decides *when* nodes become ready.  Generators are bound to a
cluster and schedule request events on its simulator; all randomness flows
from the cluster's seeded RNG, so runs are reproducible.

The paper's Section 4.3 workloads:

- Figure 9 — :class:`FixedRateWorkload` with ``mean_interval=10``: "on
  average, every 10 time units, one of the nodes in the system makes a
  request";
- Figure 10 — the same generator with the interval swept upwards
  ("we decrease the load").

Additional generators exercise the regimes the introduction motivates:
bursty-but-infrequent use (tree protocols' home turf), hotspot skew,
saturation (ring protocols' home turf), and single-shot probes.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigError

__all__ = [
    "Workload",
    "FixedRateWorkload",
    "UniformIntervalWorkload",
    "BurstyWorkload",
    "HotspotWorkload",
    "SaturatedWorkload",
    "SingleShotWorkload",
    "open_loop_arrivals",
]


def open_loop_arrivals(mean_interval: float, count: int, n: int,
                       rng: random.Random) -> List[Tuple[float, int]]:
    """Precompute ``count`` global Poisson arrivals ``(time, node)``.

    The wall-clock form of :class:`FixedRateWorkload` (same draw order:
    exponential gap, then a uniform node, per arrival) for drivers that
    have no simulator to schedule on — the wire load generator replays
    the returned schedule against a real lock service."""
    if mean_interval <= 0:
        raise ConfigError(f"mean_interval must be positive, got {mean_interval}")
    if n < 1:
        raise ConfigError(f"n must be >= 1, got {n}")
    if count < 0:
        raise ConfigError(f"count must be >= 0, got {count}")
    arrivals: List[Tuple[float, int]] = []
    now = 0.0
    for _ in range(count):
        now += rng.expovariate(1.0 / mean_interval)
        arrivals.append((now, rng.randrange(n)))
    return arrivals


class Workload:
    """Base class.  ``bind`` wires the workload to a cluster; generators
    then keep themselves scheduled on the cluster's simulator."""

    def bind(self, cluster) -> None:
        raise NotImplementedError

    # Subclasses needing grant feedback override this (cluster calls it).
    def on_grant(self, node: int, req_seq: int, now: float) -> None:
        pass


class FixedRateWorkload(Workload):
    """Global Poisson arrivals: exponential inter-request times with the
    given mean; each request lands on a uniformly random node.

    A node that is already waiting is skipped (its pending request stands),
    matching the single-outstanding discipline.
    """

    def __init__(self, mean_interval: float) -> None:
        if mean_interval <= 0:
            raise ConfigError(f"mean_interval must be positive, got {mean_interval}")
        self.mean_interval = mean_interval
        self._cluster = None

    def bind(self, cluster) -> None:
        self._cluster = cluster
        self._schedule_next()

    def _schedule_next(self) -> None:
        gap = self._cluster.rng.expovariate(1.0 / self.mean_interval)
        self._cluster.sim.schedule(gap, self._fire)

    def _fire(self) -> None:
        node = self._cluster.rng.randrange(self._cluster.n)
        self._cluster.request(node)
        self._schedule_next()


class UniformIntervalWorkload(Workload):
    """Deterministic arrivals every ``interval`` units on a random node."""

    def __init__(self, interval: float) -> None:
        if interval <= 0:
            raise ConfigError(f"interval must be positive, got {interval}")
        self.interval = interval
        self._cluster = None

    def bind(self, cluster) -> None:
        self._cluster = cluster
        cluster.sim.schedule(self.interval, self._fire)

    def _fire(self) -> None:
        node = self._cluster.rng.randrange(self._cluster.n)
        self._cluster.request(node)
        self._cluster.sim.schedule(self.interval, self._fire)


class BurstyWorkload(Workload):
    """Quiet gaps punctuated by bursts: every ``burst_gap`` (exponential
    mean), ``burst_size`` distinct random nodes become ready at once —
    the "bursty but infrequent" regime where tree/search protocols shine."""

    def __init__(self, burst_gap: float, burst_size: int) -> None:
        if burst_gap <= 0:
            raise ConfigError(f"burst_gap must be positive, got {burst_gap}")
        if burst_size < 1:
            raise ConfigError(f"burst_size must be >= 1, got {burst_size}")
        self.burst_gap = burst_gap
        self.burst_size = burst_size
        self._cluster = None

    def bind(self, cluster) -> None:
        self._cluster = cluster
        self._schedule_next()

    def _schedule_next(self) -> None:
        gap = self._cluster.rng.expovariate(1.0 / self.burst_gap)
        self._cluster.sim.schedule(gap, self._fire)

    def _fire(self) -> None:
        size = min(self.burst_size, self._cluster.n)
        nodes = self._cluster.rng.sample(range(self._cluster.n), size)
        for node in nodes:
            self._cluster.request(node)
        self._schedule_next()


class HotspotWorkload(Workload):
    """Poisson arrivals skewed toward a hot subset: with probability
    ``hot_fraction`` the request lands (uniformly) on the first
    ``hot_nodes`` nodes, otherwise anywhere."""

    def __init__(self, mean_interval: float, hot_nodes: int,
                 hot_fraction: float = 0.9) -> None:
        if mean_interval <= 0:
            raise ConfigError(f"mean_interval must be positive, got {mean_interval}")
        if hot_nodes < 1:
            raise ConfigError(f"hot_nodes must be >= 1, got {hot_nodes}")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ConfigError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
        self.mean_interval = mean_interval
        self.hot_nodes = hot_nodes
        self.hot_fraction = hot_fraction
        self._cluster = None

    def bind(self, cluster) -> None:
        self._cluster = cluster
        self._schedule_next()

    def _schedule_next(self) -> None:
        gap = self._cluster.rng.expovariate(1.0 / self.mean_interval)
        self._cluster.sim.schedule(gap, self._fire)

    def _fire(self) -> None:
        rng = self._cluster.rng
        hot = min(self.hot_nodes, self._cluster.n)
        if rng.random() < self.hot_fraction:
            node = rng.randrange(hot)
        else:
            node = rng.randrange(self._cluster.n)
        self._cluster.request(node)
        self._schedule_next()


class SaturatedWorkload(Workload):
    """Closed-loop saturation: ``clients`` nodes request immediately, and
    each re-requests ``think_time`` after being granted — every node always
    (eventually) wants the token, the busy regime where the ring's
    throughput dominates."""

    def __init__(self, clients: Optional[int] = None, think_time: float = 0.0) -> None:
        if think_time < 0:
            raise ConfigError(f"think_time must be >= 0, got {think_time}")
        self.clients = clients
        self.think_time = think_time
        self._cluster = None
        self._members: List[int] = []

    def bind(self, cluster) -> None:
        self._cluster = cluster
        count = cluster.n if self.clients is None else min(self.clients, cluster.n)
        self._members = list(range(count))
        for node in self._members:
            cluster.sim.schedule(0.0, cluster.request, node)

    def on_grant(self, node: int, req_seq: int, now: float) -> None:
        if node not in self._members:
            return
        if self.think_time > 0:
            self._cluster.sim.schedule(self.think_time, self._cluster.request, node)
        else:
            # Re-request strictly after the grant completes, one delay later,
            # so the token is not captured forever by one node.
            self._cluster.sim.schedule(1.0, self._cluster.request, node)


class SingleShotWorkload(Workload):
    """Explicit one-off requests: ``[(time, node), ...]``."""

    def __init__(self, events: Sequence) -> None:
        self.events = sorted(events)

    def bind(self, cluster) -> None:
        for time, node in self.events:
            cluster.sim.schedule_at(time, cluster.request, node)
