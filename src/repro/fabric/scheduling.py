"""Batched scheduling for multiplexing many protocol instances on one kernel.

The fabric runs thousands of independent token instances ("lanes") over a
single :class:`repro.sim.kernel.Simulator`.  Pushing every lane's message
delivery and timer straight onto the kernel heap would make the heap — an
O(log n) structure — scale with *total* event volume across all keys.
Instead, :class:`BatchScheduler` coalesces all lane events into per-time
FIFO buckets: the kernel heap sees **one event per distinct timestamp**,
and firing a bucket walks its entries in insertion order.  With constant
message delay (the paper's model) thousands of same-time deliveries across
keys collapse into a single heap entry.

Determinism is the load-bearing property.  A lane must behave bit-for-bit
like a standalone :class:`~repro.core.cluster.Cluster` with the same seed:
per-key event *times* are unchanged (batching never alters timestamps) and
per-key *relative order* of same-time events is unchanged because every
lane event — message delivery, protocol timer, workload tick — goes through
the same bucket, which preserves global scheduling (FIFO) order, which in
turn preserves each lane's scheduling order.  Mixing bucketed and direct
heap entries would break this (a bucket drains fully before any interleaved
direct entry), which is why :class:`SimView` routes *everything* a lane
schedules through the batch layer.

Timers use tombstone cancellation: :meth:`BatchScheduler.schedule` returns
a :class:`BatchTimer` whose ``cancel()`` merely flags the entry; the bucket
drops flagged entries when it fires.  Buckets are short-lived (near-future
times), so no compaction pass is needed — this is the "amortized timer
wheel": 10k idle lanes parked on long ``idle_pause`` timers cost one heap
entry per distinct wake time, not one per lane.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.errors import SimulationError
from repro.sim.kernel import Simulator

__all__ = ["BatchScheduler", "BatchTimer", "SimView"]


class BatchTimer:
    """Cancellation handle for a batched entry (``Event``-shaped).

    Duck-types :class:`repro.sim.kernel.Event` for the one method the
    driver stack uses: ``cancel()``.  Cancellation is a tombstone — the
    entry stays in its bucket and is skipped when the bucket fires.
    """

    __slots__ = ("fn", "args", "time", "cancelled")

    def __init__(self, fn: Callable, args: Tuple, time: float) -> None:
        self.fn = fn
        self.args = args
        self.time = time
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the entry from firing (idempotent)."""
        self.cancelled = True


#: Bucket entry: a plain (fn, args) tuple for fire-and-forget posts, or a
#: BatchTimer for cancellable schedules.  Tuples dominate (message traffic),
#: so the fire loop type-checks for tuple first.
_Entry = Union[Tuple[Callable, Tuple], BatchTimer]


class BatchScheduler:
    """Per-time FIFO buckets multiplexed onto one kernel event each.

    ``executed_total`` counts *logical* entries fired (cancelled tombstones
    excluded) — the fabric's analogue of ``Simulator.executed_total``,
    which under batching would only count bucket firings.
    """

    __slots__ = ("sim", "executed_total", "_buckets", "_sim_post")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._sim_post = sim.post
        self.executed_total = 0
        # time -> insertion-ordered entries; a bucket is popped atomically
        # when it fires, so same-time entries added *during* firing open a
        # fresh bucket (and a fresh kernel event) — matching the kernel's
        # "new seq fires after already-queued same-time events" order.
        self._buckets: Dict[float, List[_Entry]] = {}

    def pending(self) -> int:
        """Live (non-cancelled) entries still queued — O(buckets)."""
        total = 0
        for entries in self._buckets.values():
            for entry in entries:
                if type(entry) is tuple or not entry.cancelled:
                    total += 1
        return total

    def post(self, delay: float, fn: Callable, *args: Any) -> None:
        """Batch ``fn(*args)`` at ``now + delay`` with no handle."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self.sim._now + delay
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [(fn, args)]
            self._sim_post(delay, self._fire, time)
        else:
            bucket.append((fn, args))

    def schedule(self, delay: float, fn: Callable, *args: Any) -> BatchTimer:
        """Batch ``fn(*args)`` at ``now + delay``; returns a cancel handle."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self.sim._now + delay
        timer = BatchTimer(fn, args, time)
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [timer]
            self._sim_post(delay, self._fire, time)
        else:
            bucket.append(timer)
        return timer

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> BatchTimer:
        """Batch ``fn(*args)`` at absolute virtual time ``time``."""
        return self.schedule(time - self.sim.now, fn, *args)

    def _fire(self, time: float) -> None:
        """Kernel callback: drain the bucket for ``time`` in FIFO order."""
        entries = self._buckets.pop(time)
        executed = 0
        for entry in entries:
            if type(entry) is tuple:
                entry[0](*entry[1])
                executed += 1
            elif not entry.cancelled:
                entry.fn(*entry.args)
                executed += 1
        self.executed_total += executed


class SimView(Simulator):
    """A lane's view of the shared kernel: same surface, batched routing.

    Passed as ``Cluster(sim=...)`` so :class:`~repro.sim.network.Network`,
    :class:`~repro.sim.driver.NodeDriver` and workload generators need no
    changes — everything they schedule lands in the shared batch layer.
    Subclasses :class:`Simulator` only so ``isinstance`` checks hold; no
    kernel state of its own is used.

    ``priority`` is not supported (the kernel never uses a non-zero
    priority anywhere in this codebase; batching by time alone would
    silently misorder prioritised events, so we refuse them loudly).
    ``run`` raises: lanes are driven by the owning fabric.
    """

    __slots__ = ()  # state lives on the two references below

    def __init__(self, scheduler: BatchScheduler) -> None:
        # Deliberately no super().__init__(): this view owns no heap.
        self._kernel = scheduler.sim
        self._batch = scheduler
        # Hot-path flattening: shadow the checking methods below with the
        # scheduler's bound methods (one frame less per event).  Nothing in
        # the driver/network/workload stack passes `priority` (the checked
        # methods remain as the documented, defensive surface for any
        # caller reaching them via the class).
        self.post = scheduler.post
        self.schedule = scheduler.schedule
        self.schedule_at = scheduler.schedule_at

    # Simulator declares no __slots__, so instance attrs work; declare the
    # two we use for readability.
    _kernel: Simulator
    _batch: BatchScheduler

    @property
    def now(self) -> float:
        return self._kernel._now  # skip the kernel's property hop

    @property
    def executed_total(self) -> int:
        """Logical entries fired fabric-wide (shared across lanes)."""
        return self._batch.executed_total

    def pending(self) -> int:
        return self._batch.pending()

    def post(self, delay: float, fn: Callable, *args: Any, priority: int = 0) -> None:
        if priority != 0:
            raise SimulationError("fabric lanes do not support priorities")
        self._batch.post(delay, fn, *args)

    def schedule(self, delay: float, fn: Callable, *args: Any,
                 priority: int = 0) -> BatchTimer:
        if priority != 0:
            raise SimulationError("fabric lanes do not support priorities")
        return self._batch.schedule(delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable, *args: Any,
                    priority: int = 0) -> BatchTimer:
        if priority != 0:
            raise SimulationError("fabric lanes do not support priorities")
        return self._batch.schedule_at(time, fn, *args)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        raise SimulationError(
            "fabric lanes cannot run the kernel; drive the TokenFabric")

    def stop(self) -> None:
        raise SimulationError(
            "fabric lanes cannot stop the kernel; drive the TokenFabric")
