"""FastFabric: the array-compiled backend for the supported subset.

Keys in a fabric are *independent* — no message, timer, or RNG draw
crosses lanes — so executing lanes sequentially is observably identical
to multiplexing them on one kernel: per-key event streams, checksums and
metrics match :class:`~repro.fabric.fabric.TokenFabric` bit for bit (see
``tests/fabric/test_fast.py``).  That independence is exactly what lets
this variant drop the shared scheduler and run each lane on
:class:`~repro.fastsim.cluster.FastCluster`'s fused loop instead.

Open-loop keyed traffic is compiled too: a
:class:`~repro.workload.keyed.ZipfKeyedWorkload`'s arrival stream depends
only on the fabric RNG, never on grant feedback, so it is precomputed to
the run horizon in one pass (same draw order as the event-driven path —
bit-identical arrivals) and injected per lane as absolute-time requests.
Closed-loop generators need grant feedback across keys and stay on the
object fabric.

Support matrix: per :func:`repro.fastsim.state.unsupported_reason` —
``ring``/``binary_search`` lanes, constant delay, no
``hold_until_release``.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, List, Optional

from repro.core.config import ProtocolConfig
from repro.errors import ConfigError, FastSimUnsupportedError, SimulationError
from repro.fastsim.cluster import FastCluster
from repro.metrics.keyed import KeyedMetricsRegistry
from repro.sim.network import DelayModel
from repro.workload.keyed import ZipfKeyedWorkload

__all__ = ["FastFabric"]


class FastFabric:
    """Keyed collection of array-compiled lanes (open-loop subset)."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self._ids: Dict[str, int] = {}
        self._keys: List[str] = []
        self._lanes: List[FastCluster] = []
        self._workloads: List[ZipfKeyedWorkload] = []
        self._metrics: Optional[KeyedMetricsRegistry] = None
        self._ran = False

    def __len__(self) -> int:
        return len(self._lanes)

    @property
    def keys(self) -> List[str]:
        return self._keys

    def lane_seed(self, key: str) -> int:
        """Same derivation as ``TokenFabric.lane_seed`` — the two backends
        build bit-identical lanes for the same fabric seed and key."""
        return zlib.crc32(f"{self.seed}|{key}".encode("utf-8"))

    def add_key(
        self,
        key: str,
        protocol: str = "binary_search",
        n: int = 4,
        seed: Optional[int] = None,
        config: Optional[ProtocolConfig] = None,
        delay: Optional[DelayModel] = None,
        loss_rate: float = 0.0,
        dup_rate: float = 0.0,
        digest: bool = False,
    ) -> FastCluster:
        """Create the compiled lane for ``key``; raises
        :class:`FastSimUnsupportedError` outside the support matrix."""
        if key in self._ids:
            raise ConfigError(f"duplicate fabric key {key!r}")
        if seed is None:
            seed = self.lane_seed(key)
        lane = FastCluster(protocol, n, seed=seed, config=config, delay=delay,
                           loss_rate=loss_rate, dup_rate=dup_rate,
                           digest=digest)
        self._ids[key] = len(self._lanes)
        self._keys.append(key)
        self._lanes.append(lane)
        return lane

    def key_id(self, key: str) -> int:
        return self._ids[key]

    def lane(self, key: str) -> FastCluster:
        return self._lanes[self._ids[key]]

    def lanes(self) -> List[FastCluster]:
        return self._lanes

    def add_workload(self, workload) -> None:
        """Attach an open-loop keyed workload (realized at :meth:`run`)."""
        if not isinstance(workload, ZipfKeyedWorkload):
            raise FastSimUnsupportedError(
                f"workload {type(workload).__name__} is not compiled; "
                f"closed-loop traffic needs the object TokenFabric")
        self._workloads.append(workload)

    def run(self, until: float) -> None:
        """Realize keyed arrivals to ``until``, then run each lane.

        Only a time horizon is supported: a fabric-wide grants bound would
        need cross-lane interleaving, which is the object fabric's job.
        """
        if self._ran:
            raise SimulationError("FastFabric.run is one-shot")
        if not self._lanes:
            raise ConfigError("FastFabric has no keys")
        self._ran = True
        ns = [lane.n for lane in self._lanes]
        for workload in self._workloads:
            for time, kid, node in workload.arrivals(self.rng, ns, until):
                self._lanes[kid].request_at(time, node)
        for lane in self._lanes:
            lane.run(until=until)

    # -- metrics -------------------------------------------------------------

    @property
    def metrics(self) -> KeyedMetricsRegistry:
        """Per-key registry rebuilt from lane trackers after :meth:`run`."""
        if self._metrics is None:
            registry = KeyedMetricsRegistry()
            for key, lane in zip(self._keys, self._lanes):
                kid = registry.add_key(key)
                tracker = lane.responsiveness
                for period, waited in zip(tracker.responsiveness_samples,
                                          tracker.waiting_samples):
                    registry.on_grant(kid, period, waited)
            self._metrics = registry
        return self._metrics

    @property
    def executed_total(self) -> int:
        return sum(lane.executed_total for lane in self._lanes)

    @property
    def sent_total(self) -> int:
        return sum(lane.sent_total for lane in self._lanes)

    def checksum(self) -> str:
        """CRC32 fold of per-lane send digests in key-id order (lanes must
        be built with ``digest=True``)."""
        crc = 0
        for lane in self._lanes:
            crc = zlib.crc32(lane.send_checksum.encode("ascii"), crc)
        return f"{crc & 0xFFFFFFFF:08x}"
