"""Multi-token fabric: thousands of token instances on one scheduler.

The paper's protocol manages a single token on a single ring.  This
package scales that out: :class:`TokenFabric` multiplexes N independent
protocol instances (one per string lock key) over one DES kernel via
batched scheduling, :class:`RingOfRings` composes leaf rings under a
binary-search upper tier for rings that would otherwise exceed a few
hundred nodes, and :class:`FastFabric` backs the supported subset with
the array-compiled engine.
"""

from repro.fabric.fabric import TokenFabric
from repro.fabric.fast import FastFabric
from repro.fabric.scheduling import BatchScheduler, BatchTimer, SimView
from repro.fabric.topology import RingOfRings

__all__ = [
    "BatchScheduler",
    "BatchTimer",
    "FastFabric",
    "RingOfRings",
    "SimView",
    "TokenFabric",
]
