"""Two-tier ring-of-rings topology.

A single logical ring does not scale past a few hundred nodes: token
circulation time, search depth, and regeneration cost all grow with ring
size.  :class:`RingOfRings` caps leaf rings at ``leaf_size`` nodes running
the paper's protocol *unchanged*, and routes acquire traffic between
leaves through an upper-tier ring of **gateway** nodes (one per leaf)
driven by the paper's adaptive binary-search strategy.

Composition semantics (a Raymond-style hierarchical composite, per the
token-based mutual-exclusion survey in PAPERS.md):

* the upper tier manages one **global** token among gateways, in
  ``hold_until_release`` mode;
* a leaf may grant locally only while its gateway holds the global token
  (the leaf is *active*);
* an active leaf serves its queued and arriving requests with the paper's
  protocol verbatim, then releases the global token once its local demand
  drains (or after ``max_batch`` grants, to bound cross-leaf starvation).

Correctness leans on the cutoff results already certified for the ring
topology (``repro.verify``): leaf behaviour at small n certifies all
leaf sizes, and the upper tier is itself just a (small) instance of the
certified protocol, so the composite grants mutually exclusively by
construction — only the active leaf's token serves.

Both tiers share one kernel through the fabric's batched scheduler, so a
ring-of-rings drops into a :class:`~repro.fabric.fabric.TokenFabric`
deployment without a second event loop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.core.cluster import Cluster
from repro.core.config import ProtocolConfig
from repro.errors import ConfigError, SimulationError
from repro.fabric.scheduling import BatchScheduler, SimView
from repro.metrics.responsiveness import ResponsivenessTracker
from repro.sim.kernel import Simulator

__all__ = ["RingOfRings"]


class RingOfRings:
    """``total_nodes`` split into leaf rings under a gateway upper tier."""

    def __init__(
        self,
        total_nodes: int,
        leaf_size: int = 256,
        protocol: str = "binary_search",
        upper_protocol: str = "binary_search",
        seed: int = 0,
        config: Optional[ProtocolConfig] = None,
        upper_config: Optional[ProtocolConfig] = None,
        max_batch: Optional[int] = None,
        sanitize: Optional[bool] = None,
    ) -> None:
        if total_nodes < 2:
            raise ConfigError(f"total_nodes must be >= 2, got {total_nodes}")
        if leaf_size < 2:
            raise ConfigError(f"leaf_size must be >= 2, got {leaf_size}")
        if max_batch is not None and max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {max_batch}")
        self.total_nodes = total_nodes
        self.max_batch = max_batch
        self.kernel = Simulator()
        self.scheduler = BatchScheduler(self.kernel)
        self.sim = SimView(self.scheduler)
        # Partition: leaves of `leaf_size`, remainder folded into the last
        # leaf (a leaf must have >= 2 nodes to be a ring).
        sizes: List[int] = []
        remaining = total_nodes
        while remaining > 0:
            take = min(leaf_size, remaining)
            if remaining - take == 1:
                take -= 1  # never strand a single-node leaf
            sizes.append(take)
            remaining -= take
        if len(sizes) < 2:
            raise ConfigError(
                f"total_nodes={total_nodes} with leaf_size={leaf_size} "
                f"yields a single leaf; use a plain Cluster")
        self.leaf_sizes = sizes
        self._offsets: List[int] = []
        offset = 0
        for size in sizes:
            self._offsets.append(offset)
            offset += size
        # Upper tier: one gateway per leaf, global token held across the
        # whole activation of a leaf.
        upper_cfg = (replace(upper_config, hold_until_release=True)
                     if upper_config is not None
                     else ProtocolConfig(hold_until_release=True))
        self.upper = Cluster.build(
            upper_protocol, len(sizes), seed=seed * 2 + 1, config=upper_cfg,
            sanitize=sanitize, sim=self.sim)
        self.leaves: List[Cluster] = [
            Cluster.build(protocol, size, seed=seed * 2 + 1000 + i,
                          config=config, sanitize=sanitize, sim=self.sim)
            for i, size in enumerate(sizes)
        ]
        self.upper.on_grant(self._on_upper_grant)
        for i, leaf in enumerate(self.leaves):
            leaf.on_grant(self._make_leaf_hook(i))
        # Per-leaf demand, split by lifecycle stage: `_queued` holds locals
        # awaiting submission (FIFO, with a dedup set), `_submitted` holds
        # locals whose request is live inside the leaf cluster.  The global
        # token is released only when `_submitted` drains — a leaf must
        # never grant while inactive.
        self._queued: List[Deque[int]] = [deque() for _ in sizes]
        self._queued_set: List[Set[int]] = [set() for _ in sizes]
        self._submitted: List[Set[int]] = [set() for _ in sizes]
        self._active: Optional[int] = None
        self._batch_left = 0
        self.responsiveness = ResponsivenessTracker()
        self._req_seq: Dict[int, int] = {}
        self._started = False
        self.grants = 0

    # -- addressing ----------------------------------------------------------

    def locate(self, node: int) -> Tuple[int, int]:
        """Map a global node id to ``(leaf index, local node id)``."""
        if not 0 <= node < self.total_nodes:
            raise ConfigError(f"node {node} out of range")
        for i in range(len(self._offsets) - 1, -1, -1):
            if node >= self._offsets[i]:
                return i, node - self._offsets[i]
        raise ConfigError(f"node {node} out of range")  # pragma: no cover

    def global_id(self, leaf: int, local: int) -> int:
        return self._offsets[leaf] + local

    # -- composition logic ---------------------------------------------------

    def request(self, node: int) -> None:
        """Make global ``node`` ready; duplicate arrivals coalesce."""
        leaf, local = self.locate(node)
        if local in self._queued_set[leaf] or local in self._submitted[leaf]:
            return  # coalesce with the standing request
        seq = self._req_seq.get(node, 0) + 1
        self._req_seq[node] = seq
        self.responsiveness.on_request(node, seq, self.sim.now)
        if leaf == self._active and self._batch_left > 0:
            self._submit(leaf, local)
        else:
            self._queued[leaf].append(local)
            self._queued_set[leaf].add(local)
            if leaf != self._active:
                # Contend for the global token (dedups while the gateway is
                # already waiting).  A budget-exhausted active leaf instead
                # re-contends at deactivation.
                self.upper.request(leaf)

    def _submit(self, leaf: int, local: int) -> None:
        self._submitted[leaf].add(local)
        self._batch_left -= 1
        self.leaves[leaf].request(local)

    def _on_upper_grant(self, gateway: int, req_seq: int, now: float) -> None:
        if self._active is not None:  # pragma: no cover - safety net
            raise SimulationError(
                f"upper tier granted leaf {gateway} while {self._active} active")
        self._active = gateway
        self._batch_left = (self.max_batch if self.max_batch is not None
                            else self.total_nodes + 1)
        queued = self._queued[gateway]
        queued_set = self._queued_set[gateway]
        # _submit can grant synchronously (token already parked at the
        # requesting node) and deactivate from a nested hook — re-check.
        while queued and self._batch_left > 0 and self._active == gateway:
            local = queued.popleft()
            queued_set.discard(local)
            self._submit(gateway, local)
        if self._active == gateway and not self._submitted[gateway]:
            self._deactivate(gateway)  # stale activation: demand evaporated

    def _make_leaf_hook(self, leaf_index: int):
        def _on_leaf_grant(local: int, req_seq: int, now: float) -> None:
            node = self.global_id(leaf_index, local)
            self.grants += 1
            self._submitted[leaf_index].discard(local)
            seq = self._req_seq[node]
            self.responsiveness.on_grant(node, seq, now)
            queued = self._queued[leaf_index]
            queued_set = self._queued_set[leaf_index]
            while (queued and self._batch_left > 0
                   and self._active == leaf_index):
                nxt = queued.popleft()
                queued_set.discard(nxt)
                self._submit(leaf_index, nxt)
            if self._active == leaf_index and not self._submitted[leaf_index]:
                # Drained (or batch budget spent with everything served):
                # hand the global token back.
                self._deactivate(leaf_index)
        return _on_leaf_grant

    def _deactivate(self, leaf_index: int) -> None:
        """Release the global token; re-contend if local demand remains."""
        self._active = None
        if self._queued[leaf_index]:
            # Delay-0 post: the request must land *after* the release has
            # been interpreted, never inside it.
            self.sim.post(0.0, self.upper.request, leaf_index)
        self.upper.release(leaf_index)

    # -- execution -----------------------------------------------------------

    @property
    def now(self) -> float:
        return self.kernel.now

    @property
    def executed_total(self) -> int:
        return self.scheduler.executed_total

    @property
    def sent_total(self) -> int:
        return (self.upper.messages.total
                + sum(leaf.messages.total for leaf in self.leaves))

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.upper.start()
        for leaf in self.leaves:
            leaf.start()

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        grants: Optional[int] = None,
    ) -> None:
        """Run until a bound is hit (see ``TokenFabric.run``)."""
        if until is None and max_events is None and grants is None:
            raise SimulationError("run() needs at least one stopping bound")
        self.start()
        budget = max_events if max_events is not None else 2_000_000_000
        while budget > 0:
            if grants is not None and self.grants >= grants:
                break
            before = self.scheduler.executed_total
            executed = self.kernel.run(until=until, max_events=512)
            budget -= self.scheduler.executed_total - before
            if executed < 512:
                break
