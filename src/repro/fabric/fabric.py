"""TokenFabric: N independent token instances over one shared kernel.

Today's :class:`~repro.core.cluster.Cluster` manages exactly one token on
one ring.  A fabric owns thousands of such instances — one per string
lock key — multiplexed over a single :class:`~repro.sim.kernel.Simulator`
through the batched scheduling layer in :mod:`repro.fabric.scheduling`.

Each key gets a *lane*: a full ``Cluster`` (cores, network, sanitizer,
tracker) whose ``sim`` is the fabric's shared :class:`SimView`.  Lanes are
bit-for-bit equivalent to standalone clusters with the same seed (see
``tests/fabric/test_determinism.py``) because batching preserves per-lane
event times and relative order, and each lane keeps a private RNG.

Hot-path engineering:

* **Interned keys** — string keys are interned once to dense integer ids;
  the per-request/per-grant path touches only list slots.
* **Batched dispatch** — all lane events share per-time FIFO buckets, so
  the kernel heap scales with in-flight traffic, not key count.
* **Amortized timers** — 10k idle lanes parked on ``idle_pause`` timers
  that share a wake time cost one heap entry total, ≈ zero events until
  demand arrives.
* **O(1) metrics** — grants feed :class:`KeyedMetricsRegistry` running
  aggregates plus a log-bucket histogram for fabric-level p50/p99.
"""

from __future__ import annotations

import random
import zlib
from typing import Callable, Dict, List, Optional

from repro.core.cluster import Cluster
from repro.core.config import ProtocolConfig
from repro.errors import ConfigError, SimulationError
from repro.fabric.scheduling import BatchScheduler, SimView
from repro.metrics.keyed import KeyedMetricsRegistry
from repro.sim.kernel import Simulator
from repro.sim.network import DelayModel

__all__ = ["TokenFabric"]


class TokenFabric:
    """A keyed collection of token-passing instances on one event loop."""

    def __init__(
        self,
        seed: int = 0,
        sanitize: Optional[bool] = None,
        track_fairness: bool = False,
    ) -> None:
        self.seed = seed
        self.rng = random.Random(seed)  # fabric-level draws (keyed workloads)
        self.kernel = Simulator()
        self.scheduler = BatchScheduler(self.kernel)
        self.sim: SimView = SimView(self.scheduler)
        # Same flattening as SimView: fabric-level posts go straight to the
        # batch layer (the method below stays as the documented surface).
        self.post = self.scheduler.post
        self.metrics = KeyedMetricsRegistry()
        self._sanitize = sanitize
        self._track_fairness = track_fairness
        self._ids: Dict[str, int] = {}
        self._keys: List[str] = []
        self._lanes: List[Cluster] = []
        self._workloads: List = []
        self._started = False

    # -- construction --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._lanes)

    @property
    def keys(self) -> List[str]:
        """Key strings in id order (do not mutate)."""
        return self._keys

    def lane_seed(self, key: str) -> int:
        """Deterministic per-key seed: stable across runs and key order."""
        return zlib.crc32(f"{self.seed}|{key}".encode("utf-8"))

    def add_key(
        self,
        key: str,
        protocol: str = "binary_search",
        n: int = 4,
        seed: Optional[int] = None,
        config: Optional[ProtocolConfig] = None,
        delay: Optional[DelayModel] = None,
        loss_rate: float = 0.0,
        dup_rate: float = 0.0,
    ) -> Cluster:
        """Create the lane for ``key``; returns its :class:`Cluster`.

        The lane is a complete cluster (own RNG seeded from ``seed`` or
        :meth:`lane_seed`, own network, own metrics) sharing only the
        fabric's scheduler.  Keys added after :meth:`start` come up live
        at the current virtual time.
        """
        if key in self._ids:
            raise ConfigError(f"duplicate fabric key {key!r}")
        if seed is None:
            seed = self.lane_seed(key)
        lane = Cluster.build(
            protocol, n, seed=seed, config=config, delay=delay,
            loss_rate=loss_rate, dup_rate=dup_rate,
            sanitize=self._sanitize, track_fairness=self._track_fairness,
            sim=self.sim,
        )
        kid = self.metrics.add_key(key)
        self._ids[key] = kid
        self._keys.append(key)
        self._lanes.append(lane)
        tracker = lane.responsiveness

        def _on_grant(node: int, req_seq: int, now: float,
                      _kid: int = kid, _tracker=tracker) -> None:
            # Fires after the lane tracker ingested the grant, so the
            # freshest samples are at the tails of its lists.
            self.metrics.on_grant(
                _kid,
                _tracker.responsiveness_samples[-1],
                _tracker.waiting_samples[-1],
            )
            for workload in self._workloads:
                workload.on_grant(_kid, node, req_seq, now)

        lane.on_grant(_on_grant)
        if self._started:
            lane.start()
        return lane

    def key_id(self, key: str) -> int:
        """The dense integer id interned for ``key``."""
        return self._ids[key]

    def lane(self, key: str) -> Cluster:
        """The :class:`Cluster` behind ``key``."""
        return self._lanes[self._ids[key]]

    def lanes(self) -> List[Cluster]:
        """All lanes in key-id order (do not mutate)."""
        return self._lanes

    # -- traffic -------------------------------------------------------------

    def request(self, key: str, node: int = 0) -> None:
        """Make ``node`` ready on ``key``'s lane (arrival on an already
        waiting node stands, exactly like ``Cluster.request``)."""
        self.request_id(self._ids[key], node)

    def request_id(self, kid: int, node: int = 0) -> None:
        """Integer-id fast path for :meth:`request` (hot loop of keyed
        workloads).  Counts the *offered* arrival; drops (arrivals on a
        node already waiting) show up as ``requests - grants``."""
        self.metrics.on_request(kid)
        self._lanes[kid].request(node)

    def release(self, key: str, node: int) -> None:
        """Release a held grant (hold_until_release lanes)."""
        self.lane(key).release(node)

    def add_workload(self, workload) -> None:
        """Attach a fabric-level keyed workload (see
        :mod:`repro.workload.keyed`).  Per-key workloads attach to lanes
        directly via ``fabric.lane(key).add_workload(...)``."""
        self._workloads.append(workload)
        workload.bind(self)

    def post(self, delay: float, fn: Callable, *args) -> None:
        """Schedule a fabric-level callback through the batch layer (so it
        counts toward ``executed_total`` and orders like lane events)."""
        self.sim.post(delay, fn, *args)

    # -- execution -----------------------------------------------------------

    @property
    def now(self) -> float:
        return self.kernel.now

    @property
    def executed_total(self) -> int:
        """Logical events fired across all lanes (the fabric analogue of
        ``sim.executed_total``; the raw kernel count only sees buckets)."""
        return self.scheduler.executed_total

    @property
    def sent_total(self) -> int:
        """Messages sent across all lanes (O(keys) roll-up)."""
        return sum(lane.messages.total for lane in self._lanes)

    def start(self) -> None:
        """Start every lane (idempotent)."""
        if self._started:
            return
        self._started = True
        for lane in self._lanes:
            lane.start()

    # Kernel events per bound check in run(); fixed so a run's stop point —
    # and therefore its checksums — never depend on tuning.
    _CHUNK = 512

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        grants: Optional[int] = None,
    ) -> None:
        """Run until a bound is hit: virtual time, logical events fired, or
        fabric-wide grants.  Bounds are checked between fixed-size kernel
        chunks, so ``grants``/``max_events`` may overshoot slightly — but
        deterministically."""
        if until is None and max_events is None and grants is None:
            raise SimulationError("run() needs at least one stopping bound")
        self.start()
        budget = max_events if max_events is not None else 2_000_000_000
        scheduler = self.scheduler
        kernel_run = self.kernel.run
        total_grants = self.metrics
        while budget > 0:
            if grants is not None and total_grants.total_grants >= grants:
                break
            before = scheduler.executed_total
            executed = kernel_run(until=until, max_events=self._CHUNK)
            budget -= scheduler.executed_total - before
            if executed < self._CHUNK:
                break  # queue drained or `until` reached

    # -- audit ---------------------------------------------------------------

    def token_census(self) -> Dict[str, int]:
        """Per-key live-token counts (see ``Cluster.token_census`` for the
        at-rest caveat)."""
        return {key: self._lanes[kid].token_census()
                for key, kid in self._ids.items()}

    def assert_single_token_per_key(self) -> None:
        """Raise when any lane shows more than one token at rest."""
        for lane in self._lanes:
            lane.assert_single_token()

    def summary(self) -> Dict[str, object]:
        """Fabric-level metrics roll-up plus execution counters."""
        doc = self.metrics.summary()
        doc["events"] = self.executed_total
        doc["messages"] = self.sent_total
        doc["now"] = self.now
        return doc
