"""Schedule minimization: shrink a violating case to its essence.

Classic greedy delta debugging over the case's *explicit* schedule — no
RNG state to fight, because a :class:`~repro.fuzz.case.FuzzCase` carries
its requests and faults as plain lists:

1. drop faults (largest chunks first, then singles);
2. drop requests the same way;
3. remove nodes (shrink ``n``, discarding schedule entries that name
   removed nodes) — fabric cases drop whole lanes instead, remapping
   the surviving key indices;
4. tighten the budgets (``max_events`` to just past the violation point,
   ``horizon``/``steps`` by halving).

A candidate counts as reproducing only when it fails the *same invariant*
as the original — shrinking must not wander off to a different bug.  The
whole process is deterministic: same input case, same minimized output.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.fuzz.case import FuzzCase
from repro.fuzz.runner import FuzzResult, run_case

__all__ = ["shrink"]


class _Budget:
    def __init__(self, attempts: int) -> None:
        self.left = attempts
        self.spent = 0

    def take(self) -> bool:
        if self.left <= 0:
            return False
        self.left -= 1
        self.spent += 1
        return True


def _repro(case: FuzzCase, run: Callable, invariant: Optional[str],
           budget: _Budget) -> Optional[FuzzResult]:
    """Run a candidate; its result when it fails the same invariant."""
    if not budget.take():
        return None
    result = run(case)
    if result.violation is None:
        return None
    if invariant and result.violation.get("invariant") != invariant:
        return None
    return result


def _ddmin_list(case: FuzzCase, fld: str, run: Callable,
                invariant: Optional[str], budget: _Budget,
                ) -> Tuple[FuzzCase, Optional[FuzzResult]]:
    """Greedy ddmin over one list field: drop chunks, halving chunk size."""
    best = case
    best_result: Optional[FuzzResult] = None
    items: List = list(getattr(case, fld))
    chunk = max(1, len(items) // 2)
    while chunk >= 1 and items:
        removed_any = False
        start = 0
        while start < len(items):
            candidate_items = items[:start] + items[start + chunk:]
            candidate = best.with_(**{fld: candidate_items})
            result = _repro(candidate, run, invariant, budget)
            if result is not None:
                items = candidate_items
                best, best_result = candidate, result
                removed_any = True
                # keep `start` put: the next chunk slid into place
            else:
                start += chunk
        if not removed_any or chunk == 1:
            chunk //= 2
    return best, best_result


def _drop_nodes(case: FuzzCase, run: Callable, invariant: Optional[str],
                budget: _Budget) -> Tuple[FuzzCase, Optional[FuzzResult]]:
    best, best_result = case, None
    n = case.n
    while n > 2:
        smaller = n - 1
        candidate = best.with_(
            n=smaller,
            requests=[(t, node) for t, node in best.requests if node < smaller],
            faults=[f for f in best.faults
                    if f.get("a", 0) < smaller and f.get("b", 0) < smaller],
        )
        result = _repro(candidate, run, invariant, budget)
        if result is None:
            break
        best, best_result = candidate, result
        n = smaller
    return best, best_result


def _drop_keys(case: FuzzCase, run: Callable, invariant: Optional[str],
               budget: _Budget) -> Tuple[FuzzCase, Optional[FuzzResult]]:
    """Remove whole fabric lanes.  Lanes are independent, so dropping one
    (and remapping the key indices above it) preserves every other lane's
    behaviour exactly — a candidate reproduces iff the violating lane
    survived the cut."""
    best, best_result = case, None
    i = len(best.keys) - 1
    while i >= 0 and len(best.keys) > 1:
        candidate = best.with_(
            keys=best.keys[:i] + best.keys[i + 1:],
            keyed_requests=[(t, k - (k > i), node)
                            for t, k, node in best.keyed_requests if k != i],
            faults=[dict(f, k=f["k"] - (f["k"] > i))
                    for f in best.faults if f["k"] != i],
        )
        result = _repro(candidate, run, invariant, budget)
        if result is not None:
            best, best_result = candidate, result
        i -= 1
    return best, best_result


def _halve_field(case: FuzzCase, fld: str, floor, run: Callable,
                 invariant: Optional[str], budget: _Budget,
                 ) -> Tuple[FuzzCase, Optional[FuzzResult]]:
    best, best_result = case, None
    value = getattr(case, fld)
    while value / 2 >= floor:
        candidate = best.with_(**{fld: type(value)(value / 2)})
        result = _repro(candidate, run, invariant, budget)
        if result is None:
            break
        best, best_result = candidate, result
        value = getattr(best, fld)
    return best, best_result


def shrink(case: FuzzCase, result: FuzzResult,
           run: Callable = run_case,
           max_attempts: int = 400) -> Tuple[FuzzCase, FuzzResult, int]:
    """Minimize a violating case; returns ``(case, result, attempts)``.

    ``result`` must be the violating outcome of ``run(case)``.  ``run`` is
    injectable so canary tests shrink against their instrumented runner.
    """
    if result.violation is None:
        raise ValueError("shrink() needs a violating case")
    invariant = result.violation.get("invariant")
    budget = _Budget(max_attempts)
    best, best_result = case, result

    schedule_fields = (("faults", "keyed_requests") if case.kind == "fabric"
                       else ("faults", "requests"))
    changed = True
    while changed and budget.left > 0:
        changed = False
        for fld in schedule_fields:
            if getattr(best, fld):
                smaller, r = _ddmin_list(best, fld, run, invariant, budget)
                if r is not None and smaller.event_count() < best.event_count():
                    best, best_result = smaller, r
                    changed = True
        if best.kind == "fabric":
            smaller, r = _drop_keys(best, run, invariant, budget)
            if r is not None and len(smaller.keys) < len(best.keys):
                best, best_result = smaller, r
                changed = True
        else:
            smaller, r = _drop_nodes(best, run, invariant, budget)
            if r is not None and smaller.n < best.n:
                best, best_result = smaller, r
                changed = True

    # Budget tightening (no fixpoint needed: monotone).
    if best.kind in ("impl", "fabric"):
        if best_result.events and best_result.events < best.max_events:
            candidate = best.with_(max_events=best_result.events)
            r = _repro(candidate, run, invariant, budget)
            if r is not None:
                best, best_result = candidate, r
        smaller, r = _halve_field(best, "horizon", 1.0, run, invariant, budget)
        if r is not None:
            best, best_result = smaller, r
    else:
        smaller, r = _halve_field(best, "steps", 1, run, invariant, budget)
        if r is not None:
            best, best_result = smaller, r

    return best, best_result, budget.spent
