"""Fuzz cases: fully explicit, serializable schedules.

A :class:`FuzzCase` pins **everything** a run needs — node count, protocol,
delay model, loss/duplication rates, the request schedule, the fault plan,
and the event/time budget — as concrete data rather than implicit RNG
state.  Two consequences:

- replay needs no generator: loading a case file reproduces the run
  bit-for-bit (the only remaining randomness, delay sampling and
  loss/duplication draws, flows from ``derive_seed(case.seed, "net")``);
- the shrinker can minimize by editing lists (drop a request, drop a fault,
  lower the horizon, remove a node) instead of hunting for a luckier seed.

``generate_case`` derives a case from ``(root_seed, index, profile)``; the
same triple always yields the same case.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError, FuzzCaseError
from repro.faults.corruption import CORRUPTION_KINDS
from repro.fuzz.rng import child_rng
from repro.sim.network import (
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    UniformDelay,
)

__all__ = [
    "SCHEMA",
    "PROFILES",
    "IMPL_PROTOCOLS",
    "SPEC_SYSTEMS",
    "FuzzCase",
    "generate_case",
    "build_delay",
]

SCHEMA = "repro-fuzz-case/v1"

#: Impl-level protocols eligible for fuzzing (every registered core).
IMPL_PROTOCOLS = (
    "ring",
    "linear_search",
    "binary_search",
    "directed_search",
    "push",
    "hybrid",
    "fault_tolerant",
)

#: Spec-level systems eligible for random-reduction fuzzing.
SPEC_SYSTEMS = ("S", "S1", "Tok", "MP", "Srch", "BS")

#: profile -> what the generator draws.  ``mixed`` alternates per index
#: (it predates the fabric and stabilize kinds and deliberately excludes
#: them: adding a mode to the rotation would reshuffle every pinned
#: mixed-profile case).
PROFILES = ("clean", "faults", "spec", "mixed", "fabric", "stabilize")

_FAULT_OPS = ("crash", "recover", "token_loss", "partition", "heal",
              "corrupt")

#: Protocols accepted by validation: every fuzz-eligible core plus the
#: stabilizing variant, which is replayable but excluded from
#: IMPL_PROTOCOLS so random clean/faults draws stay pinned.
_VALID_PROTOCOLS = IMPL_PROTOCOLS + ("stabilizing",)


def _check_fault(fault: Dict, n: int) -> None:
    """Validate one impl-level fault entry; raise FuzzCaseError naming
    the offending kind instead of letting the runner hit a KeyError."""
    op = fault.get("op")
    if op not in _FAULT_OPS:
        raise FuzzCaseError(f"unknown fault op {op!r} in fault {fault!r}; "
                            f"known ops: {_FAULT_OPS}", kind=op)
    if op == "corrupt":
        what = fault.get("what")
        if what not in CORRUPTION_KINDS:
            raise FuzzCaseError(
                f"unknown corruption kind {what!r} in fault {fault!r}; "
                f"known kinds: {CORRUPTION_KINDS}", kind=what)
        victim = fault.get("a")
        if not isinstance(victim, int) or not 0 <= victim < n:
            raise FuzzCaseError(
                f"corrupt fault needs a victim node 'a' in [0, {n}), "
                f"got {fault!r}", kind=op)


@dataclass
class FuzzCase:
    """One self-contained fuzz run (impl- or spec-level)."""

    seed: int
    kind: str = "impl"                       # "impl" | "spec" | "fabric"
    # -- impl-level fields ---------------------------------------------------
    protocol: str = "binary_search"
    n: int = 5
    delay: Dict = field(default_factory=lambda: {"kind": "constant", "delay": 1.0})
    loss_rate: float = 0.0
    dup_rate: float = 0.0
    config: Dict = field(default_factory=dict)   # ProtocolConfig overrides
    requests: List[Tuple[float, int]] = field(default_factory=list)
    faults: List[Dict] = field(default_factory=list)
    max_events: int = 20_000
    horizon: float = 2_000.0
    # -- spec-level fields ---------------------------------------------------
    system: str = "BS"
    steps: int = 150
    label: str = ""
    # -- fabric-level fields -------------------------------------------------
    #: Lane specs: ``{"key", "protocol", "n", "delay", "loss_rate",
    #: "dup_rate", "config"}`` per entry.  Lane seeds derive from the
    #: fabric seed and key string, so dropping a lane never perturbs the
    #: survivors (lanes are independent — the shrinker leans on this).
    keys: List[Dict] = field(default_factory=list)
    #: Fabric arrivals as ``(time, key_index, node)``; fabric faults carry
    #: a ``"k"`` (key index) in :attr:`faults` entries instead.
    keyed_requests: List[Tuple[float, int, int]] = field(default_factory=list)

    # -- derived -------------------------------------------------------------

    def event_count(self) -> int:
        """Schedule size (requests + faults) — the shrinker's budget."""
        return len(self.requests) + len(self.keyed_requests) + len(self.faults)

    def validate(self) -> "FuzzCase":
        if self.kind not in ("impl", "spec", "fabric"):
            raise ConfigError(f"unknown case kind {self.kind!r}")
        if self.kind == "fabric":
            if not self.keys:
                raise ConfigError("fabric case needs at least one key")
            for spec in self.keys:
                if spec.get("protocol", "binary_search") not in IMPL_PROTOCOLS:
                    raise ConfigError(f"unknown protocol in key spec {spec!r}")
                if spec.get("n", 4) < 1:
                    raise ConfigError(f"bad ring size in key spec {spec!r}")
            n_keys = len(self.keys)
            for _t, k, _node in self.keyed_requests:
                if not 0 <= k < n_keys:
                    raise ConfigError(f"keyed request names key {k} "
                                      f"of {n_keys}")
            for fault in self.faults:
                op = fault.get("op")
                if op not in _FAULT_OPS or op == "corrupt":
                    raise FuzzCaseError(
                        f"unknown fabric fault op {op!r} in fault "
                        f"{fault!r}", kind=op)
                if "k" not in fault:
                    raise FuzzCaseError(
                        f"fabric fault {fault!r} is missing its lane "
                        f"index 'k'", kind=op)
                if not 0 <= fault["k"] < n_keys:
                    raise FuzzCaseError(f"fault names key {fault['k']} "
                                        f"of {n_keys}", kind=op)
        elif self.kind == "impl":
            if self.protocol not in _VALID_PROTOCOLS:
                raise ConfigError(f"unknown protocol {self.protocol!r}")
            if self.n < 1:
                raise ConfigError(f"n must be >= 1, got {self.n}")
            for fault in self.faults:
                _check_fault(fault, self.n)
        else:
            if self.system not in SPEC_SYSTEMS:
                raise ConfigError(f"unknown spec system {self.system!r}")
        return self

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> Dict:
        doc = asdict(self)
        doc["requests"] = [list(r) for r in self.requests]
        doc["keyed_requests"] = [list(r) for r in self.keyed_requests]
        doc["schema"] = SCHEMA
        return doc

    @classmethod
    def from_dict(cls, doc: Dict) -> "FuzzCase":
        doc = dict(doc)
        schema = doc.pop("schema", SCHEMA)
        if schema != SCHEMA:
            raise ConfigError(f"unsupported case schema {schema!r}")
        doc.pop("outcome", None)  # replay files carry the recorded outcome
        doc["requests"] = [(float(t), int(node)) for t, node in
                           doc.get("requests", [])]
        doc["keyed_requests"] = [(float(t), int(k), int(node)) for t, k, node
                                 in doc.get("keyed_requests", [])]
        return cls(**doc).validate()

    def save(self, path: str, outcome: Optional[Dict] = None) -> None:
        doc = self.to_dict()
        if outcome is not None:
            doc["outcome"] = outcome
        with open(path, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> Tuple["FuzzCase", Optional[Dict]]:
        """Load a case file; returns ``(case, recorded_outcome_or_None)``."""
        with open(path) as handle:
            doc = json.load(handle)
        outcome = doc.get("outcome")
        return cls.from_dict(doc), outcome

    def with_(self, **changes) -> "FuzzCase":
        return replace(self, **changes)


def build_delay(spec: Dict) -> DelayModel:
    """Materialize the case's delay-model description."""
    kind = spec.get("kind", "constant")
    if kind == "constant":
        return ConstantDelay(spec.get("delay", 1.0))
    if kind == "uniform":
        return UniformDelay(spec.get("low", 0.5), spec.get("high", 2.0))
    if kind == "exponential":
        return ExponentialDelay(spec.get("mean", 1.0),
                                spec.get("minimum", 0.01))
    raise ConfigError(f"unknown delay kind {kind!r}")


# ---------------------------------------------------------------------------
# Case generation
# ---------------------------------------------------------------------------

def _draw_delay(rng) -> Dict:
    kind = rng.choice(("constant", "uniform", "exponential"))
    if kind == "constant":
        return {"kind": "constant", "delay": rng.choice((0.5, 1.0, 2.0))}
    if kind == "uniform":
        low = rng.choice((0.2, 0.5, 1.0))
        return {"kind": "uniform", "low": low,
                "high": low * rng.choice((2.0, 4.0))}
    return {"kind": "exponential", "mean": rng.choice((0.5, 1.0, 3.0)),
            "minimum": 0.01}


def _draw_config(rng, protocol: str) -> Dict:
    config: Dict = {
        "trap_gc": rng.choice(("none", "rotation", "inverse")),
        "single_outstanding": rng.random() < 0.8,
        "forward_throttle": rng.random() < 0.3,
    }
    if rng.random() < 0.3:
        config["idle_pause"] = rng.choice((2.0, 10.0))
    if rng.random() < 0.3:
        config["service_time"] = rng.choice((0.5, 2.0))
    if rng.random() < 0.3:
        config["retry_timeout"] = rng.choice((20.0, 60.0))
    if protocol == "fault_tolerant":
        config["regen_timeout"] = rng.choice((40.0, 80.0))
        config["census_window"] = 5.0
        config["loan_timeout"] = rng.choice((0.0, 30.0))
    return config


def _draw_requests(rng, n: int, horizon: float, count: int) -> List[Tuple[float, int]]:
    requests = sorted(
        (round(rng.uniform(0.0, horizon * 0.6), 3), rng.randrange(n))
        for _ in range(count)
    )
    return requests


def _draw_faults(rng, n: int, horizon: float, protocol: str) -> List[Dict]:
    faults: List[Dict] = []
    # Crash/recover pairs.  For non-fault-tolerant protocols a holder crash
    # merely stalls the run (safety still holds); for fault_tolerant it
    # exercises detection + regeneration.
    for _ in range(rng.randrange(0, 3)):
        node = rng.randrange(n)
        t = round(rng.uniform(5.0, horizon * 0.5), 3)
        faults.append({"t": t, "op": "crash", "a": node})
        if rng.random() < 0.5:
            faults.append({"t": round(t + rng.uniform(20.0, 80.0), 3),
                           "op": "recover", "a": node})
    # Token loss (the in-flight token vanishes) only where regeneration can
    # recover it — elsewhere it would just freeze the run uninformatively.
    if protocol == "fault_tolerant":
        for _ in range(rng.randrange(0, 2)):
            faults.append({"t": round(rng.uniform(5.0, horizon * 0.4), 3),
                           "op": "token_loss"})
    # Transient partition with a matching heal.
    if n >= 3 and rng.random() < 0.4:
        a = rng.randrange(n)
        b = (a + rng.randrange(1, n)) % n
        t = round(rng.uniform(5.0, horizon * 0.4), 3)
        faults.append({"t": t, "op": "partition", "a": a, "b": b})
        faults.append({"t": round(t + rng.uniform(10.0, 50.0), 3),
                       "op": "heal", "a": a, "b": b})
    faults.sort(key=lambda f: f["t"])
    return faults


def _draw_fabric_faults(rng, keys: List[Dict],
                        horizon: float) -> List[Dict]:
    """Crash/recover and partition/heal faults aimed at a few lanes.

    Token loss is left out: regeneration only exists in fault_tolerant
    lanes, and a lost token elsewhere just freezes that lane silently.
    """
    faults: List[Dict] = []
    for _ in range(rng.randrange(0, 4)):
        k = rng.randrange(len(keys))
        n = keys[k]["n"]
        node = rng.randrange(n)
        t = round(rng.uniform(5.0, horizon * 0.5), 3)
        faults.append({"t": t, "op": "crash", "a": node, "k": k})
        if rng.random() < 0.5:
            faults.append({"t": round(t + rng.uniform(20.0, 80.0), 3),
                           "op": "recover", "a": node, "k": k})
        if n >= 3 and rng.random() < 0.4:
            a = rng.randrange(n)
            b = (a + rng.randrange(1, n)) % n
            t = round(rng.uniform(5.0, horizon * 0.4), 3)
            faults.append({"t": t, "op": "partition", "a": a, "b": b, "k": k})
            faults.append({"t": round(t + rng.uniform(10.0, 50.0), 3),
                           "op": "heal", "a": a, "b": b, "k": k})
    faults.sort(key=lambda f: f["t"])
    return faults


def _generate_fabric_case(root_seed: int, index: int, rng) -> FuzzCase:
    """8-32 keys of mixed protocols multiplexed on one fabric, with
    faults striking individual lanes — the isolation property under test
    is that a fault in one lane never leaks into another."""
    n_keys = rng.randrange(8, 33)
    horizon = rng.choice((400.0, 800.0))
    keys: List[Dict] = []
    for k in range(n_keys):
        protocol = rng.choice(IMPL_PROTOCOLS)
        n = rng.choice((3, 4, 5))
        spec: Dict = {"key": f"lock/{k:03d}", "protocol": protocol, "n": n}
        if rng.random() < 0.5:
            spec["delay"] = _draw_delay(rng)
        if rng.random() < 0.3:
            spec["loss_rate"] = round(rng.choice((0.05, 0.1)), 3)
        if rng.random() < 0.2:
            spec["dup_rate"] = 0.1
        if rng.random() < 0.5:
            spec["config"] = _draw_config(rng, protocol)
        keys.append(spec)
    keyed_requests = sorted(
        (round(rng.uniform(0.0, horizon * 0.6), 3),
         (k := rng.randrange(n_keys)),
         rng.randrange(keys[k]["n"]))
        for _ in range(rng.randrange(20, 80))
    )
    return FuzzCase(
        seed=root_seed + index,
        kind="fabric",
        keys=keys,
        keyed_requests=keyed_requests,
        faults=_draw_fabric_faults(rng, keys, horizon),
        max_events=60_000,
        horizon=horizon,
        label=f"fabric/k{n_keys}",
    ).validate()


def _generate_stabilize_case(root_seed: int, index: int, rng) -> FuzzCase:
    """A stabilizing-core run seeded with arbitrary-state corruption.

    Corruptions all land in the first 40% of the horizon so every case
    leaves the stabilizing machinery well over the convergence bound of
    virtual time to settle; delays stay *bounded* (constant/uniform, no
    exponential tail) because the watchdog's no-progress mint is only
    sound under bounded delays; loss/duplication stay off so the only
    illegal states are the injected ones (the convergence verdict is
    then unconditional)."""
    n = rng.choice((3, 5, 7, 9))
    horizon = rng.choice((800.0, 1200.0))
    if rng.random() < 0.5:
        delay: Dict = {"kind": "constant", "delay": rng.choice((0.5, 1.0))}
    else:
        delay = {"kind": "uniform", "low": 0.5, "high": 2.0}
    config: Dict = {
        "trap_gc": rng.choice(("rotation", "inverse")),
        "regen_timeout": rng.choice((30.0, 50.0)),
        "census_window": 5.0,
        "loan_timeout": 30.0,
        "stabilize_watch": rng.choice((15.0, 25.0)),
        "stabilize_reset": rng.random() < 0.7,
    }
    faults: List[Dict] = [
        {"t": round(rng.uniform(10.0, horizon * 0.4), 3),
         "op": "corrupt",
         "a": rng.randrange(n),
         "what": rng.choice(CORRUPTION_KINDS),
         "arg": rng.randrange(1 << 16)}
        for _ in range(rng.randrange(1, 5))
    ]
    faults.sort(key=lambda f: f["t"])
    return FuzzCase(
        seed=root_seed + index,
        kind="impl",
        protocol="stabilizing",
        n=n,
        delay=delay,
        config=config,
        requests=_draw_requests(rng, n, horizon, rng.randrange(3, 12)),
        faults=faults,
        max_events=40_000,
        horizon=horizon,
        label=f"stabilize/n{n}",
    ).validate()


def generate_case(root_seed: int, index: int, profile: str = "mixed") -> FuzzCase:
    """Derive the ``index``-th case of a run from the root seed."""
    if profile not in PROFILES:
        raise ConfigError(f"unknown profile {profile!r}; choose from {PROFILES}")
    mode = profile
    if profile == "mixed":
        mode = ("clean", "faults", "clean", "faults", "spec")[index % 5]
    rng = child_rng(root_seed, "case", index, mode)

    if mode == "fabric":
        return _generate_fabric_case(root_seed, index, rng)

    if mode == "stabilize":
        return _generate_stabilize_case(root_seed, index, rng)

    if mode == "spec":
        system = rng.choice(SPEC_SYSTEMS)
        return FuzzCase(
            seed=root_seed + index, kind="spec", system=system,
            n=rng.choice((2, 3, 4)), steps=rng.choice((80, 150, 250)),
            label=f"spec/{system}",
        ).validate()

    n = rng.choice((3, 4, 5, 6, 8))
    protocols = IMPL_PROTOCOLS if mode == "faults" else tuple(
        p for p in IMPL_PROTOCOLS if p != "fault_tolerant"
    )
    protocol = rng.choice(protocols)
    horizon = rng.choice((400.0, 800.0, 1500.0))
    case = FuzzCase(
        seed=root_seed + index,
        kind="impl",
        protocol=protocol,
        n=n,
        delay=_draw_delay(rng),
        loss_rate=round(rng.choice((0.0, 0.1, 0.3)), 3),
        dup_rate=round(rng.choice((0.0, 0.1, 0.2)), 3),
        config=_draw_config(rng, protocol),
        requests=_draw_requests(rng, n, horizon, rng.randrange(4, 25)),
        faults=_draw_faults(rng, n, horizon, protocol) if mode == "faults" else [],
        max_events=30_000,
        horizon=horizon,
        label=f"{mode}/{protocol}/n{n}",
    )
    return case.validate()
