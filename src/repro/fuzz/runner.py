"""Executing fuzz cases: build, run, observe, summarize.

``run_case`` is the single entry point both the fuzz loop and replay use:
it materializes a :class:`~repro.fuzz.case.FuzzCase` into either a DES
cluster (impl-level) or a sanitized random reduction (spec-level), runs it
to its budget with the invariant oracle attached, and reports a
:class:`FuzzResult` — outcome, violation details (with a trailing event
trace for diagnosis), and a CRC32 checksum over the full send stream so
determinism is pinned end to end: two runs of the same case must produce
identical results, byte for byte.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.cluster import Cluster
from repro.core.config import ProtocolConfig
from repro.errors import ProtocolError, SimulationError
from repro.faults.corruption import corrupt_core
from repro.fuzz.case import FuzzCase, build_delay, generate_case
from repro.fuzz.oracle import InvariantOracle, OracleViolation, check_spec_reduction
from repro.fuzz.rng import derive_seed
from repro.lint import LintViolation
from repro.lint.sanitizer import SanitizedRewriter
from repro.metrics.tracing import TraceRecorder

__all__ = ["FuzzResult", "run_case", "fuzz_run"]

#: Exceptions that count as *findings* (safety violations) rather than
#: harness errors.
_VIOLATIONS = (OracleViolation, LintViolation, ProtocolError, SimulationError)


@dataclass
class FuzzResult:
    """Outcome of one fuzz case."""

    ok: bool
    checksum: str
    events: int = 0
    grants: int = 0
    sends: int = 0
    violation: Optional[Dict] = None
    trace_tail: List[Dict] = field(default_factory=list)
    #: Convergence-oracle metrics (stabilize runs only): episodes,
    #: stabilization_time, stabilization_p99, injections, bound.
    stabilization: Optional[Dict] = None

    def outcome(self) -> Dict:
        """The stable portion recorded in corpus files."""
        doc: Dict = {"ok": self.ok, "checksum": self.checksum,
                     "events": self.events}
        if self.violation is not None:
            doc["invariant"] = self.violation.get("invariant")
        if self.stabilization is not None:
            doc["episodes"] = self.stabilization.get("episodes")
        return doc

    def matches(self, recorded: Dict) -> bool:
        """Does this run reproduce a corpus file's recorded outcome?"""
        mine = self.outcome()
        return all(mine.get(k) == v for k, v in recorded.items())


def _violation_dict(exc: Exception) -> Dict:
    doc: Dict = {"type": type(exc).__name__, "detail": str(exc)}
    if isinstance(exc, OracleViolation):
        doc["invariant"] = exc.invariant
        doc["context"] = {k: repr(v) for k, v in exc.context.items()}
    elif isinstance(exc, LintViolation):
        doc["invariant"] = getattr(exc, "invariant", "sanitizer")
    else:
        doc["invariant"] = type(exc).__name__
    return doc


# ---------------------------------------------------------------------------
# Impl-level execution
# ---------------------------------------------------------------------------

class _TokenLossInjector:
    """Swallows the next in-flight token per armed ``token_loss`` fault."""

    def __init__(self) -> None:
        self.armed = 0
        self.dropped = 0

    def arm(self) -> None:
        self.armed += 1

    def __call__(self, src: int, dst: int, msg: object) -> bool:
        if self.armed:
            self.armed -= 1
            self.dropped += 1
            return True
        return False


def _schedule_faults(cluster: Cluster, case: FuzzCase,
                     injector: _TokenLossInjector,
                     oracle: Optional[InvariantOracle] = None) -> None:
    """Schedule the case's fault plan.  When ``oracle`` is a
    :class:`~repro.stabilize.oracle.ConvergenceOracle`, every fault also
    opens a stabilization episode — crashes and token losses create
    legitimate transient illegitimacy just like corruption does."""
    inject = getattr(oracle, "inject", None)

    def _wrap(action: Callable, *args) -> Callable:
        if inject is None:
            return lambda: action(*args)

        def fire() -> None:
            action(*args)
            inject(cluster.sim.now)
        return fire

    for fault in case.faults:
        t, op = float(fault["t"]), fault["op"]
        if op == "crash":
            cluster.sim.schedule_at(
                t, _wrap(cluster.drivers[fault["a"]].crash))
        elif op == "recover":
            cluster.sim.schedule_at(
                t, _wrap(cluster.drivers[fault["a"]].recover))
        elif op == "token_loss":
            cluster.sim.schedule_at(t, _wrap(injector.arm))
        elif op == "partition":
            cluster.sim.schedule_at(
                t, _wrap(cluster.network.partition, fault["a"], fault["b"]))
        elif op == "heal":
            cluster.sim.schedule_at(
                t, _wrap(cluster.network.heal, fault["a"], fault["b"]))
        elif op == "corrupt":
            core = cluster.drivers[fault["a"]].core
            cluster.sim.schedule_at(
                t, _wrap(corrupt_core, core, fault["what"],
                         int(fault["arg"]), case.n))


def _run_impl(case: FuzzCase) -> FuzzResult:
    config = ProtocolConfig(**case.config)
    # A stabilize run = the stabilizing core, or any case that injects
    # arbitrary-state corruption.  The transition sanitizer and the
    # standard oracle both presume legal histories, so they are swapped
    # for the convergence verdict (closure + bounded convergence).
    stab = case.protocol == "stabilizing" or any(
        f.get("op") == "corrupt" for f in case.faults)
    if stab:
        # Imported lazily: repro.stabilize.oracle imports repro.fuzz.oracle,
        # and this module is pulled in by the repro.fuzz package init.
        from repro.stabilize.bound import convergence_bound, delay_ceiling
        from repro.stabilize.oracle import ConvergenceOracle
    cluster = Cluster.build(
        case.protocol, case.n,
        seed=derive_seed(case.seed, "net"),
        config=config,
        delay=build_delay(case.delay),
        loss_rate=case.loss_rate,
        dup_rate=case.dup_rate,
        sanitize=not stab,
    )
    if stab:
        oracle: InvariantOracle = ConvergenceOracle(
            cluster, protocol=case.protocol,
            bound=convergence_bound(config, case.n,
                                    delay_ceiling(case.delay)))
    else:
        # Fault-free schedules cannot destroy the token: demand exactly one.
        oracle = InvariantOracle(cluster, protocol=case.protocol,
                                 strict=not case.faults)
    oracle.attach()
    injector = _TokenLossInjector()
    oracle.drop_token = injector
    trace = TraceRecorder(cluster)

    checksum = 0
    sends = 0

    def _digest(src: int, dst: int, msg: object) -> None:
        nonlocal checksum, sends
        sends += 1
        record = f"{cluster.sim.now:.6f}|{src}|{dst}|{msg!r}"
        checksum = zlib.crc32(record.encode("utf-8"), checksum)

    cluster.network.on_send.append(_digest)
    for time, node in case.requests:
        cluster.sim.schedule_at(time, cluster.request, node)
    _schedule_faults(cluster, case, injector,
                     oracle=oracle if stab else None)

    violation: Optional[Dict] = None
    try:
        cluster.run(until=case.horizon, max_events=case.max_events)
        if stab:
            oracle.finalize(cluster.sim.now)  # type: ignore[attr-defined]
    except _VIOLATIONS as exc:
        violation = _violation_dict(exc)
    return FuzzResult(
        ok=violation is None,
        checksum=f"{checksum:08x}",
        events=cluster.sim.executed_total,
        grants=cluster.responsiveness.grants(),
        sends=sends,
        violation=violation,
        trace_tail=trace.tail() if violation is not None else [],
        stabilization=(oracle.stabilization()  # type: ignore[attr-defined]
                       if stab else None),
    )


# ---------------------------------------------------------------------------
# Fabric-level execution
# ---------------------------------------------------------------------------

def _run_fabric(case: FuzzCase) -> FuzzResult:
    """Run a multi-key fabric case: every lane gets its own invariant
    oracle, faults strike individual lanes, and a final per-key token
    census rejects any duplication the delivery-time oracles missed.

    The checksum folds the *global* send stream (lane index included), so
    it also pins the cross-lane interleaving the batched scheduler
    produces — a determinism regression in the fabric itself shows up
    even when every lane is individually sound."""
    from repro.fabric import TokenFabric

    fabric = TokenFabric(seed=derive_seed(case.seed, "fabric"),
                         sanitize=True)
    checksum = 0
    sends = 0
    sim = fabric.sim

    oracles = []
    for i, spec in enumerate(case.keys):
        protocol = spec.get("protocol", "binary_search")
        lane = fabric.add_key(
            spec["key"], protocol=protocol, n=spec.get("n", 4),
            config=ProtocolConfig(**spec.get("config", {})),
            delay=build_delay(spec.get("delay",
                                       {"kind": "constant", "delay": 1.0})),
            loss_rate=spec.get("loss_rate", 0.0),
            dup_rate=spec.get("dup_rate", 0.0),
        )
        oracle = InvariantOracle(lane, protocol=protocol,
                                 strict=not case.faults)
        oracle.attach()
        oracles.append(oracle)

        def _digest(src: int, dst: int, msg: object, _lane=i) -> None:
            nonlocal checksum, sends
            sends += 1
            record = f"{sim.now:.6f}|{_lane}|{src}|{dst}|{msg!r}"
            checksum = zlib.crc32(record.encode("utf-8"), checksum)

        lane.network.on_send.append(_digest)

    for time, k, node in case.keyed_requests:
        sim.schedule_at(time, fabric.request_id, k, node)
    for fault in case.faults:
        t, op = float(fault["t"]), fault["op"]
        lane = fabric.lanes()[fault["k"]]
        if op == "crash":
            sim.schedule_at(t, lane.drivers[fault["a"]].crash)
        elif op == "recover":
            sim.schedule_at(t, lane.drivers[fault["a"]].recover)
        elif op == "partition":
            sim.schedule_at(t, lane.network.partition, fault["a"], fault["b"])
        elif op == "heal":
            sim.schedule_at(t, lane.network.heal, fault["a"], fault["b"])

    violation: Optional[Dict] = None
    try:
        fabric.run(until=case.horizon, max_events=case.max_events)
        for key, count in fabric.token_census().items():
            # The census is blind to in-flight tokens, so only count > 1
            # (duplication) is a breach at the horizon cut.
            if count > 1:
                raise OracleViolation(
                    "token_census",
                    f"key {key!r} holds {count} tokens at the horizon",
                    {"key": key, "count": count})
    except _VIOLATIONS as exc:
        violation = _violation_dict(exc)
    return FuzzResult(
        ok=violation is None,
        checksum=f"{checksum:08x}",
        events=fabric.executed_total,
        grants=fabric.metrics.total_grants,
        sends=sends,
        violation=violation,
    )


# ---------------------------------------------------------------------------
# Spec-level execution
# ---------------------------------------------------------------------------

def _system_module(name: str):
    from repro.specs import (
        system_binary_search,
        system_message_passing,
        system_s,
        system_s1,
        system_search,
        system_token,
    )
    return {
        "S": system_s,
        "S1": system_s1,
        "Tok": system_token,
        "MP": system_message_passing,
        "Srch": system_search,
        "BS": system_binary_search,
    }[name]


def _run_spec(case: FuzzCase, system_factory: Optional[Callable] = None) -> FuzzResult:
    if system_factory is not None:
        rewriter, initial = system_factory(case)
    else:
        rewriter, initial = _system_module(case.system).make_system(case.n)
    # Re-wrap so every single transition is audited, whatever the ambient
    # REPRO_SANITIZE_EVERY setting says.
    sanitized = SanitizedRewriter(rewriter.ruleset, rewriter.ctx, every=1)

    violation: Optional[Dict] = None
    checksum = 0
    steps = 0
    try:
        reduction = sanitized.random_reduction(
            initial, case.steps, seed=derive_seed(case.seed, "walk"))
        steps = len(reduction.steps)
        for step in reduction.steps:
            record = f"{step.rule_name}|{step.state}"
            checksum = zlib.crc32(record.encode("utf-8"), checksum)
        check_spec_reduction(reduction, case.n)
    except _VIOLATIONS as exc:
        violation = _violation_dict(exc)
    return FuzzResult(
        ok=violation is None,
        checksum=f"{checksum:08x}",
        events=steps,
        violation=violation,
    )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def run_case(case: FuzzCase,
             system_factory: Optional[Callable] = None) -> FuzzResult:
    """Execute one case and report its result.

    ``system_factory(case) -> (rewriter, initial)`` overrides the spec
    system under test (canary/differential experiments).
    """
    case.validate()
    if case.kind == "spec":
        return _run_spec(case, system_factory)
    if case.kind == "fabric":
        return _run_fabric(case)
    return _run_impl(case)


def fuzz_run(root_seed: int, runs: int, profile: str = "mixed",
             on_result: Optional[Callable] = None) -> List[Dict]:
    """The fuzz loop: generate and execute ``runs`` cases from a root seed.

    Returns one summary dict per case (index, label, checksum, outcome,
    violation).  ``on_result(index, case, result)`` is called after each
    case — the CLI uses it for progress output and counterexample capture.
    """
    summaries: List[Dict] = []
    for index in range(runs):
        case = generate_case(root_seed, index, profile)
        result = run_case(case)
        summary = {
            "index": index,
            "label": case.label,
            "kind": case.kind,
            "ok": result.ok,
            "checksum": result.checksum,
            "events": result.events,
        }
        if result.violation is not None:
            summary["violation"] = result.violation
        summaries.append(summary)
        if on_result is not None:
            on_result(index, case, result)
    return summaries
