"""The invariant oracle: continuous safety checking during fuzz runs.

Impl-level runs get an :class:`InvariantOracle` attached to the cluster.
It piggybacks on the always-on :class:`~repro.lint.sanitizer.ClusterSanitizer`
(at-rest census, clock monotonicity, grant sequencing) and adds the checks
that need a *network-wide* view:

- **token conservation** — holders + borrowers + in-flight token-lineage
  messages (``TokenMsg``/``LoanMsg``/``LoanReturnMsg``), bucketed by epoch:
  the newest epoch never carries more than one unit, and exactly one on
  fault-free schedules.  This closes the sanitizer's blind spot: a token
  duplicated *in flight* is invisible to an at-rest census.
- **shadow differential** — an independent model of every node's ``H_x``
  ring projection, reconstructed purely from observed deliveries (the
  bounded-history analogue of the spec's histories).  At every send the
  implementation's ``last_visit`` must equal the shadow's value; a token
  hop must extend it by exactly one visit (rule 4), except for System
  Search's direct hand-over, which by design appends no circulation event.
- **trap/search consistency** — a forwarded gimme must keep the
  requester's ``visit_stamp`` frozen (the ``H_z`` snapshot of rule 6 is
  immutable) and must travel in the direction rule 6's ``⊂_C`` comparison
  dictates for the current shadow histories.

Spec-level runs go through :func:`check_spec_reduction`, which replays a
recorded reduction and differentially compares each rule-6 forwarding
decision (prefix comparison on full histories) against the implementation's
criterion (visit-count comparison on projected histories).  The two must
agree whenever the projections have different lengths; equal projections
are the documented tie — the spec forwards counter-clockwise, the bounded
implementation clockwise — and are exempt.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ReproError
from repro.core.messages import GimmeMsg, LoanMsg, LoanReturnMsg, TokenMsg
from repro.specs.common import is_ring_prefix, project_ring

__all__ = ["OracleViolation", "InvariantOracle", "check_spec_reduction"]

#: Protocols whose every TokenMsg is a circulation hop (clock advances by
#: exactly one).  System Search's direct hand-over ("not a circulation
#: hop") exempts linear_search from the strict form.
_STRICT_HOP = frozenset(
    {"ring", "binary_search", "directed_search", "push", "hybrid",
     "fault_tolerant"}
)

_LINEAGE = (TokenMsg, LoanMsg, LoanReturnMsg)


class OracleViolation(ReproError):
    """A safety invariant failed during a fuzz run."""

    def __init__(self, invariant: str, detail: str, context: Optional[Dict] = None):
        super().__init__(f"{invariant}: {detail}")
        self.invariant = invariant
        self.detail = detail
        self.context = dict(context or {})


class InvariantOracle:
    """Network-wide invariant checks hooked into a live cluster.

    Attach *before* ``cluster.run()`` (delivery interception only sees
    messages scheduled after :meth:`attach`).  ``strict`` demands exactly
    one token unit at the newest epoch — valid only for schedules that
    cannot destroy the token (no crashes, no injected token loss).
    """

    def __init__(self, cluster, protocol: str = "", strict: bool = False) -> None:
        self.cluster = cluster
        self.protocol = protocol
        self.strict = strict
        self.checks = 0
        self.injected_token_losses = 0
        #: Optional predicate ``(src, dst, msg) -> bool`` consulted at
        #: delivery time; True swallows an in-flight token (fault
        #: injection for regeneration runs).
        self.drop_token: Optional[Callable[[int, int, object], bool]] = None
        # Shadow state, reconstructed from the message/event stream.
        self._seen: Dict[int, int] = {}          # node -> |ring(H_x)| - 1
        self._inflight: Dict[int, int] = {}      # epoch -> lineage msgs
        self._stamps: Dict[Tuple[int, int], Set[int]] = {}  # (z, seq) -> stamps
        self._lineage_lost = 0                   # deliveries to dead nodes
        self._attached = False

    # -- wiring ---------------------------------------------------------------

    def attach(self) -> None:
        if self._attached:
            return
        self._attached = True
        net = self.cluster.network
        self._orig_deliver = net._deliver
        net._deliver = self._deliver
        net.on_send.append(self._on_send)
        for driver in self.cluster.drivers.values():
            driver.subscribe(self._on_app_event)

    def _fail(self, invariant: str, detail: str, **context) -> None:
        context.setdefault("now", self.cluster.sim.now)
        raise OracleViolation(invariant, detail, context)

    # -- shadow bookkeeping ---------------------------------------------------

    def _on_app_event(self, node: int, kind: str, payload: tuple, now: float) -> None:
        if kind == "token_visit":
            # payload = (node_id, clock): the canonical visit event — the
            # only place a node's ring projection grows (rule 4).
            self._seen[node] = payload[1]

    def _core(self, node: int):
        return self.cluster.drivers[node].core

    def _shadow(self, node: int) -> int:
        if node not in self._seen:
            # Initial condition: the holder's H starts with visit(clock=0),
            # everyone else is empty (last_visit convention: -1).
            core = self._core(node)
            self._seen[node] = 0 if getattr(core, "has_token", False) else -1
        return self._seen[node]

    # -- send-side checks -----------------------------------------------------

    def _on_send(self, src: int, dst: int, msg: object) -> None:
        if isinstance(msg, _LINEAGE):
            epoch = getattr(msg, "epoch", 0)
            self._inflight[epoch] = self._inflight.get(epoch, 0) + 1
        if isinstance(msg, TokenMsg):
            self._check_token_send(src, dst, msg)
        elif isinstance(msg, GimmeMsg):
            self._check_gimme_send(src, dst, msg)

    def _check_token_send(self, src: int, dst: int, msg: TokenMsg) -> None:
        shadow = self._shadow(src)
        impl = getattr(self._core(src), "last_visit", None)
        if impl is not None and impl != shadow:
            self._fail(
                "shadow-divergence",
                f"node {src} forwards the token with last_visit={impl} but "
                f"its observable history ends at visit {shadow}",
                node=src, impl=impl, shadow=shadow,
            )
        if self.protocol in _STRICT_HOP:
            if msg.clock != shadow + 1:
                self._fail(
                    "hop-clock",
                    f"token hop {src}->{dst} carries clock {msg.clock}, "
                    f"expected {shadow + 1} (one new visit per hop, rule 4)",
                    src=src, dst=dst, clock=msg.clock, shadow=shadow,
                )
        elif msg.clock not in (shadow, shadow + 1):
            # Direct hand-over (no visit) or circulation hop (+1); anything
            # else fabricates or loses history.
            self._fail(
                "hop-clock",
                f"token hop {src}->{dst} carries clock {msg.clock}, expected "
                f"{shadow} (hand-over) or {shadow + 1} (circulation)",
                src=src, dst=dst, clock=msg.clock, shadow=shadow,
            )

    def _check_gimme_send(self, src: int, dst: int, msg: GimmeMsg) -> None:
        shadow = self._shadow(src)
        impl = getattr(self._core(src), "last_visit", None)
        if impl is not None and impl != shadow:
            self._fail(
                "shadow-divergence",
                f"node {src} sends a gimme with last_visit={impl} but its "
                f"observable history ends at visit {shadow}",
                node=src, impl=impl, shadow=shadow,
            )
        key = (msg.requester, msg.req_seq)
        if src == msg.requester:
            # A (re)launch snapshots the requester's own H_z.
            if msg.visit_stamp != shadow:
                self._fail(
                    "stamp-snapshot",
                    f"node {src} launches a search stamped {msg.visit_stamp} "
                    f"but its history ends at visit {shadow}",
                    node=src, stamp=msg.visit_stamp, shadow=shadow,
                )
            self._stamps.setdefault(key, set()).add(msg.visit_stamp)
            return
        # A forward must keep the requester's snapshot frozen (rule 6
        # copies H_z verbatim into the forwarded gimme).
        launched = self._stamps.get(key)
        if launched is not None and msg.visit_stamp not in launched:
            self._fail(
                "stamp-mutation",
                f"gimme for requester {msg.requester} seq {msg.req_seq} "
                f"forwarded by {src} carries stamp {msg.visit_stamp}, "
                f"launched with {sorted(launched)}",
                src=src, requester=msg.requester, stamp=msg.visit_stamp,
            )
        # Rule 6 differential: the spec steers by ⊂_C on full histories,
        # the impl by comparing visit counts.  Recompute the direction from
        # the shadow counts and require the impl's target to match.
        core = self._core(src)
        hop = getattr(core, "hop", None)
        if hop is None or msg.span < 1:
            return
        ccw, cw = hop(-msg.span), hop(msg.span)
        if ccw == cw:
            return
        expected = ccw if shadow < msg.visit_stamp else cw
        if dst not in (expected, msg.requester):
            self._fail(
                "search-direction",
                f"node {src} (seen visit {shadow}) forwarded a gimme "
                f"stamped {msg.visit_stamp} to {dst}; rule 6 dictates "
                f"{expected} ({'ccw' if expected == ccw else 'cw'})",
                src=src, dst=dst, expected=expected,
                shadow=shadow, stamp=msg.visit_stamp,
            )

    # -- delivery interception ------------------------------------------------

    def _deliver(self, src: int, dst: int, msg: object) -> None:
        net = self.cluster.network
        lineage = isinstance(msg, _LINEAGE)
        if lineage:
            epoch = getattr(msg, "epoch", 0)
            count = self._inflight.get(epoch, 0) - 1
            if count:
                self._inflight[epoch] = count
            else:
                self._inflight.pop(epoch, None)
            if dst in net._down or dst not in net._handlers:
                # The addressee is dead: a reliable lineage message (and
                # its token unit) evaporates here.
                self._lineage_lost += 1
            elif isinstance(msg, TokenMsg) and self.drop_token is not None \
                    and self.drop_token(src, dst, msg):
                # Injected token loss: the unit vanishes in flight.
                self.injected_token_losses += 1
                self._lineage_lost += 1
                net.dropped_count += 1
                return
            elif isinstance(msg, LoanMsg) and msg.requester == dst:
                # Mirror the borrower's H_x update (the loan carries the
                # lender's clock; accepting it is a ring contact).  The
                # fault-tolerant core discards stale epochs *before* this
                # point — mirror its fence against the pre-delivery epoch.
                core = self._core(dst)
                if getattr(msg, "epoch", 0) >= getattr(core, "epoch", 0):
                    self._seen[dst] = msg.clock
        self._orig_deliver(src, dst, msg)
        # Conservation is only decidable at quiescent points: a core
        # handler mutates all its state *before* the driver applies the
        # resulting effects, so mid-effect the token legitimately exists
        # nowhere.  After a delivery fully completes, every send the
        # handler emitted has been counted.
        self._check_conservation()

    # -- conservation ---------------------------------------------------------

    def _units(self) -> Dict[int, List[str]]:
        """Token units per epoch: who holds, who borrows, what's in flight."""
        units: Dict[int, List[str]] = {}
        for node, driver in self.cluster.drivers.items():
            if driver.crashed:
                continue
            core = driver.core
            epoch = getattr(core, "epoch", 0)
            if getattr(core, "has_token", False):
                units.setdefault(epoch, []).append(f"held@{node}")
            elif getattr(core, "_loan_pending", None) is not None:
                units.setdefault(epoch, []).append(f"loan@{node}")
        for epoch, count in self._inflight.items():
            units.setdefault(epoch, []).extend(["inflight"] * count)
        return units

    def _check_conservation(self) -> None:
        self.checks += 1
        units = self._units()
        if not units:
            if self.strict and not self._lineage_lost:
                self._fail(
                    "token-conservation",
                    "the token vanished: no holder, no borrower, nothing "
                    "in flight, and no fault destroyed it",
                )
            return
        newest = max(units)
        if len(units[newest]) > 1:
            self._fail(
                "token-conservation",
                f"{len(units[newest])} token units coexist at epoch "
                f"{newest}: {units[newest]}",
                epoch=newest, units=units[newest],
            )
        if self.strict and not self._lineage_lost and len(units[newest]) != 1:
            self._fail(
                "token-conservation",
                f"expected exactly one token unit at epoch {newest}, "
                f"found {units[newest]}",
                epoch=newest, units=units[newest],
            )


# ---------------------------------------------------------------------------
# Spec-level differential
# ---------------------------------------------------------------------------

def check_spec_reduction(reduction, n: int) -> int:
    """Differentially check every rule-6 step of a recorded reduction.

    For each forwarding decision the spec took (prefix comparison ``⊂_C``
    on the full histories ``H`` and ``H_z``), recompute the bounded
    implementation's criterion (ring-projection *length* comparison, the
    ``last_visit < visit_stamp`` test) and demand agreement.  Equal
    projections are the documented tie and exempt.  Returns the number of
    decisions compared; raises :class:`OracleViolation` on disagreement.
    """
    compared = 0
    for index, step in enumerate(reduction.steps):
        if step.rule_name != "6":
            continue
        binding = step.binding
        h, hz = binding.get("H"), binding.get("Hz")
        if h is None or hz is None:
            continue
        len_h = len(project_ring(h))
        len_hz = len(project_ring(hz))
        if len_h == len_hz:
            continue  # the tie: spec goes ccw, impl goes cw — exempt
        spec_ccw = is_ring_prefix(h, hz)
        impl_ccw = len_h < len_hz
        compared += 1
        if spec_ccw != impl_ccw:
            raise OracleViolation(
                "rule6-differential",
                f"step {index}: spec forwards "
                f"{'ccw' if spec_ccw else 'cw'} (⊂_C on histories) but the "
                f"visit-count criterion says "
                f"{'ccw' if impl_ccw else 'cw'} "
                f"(|ring(H)|={len_h}, |ring(Hz)|={len_hz})",
                {"step": index, "len_h": len_h, "len_hz": len_hz},
            )
    return compared
