"""repro.fuzz — deterministic fuzzing & replay harness.

Randomized schedule/fault exploration for the token-passing protocols:
explicit, serializable cases (:mod:`repro.fuzz.case`), a network-wide
invariant oracle with a spec-vs-impl shadow differential
(:mod:`repro.fuzz.oracle`), deterministic execution and checksumming
(:mod:`repro.fuzz.runner`), and schedule minimization
(:mod:`repro.fuzz.shrink`).  Everything derives from one root seed
(:mod:`repro.fuzz.rng`); the ``repro fuzz`` CLI and the committed corpus
under ``tests/fuzz/corpus/`` are the user-facing entry points.
"""

from repro.fuzz.case import (
    IMPL_PROTOCOLS,
    PROFILES,
    SPEC_SYSTEMS,
    FuzzCase,
    build_delay,
    generate_case,
)
from repro.fuzz.oracle import InvariantOracle, OracleViolation, check_spec_reduction
from repro.fuzz.rng import child_rng, derive_seed
from repro.fuzz.runner import FuzzResult, fuzz_run, run_case
from repro.fuzz.shrink import shrink

__all__ = [
    "IMPL_PROTOCOLS",
    "PROFILES",
    "SPEC_SYSTEMS",
    "FuzzCase",
    "FuzzResult",
    "InvariantOracle",
    "OracleViolation",
    "build_delay",
    "check_spec_reduction",
    "child_rng",
    "derive_seed",
    "fuzz_run",
    "generate_case",
    "run_case",
    "shrink",
]
