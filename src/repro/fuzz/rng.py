"""Deterministic seed derivation for the fuzzing harness.

Every randomness source in a fuzz run — case generation, network delay
sampling, loss/duplication draws, fault placement, spec-level strategy
choices — derives from one **root seed** through labelled children::

    case_rng  = child_rng(root, "case", run_index)
    net_rng   = child_rng(root, "net")
    fault_rng = child_rng(root, "faults")

Derivation is a SHA-256 hash of the root and the label path, so streams are
independent (consuming from one never perturbs another) and every run is
bit-reproducible from ``(root, labels)`` alone.  This is the plumbing the
RNG audit asks for: no module reaches for the global ``random`` state, and
sibling streams cannot interfere.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive_seed", "child_rng"]

_MASK = (1 << 63) - 1


def derive_seed(root: int, *path: object) -> int:
    """A 63-bit seed deterministically derived from ``root`` and a label
    path (ints and strings; anything else is repr()ed)."""
    hasher = hashlib.sha256()
    hasher.update(str(int(root)).encode("ascii"))
    for label in path:
        hasher.update(b"/")
        # Type-tagged so e.g. the int 0 and the string "0" derive
        # different streams.
        if isinstance(label, bytes):
            hasher.update(b"b:" + label)
        elif isinstance(label, bool) or not isinstance(label, int):
            hasher.update(b"s:" + str(label).encode("utf-8"))
        else:
            hasher.update(b"i:" + str(label).encode("ascii"))
    return int.from_bytes(hasher.digest()[:8], "big") & _MASK


def child_rng(root: int, *path: object) -> random.Random:
    """An independent :class:`random.Random` child stream for this path."""
    return random.Random(derive_seed(root, *path))
