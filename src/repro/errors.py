"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TermError(ReproError):
    """An ill-formed term was constructed or manipulated."""


class MatchError(TermError):
    """A pattern match that was required to succeed did not."""


class RuleError(ReproError):
    """A rewrite rule is ill-formed or was misapplied."""


class NoApplicableRuleError(RuleError):
    """A rewriting step was requested but no rule applies to the term."""


class SpecError(ReproError):
    """A protocol specification was violated or misconfigured."""


class RefinementError(SpecError):
    """A refinement mapping failed to carry a step of the fine system."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class NetworkError(SimulationError):
    """A message could not be routed or delivered."""


class ProtocolError(ReproError):
    """A protocol state machine detected a safety violation."""


class TokenSafetyError(ProtocolError):
    """More than one token (or a phantom token) was observed."""


class ConfigError(ReproError):
    """Invalid protocol, workload, or experiment configuration."""


class FuzzCaseError(ConfigError):
    """A fuzz case file or dict is malformed.

    Subclasses :class:`ConfigError` so existing callers keep working;
    carries the offending fault ``kind`` (when the problem is an unknown
    or incomplete fault entry) so error messages and tests can name it
    instead of surfacing a bare ``KeyError`` deep in the runner."""

    def __init__(self, message: str, kind: object = None) -> None:
        super().__init__(message)
        self.kind = kind


class ExperimentCellError(ReproError):
    """One cell of a parallel experiment sweep failed.

    Carries the cell key so a crash inside a worker process points at the
    exact ``(experiment, parameters)`` combination that died instead of
    surfacing as an anonymous pool failure."""

    def __init__(self, key: object, message: str) -> None:
        super().__init__(f"experiment cell {key!r} failed: {message}")
        self.key = key


class BenchSchemaError(ReproError):
    """A persisted benchmark baseline does not match the expected schema."""


class LintError(ReproError):
    """The protocol static analyzer found a defect, or was misused.

    The structured runtime-violation subclass (``LintViolation``, carrying
    the offending rule, binding, and minimized state) lives in
    :mod:`repro.lint.findings`."""


class VerifyError(ReproError):
    """The verification subsystem (``repro verify``) was misused or found a
    structural problem: a rule set whose footprints cannot be extracted, a
    verdict artifact that fails its schema or signature check, or a cutoff
    request for a system without a ring topology."""


class MembershipError(ReproError):
    """An invalid group-membership operation was attempted."""


class WireError(ReproError):
    """The real-socket transport layer (:mod:`repro.wire`) failed.

    Base class for everything that can go wrong on a real TCP link; the
    in-memory transports never raise it."""


class FrameError(WireError):
    """A wire frame violated the framing layer: truncated stream,
    oversized length prefix, or an unsupported wire version.  The
    receiving side closes the connection instead of resynchronizing —
    a length-prefixed stream has no reliable resync point."""


class CodecError(WireError):
    """A frame body failed to decode: malformed JSON, an unregistered
    message type tag, or field values the message class rejects.  Like
    :class:`FrameError` this is terminal for the connection."""


class FastSimUnsupportedError(ReproError):
    """A configuration outside the array-compiled fast path was requested.

    The fast engine (:mod:`repro.fastsim`) mirrors the object cores
    bit-for-bit only over a declared support matrix (ring / binary-search
    protocols, no fault injection, auto-release grants).  Anything outside
    it raises this instead of silently diverging; callers fall back to
    :class:`repro.core.cluster.Cluster`."""
