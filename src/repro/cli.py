"""Command-line interface.

Usage (also available as ``python -m repro``):

    python -m repro simulate --protocol binary_search -n 100 \\
        --mean-interval 10 --rounds 300 --seed 7
    python -m repro compare -n 100 --mean-interval 100 --rounds 300
    python -m repro figure9 [--rounds 300]
    python -m repro figure10 [--rounds 300]
    python -m repro ablations [--rounds 200]
    python -m repro refinement [-n 4 --steps 200]
    python -m repro lint [--json --strict --max-states 300]
    python -m repro bench [--json --rounds 40 --out DIR --profile --mem]
    python -m repro bench --validate --compare benchmarks/baselines/BENCH_<stamp>.json
    python -m repro bench --compare benchmarks/baselines --regression-threshold 30
    python -m repro fabric [--keys 256 --grants 6400 --json]
    python -m repro fabric --keys 256 --expect-checksum <hex>
    python -m repro fuzz [--seed 2001 --runs 50 --profile mixed]
    python -m repro fuzz --replay tests/fuzz/corpus/<case>.json
    python -m repro stabilize [--seed 2001 --runs 25]
    python -m repro stabilize --measure 9 [--episodes 20]
    python -m repro chaos [--seed 2001 --runs 20 --profile mixed]
    python -m repro chaos --replay chaos-failures/<case>.json
    python -m repro serve [-n 3 --protocol fault_tolerant --port 7700]
    python -m repro loadgen --port 7700 [--ops 1000 --clients 4]
    python -m repro wire-smoke [-n 3 --ops 2000 --json --out report.json]

Sweep commands accept ``--jobs N`` (or the ``REPRO_JOBS`` environment
variable) to fan independent cells out over N worker processes; the output
is identical to a serial run.

Every command prints plain-text tables (see :mod:`repro.analysis.tables`)
and returns a process exit code of 0 on success.
"""

from __future__ import annotations

import argparse
import glob
import math
import os
import sys
from typing import List, Optional

from repro.analysis.experiments import (
    run_adaptive_speed_ablation,
    run_directed_ablation,
    run_figure9,
    run_figure10,
    run_gc_ablation,
    run_protocol_once,
    run_push_pull_ablation,
    run_throttle_ablation,
)
from repro.analysis.tables import format_series, format_table
from repro.core.config import ProtocolConfig

PROTOCOLS = ("ring", "linear_search", "binary_search", "directed_search",
             "push", "hybrid", "fault_tolerant")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=2001,
                        help="RNG seed (default 2001)")
    parser.add_argument("--rounds", type=int, default=300,
                        help="token circulations per run (paper: 1000)")


def _add_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for independent sweep cells "
                             "(default: REPRO_JOBS or 1 = serial; 0 or -1 "
                             "means all CPUs)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Adaptive token-passing (Englert, Rudolph & Shvartsman "
                     "2001): simulations, figures, and ablations."),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one protocol once")
    sim.add_argument("--protocol", choices=PROTOCOLS, default="binary_search")
    sim.add_argument("-n", "--nodes", type=int, default=100)
    sim.add_argument("--mean-interval", type=float, default=10.0,
                     help="mean time between requests (global Poisson)")
    sim.add_argument("--idle-pause", type=float, default=0.0)
    sim.add_argument("--trap-gc", choices=("none", "rotation", "inverse"),
                     default="rotation")
    _add_common(sim)

    cmp_ = sub.add_parser("compare", help="ring vs binary search, one load")
    cmp_.add_argument("-n", "--nodes", type=int, default=100)
    cmp_.add_argument("--mean-interval", type=float, default=100.0)
    _add_common(cmp_)
    _add_jobs(cmp_)

    fig9 = sub.add_parser("figure9", help="regenerate the paper's Figure 9")
    _add_common(fig9)
    _add_jobs(fig9)

    fig10 = sub.add_parser("figure10", help="regenerate the paper's Figure 10")
    fig10.add_argument("-n", "--nodes", type=int, default=100)
    _add_common(fig10)
    _add_jobs(fig10)

    abl = sub.add_parser("ablations", help="run the A1-A5 ablation suite")
    _add_common(abl)
    _add_jobs(abl)

    ref = sub.add_parser("refinement",
                         help="machine-check the TRS refinement chain")
    ref.add_argument("-n", "--nodes", type=int, default=4)
    ref.add_argument("--steps", type=int, default=200)
    ref.add_argument("--seed", type=int, default=42)

    rep = sub.add_parser("report",
                         help="run the figures with replication and write "
                              "a markdown report")
    rep.add_argument("--out", default="report.md",
                     help="output path (default report.md)")
    rep.add_argument("--seeds", type=int, nargs="+", default=[1, 2, 3])
    _add_common(rep)
    _add_jobs(rep)

    ben = sub.add_parser(
        "bench",
        help="run the micro-benchmark suite and persist a BENCH_<stamp>.json "
             "baseline")
    ben.add_argument("--rounds", type=int, default=40,
                     help="workload rounds per benchmark (default 40)")
    ben.add_argument("--out", default=".", metavar="DIR",
                     help="directory for BENCH_<stamp>.json (default .)")
    ben.add_argument("--json", action="store_true",
                     help="print the baseline document as JSON")
    ben.add_argument("--validate", metavar="FILE", nargs="?", const=True,
                     default=None,
                     help="validate an existing baseline file and exit "
                          "(nothing is run); bare --validate combined with "
                          "--compare additionally schema-checks the fresh "
                          "run's document")
    ben.add_argument("--compare", metavar="FILE", default=None,
                     help="run the suite at the baseline's recorded rounds "
                          "and print per-workload deltas against FILE (a "
                          "directory picks its newest BENCH_*.json); exits "
                          "non-zero on checksum mismatch (behaviour drift) "
                          "— value regressions are informational unless "
                          "--regression-threshold is set")
    ben.add_argument("--regression-threshold", metavar="PCT", type=float,
                     default=None,
                     help="with --compare: also exit non-zero when a "
                          "workload's metric regresses by more than PCT "
                          "percent (throughput drop or wall-time increase)")
    ben.add_argument("--profile", action="store_true",
                     help="run the suite under cProfile and write the "
                          "hotspot report as PROFILE_<stamp>.txt next to "
                          "the BENCH json (profiling overhead makes the "
                          "recorded values slower than a plain run)")
    ben.add_argument("--mem", action="store_true",
                     help="wrap each workload in tracemalloc and record "
                          "exact peak allocation per workload (slows the "
                          "run; peak-RSS and object counts are always "
                          "recorded)")

    lint = sub.add_parser(
        "lint",
        help="statically analyze every registered TRS system (rule lint, "
             "refinement narrowing, sanitized simulation)")
    lint.add_argument("--json", action="store_true",
                      help="emit the machine-readable JSON report")
    lint.add_argument("--strict", action="store_true",
                      help="exit nonzero on warnings, not only errors")
    lint.add_argument("--max-states", type=int, default=300,
                      help="states sampled per system (default 300)")
    lint.add_argument("--skip-dynamic", action="store_true",
                      help="skip the sanitized protocol simulations")
    lint.add_argument("--system", action="append", default=None,
                      metavar="NAME",
                      help="lint only this system (repeatable; implies "
                           "--skip-dynamic)")

    fab = sub.add_parser(
        "fabric",
        help="run a multi-token fabric (N keyed lanes multiplexed on one "
             "kernel) under a closed-loop Zipf client population; prints "
             "per-key metrics and a deterministic checksum")
    fab.add_argument("--keys", type=int, default=256,
                     help="number of lock keys / token lanes (default 256)")
    fab.add_argument("--ring", type=int, default=3, metavar="N",
                     help="nodes per lane ring (default 3)")
    fab.add_argument("--protocol", choices=PROTOCOLS,
                     default="binary_search",
                     help="protocol core per lane (default binary_search)")
    fab.add_argument("--clients", type=int, default=None,
                     help="closed-loop client population "
                          "(default: 2.4 x keys, the bench's saturation "
                          "ratio)")
    fab.add_argument("--think-time", type=float, default=2.0,
                     help="virtual think time between a client's release "
                          "and next request (default 2.0)")
    fab.add_argument("--zipf-s", type=float, default=1.2,
                     help="Zipf skew of key popularity (default 1.2)")
    fab.add_argument("--grants", type=int, default=None,
                     help="total grants to run for (default: 25 x keys)")
    fab.add_argument("--idle-pause", type=float, default=10_000.0,
                     help="lane idle pause; the large default parks idle "
                          "tokens so every hop serves a grant "
                          "(default 10000)")
    fab.add_argument("--seed", type=int, default=2001,
                     help="fabric seed; lane seeds derive from it per key "
                          "(default 2001)")
    fab.add_argument("--top", type=int, default=10,
                     help="hottest keys to print (default 10)")
    fab.add_argument("--json", action="store_true",
                     help="emit the machine-readable JSON document")
    fab.add_argument("--expect-checksum", metavar="HEX", default=None,
                     help="exit non-zero unless the run checksum equals "
                          "HEX (CI determinism pin)")

    fuzz = sub.add_parser(
        "fuzz",
        help="randomized schedule/fault exploration with invariant "
             "checking, shrinking, and deterministic replay")
    fuzz.add_argument("--seed", type=int, default=2001,
                      help="root seed every case derives from (default 2001)")
    fuzz.add_argument("--runs", type=int, default=50,
                      help="number of cases to generate and run (default 50)")
    fuzz.add_argument("--profile", default="mixed",
                      choices=("clean", "faults", "spec", "mixed", "fabric",
                               "stabilize"),
                      help="case mix (default mixed)")
    fuzz.add_argument("--replay", metavar="FILE", default=None,
                      help="replay one saved case file instead of fuzzing; "
                           "exits nonzero unless the recorded outcome "
                           "reproduces exactly")
    fuzz.add_argument("--no-shrink", dest="shrink", action="store_false",
                      help="report violations without minimizing them")
    fuzz.add_argument("--out", metavar="DIR", default="fuzz-failures",
                      help="directory for counterexample files "
                           "(default fuzz-failures/)")

    stab = sub.add_parser(
        "stabilize",
        help="self-stabilization harness: corruption fuzzing of the "
             "stabilizing core with the convergence oracle, or a "
             "deterministic convergence-time measurement sweep")
    stab.add_argument("--seed", type=int, default=2001,
                      help="root seed every case derives from (default 2001)")
    stab.add_argument("--runs", type=int, default=25,
                      help="corruption fuzz cases to run (default 25)")
    stab.add_argument("--no-shrink", dest="shrink", action="store_false",
                      help="report violations without minimizing them")
    stab.add_argument("--out", metavar="DIR", default="fuzz-failures",
                      help="directory for counterexample files "
                           "(default fuzz-failures/)")
    stab.add_argument("--measure", type=int, metavar="N", default=None,
                      help="instead of fuzzing, measure convergence-time "
                           "percentiles on an N-node ring")
    stab.add_argument("--episodes", type=int, default=20,
                      help="corruption episodes for --measure (default 20)")

    verify = sub.add_parser(
        "verify",
        help="independence analysis, DPOR-accelerated exploration, and "
             "cutoff-certified parameterized verification of the ring "
             "systems; emits signed verdict artifacts")
    verify.add_argument("--system", default="binary_search",
                        help="system to verify (default binary_search); "
                             "see repro.verify.systems for keys")
    verify.add_argument("--property", action="append", default=None,
                        metavar="NAME", dest="properties",
                        help="property to certify (repeatable; default: "
                             "every property applicable to the system)")
    verify.add_argument("--json", action="store_true",
                        help="emit the machine-readable JSON report")
    verify.add_argument("--strict", action="store_true",
                        help="exit nonzero unless every certification is "
                             "complete and verified")
    verify.add_argument("--max-states", type=int, default=200_000,
                        help="exploration cap per run (default 200000)")
    verify.add_argument("--out", metavar="DIR", default=None,
                        help="write signed verdict artifacts to DIR")
    verify.add_argument("--check", action="append", default=None,
                        metavar="FILE",
                        help="validate a committed verdict artifact instead "
                             "of running (repeatable)")
    verify.add_argument("--recompute", action="store_true",
                        help="with --check: re-run the certification and "
                             "require identical counts")

    chaos = sub.add_parser(
        "chaos",
        help="seeded crash/partition scenarios against the asyncio "
             "runtime (virtual time): supervised restart, reliable "
             "delivery, invariant oracle, bounded-recovery check")
    chaos.add_argument("--seed", type=int, default=2001,
                       help="root seed every scenario derives from "
                            "(default 2001)")
    chaos.add_argument("--runs", type=int, default=20,
                       help="number of scenarios to generate and run "
                            "(default 20)")
    chaos.add_argument("--profile", default="mixed",
                       choices=("crash", "partition", "mixed", "corrupt"),
                       help="fault mix (default mixed; corrupt injects "
                            "arbitrary-state corruption on the "
                            "stabilizing protocol)")
    chaos.add_argument("--replay", metavar="FILE", default=None,
                       help="replay one saved scenario file instead; exits "
                            "nonzero unless the recorded outcome reproduces "
                            "exactly")
    chaos.add_argument("--out", metavar="DIR", default="chaos-failures",
                       help="directory for counterexample files "
                            "(default chaos-failures/)")

    serve = sub.add_parser(
        "serve",
        help="run a real-socket lock service: an in-process token-passing "
             "cluster on loopback TCP fronted by an acquire/release/status "
             "network API (stop with Ctrl-C)")
    serve.add_argument("-n", "--nodes", type=int, default=3,
                       help="cluster size (default 3)")
    serve.add_argument("--protocol", choices=PROTOCOLS,
                       default="fault_tolerant",
                       help="protocol core (default fault_tolerant)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="service bind host (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=7700,
                       help="service port; 0 picks a free one (default 7700)")
    serve.add_argument("--delay", type=float, default=0.001,
                       help="node-to-node transport delay in seconds; also "
                            "the protocol timer base (default 0.001)")
    serve.add_argument("--loss-rate", type=float, default=0.0,
                       help="cheap-message loss probability on the node "
                            "wire (default 0)")
    serve.add_argument("--seed", type=int, default=2001,
                       help="cluster seed (default 2001)")
    serve.add_argument("--no-reliability", dest="reliability",
                       action="store_false",
                       help="disable the ARQ layer on node links")
    serve.add_argument("--no-supervise", dest="supervise",
                       action="store_false",
                       help="disable crash supervision/restart")

    gen = sub.add_parser(
        "loadgen",
        help="drive a running lock service with an open- or closed-loop "
             "workload and print the latency report")
    gen.add_argument("--host", default="127.0.0.1",
                     help="service host (default 127.0.0.1)")
    gen.add_argument("--port", type=int, required=True,
                     help="service port (see `repro serve`)")
    gen.add_argument("--mode", choices=("closed", "open"), default="closed",
                     help="closed: N clients in acquire/release cycles; "
                          "open: Poisson arrivals (default closed)")
    gen.add_argument("--ops", type=int, default=1000,
                     help="total acquire attempts (default 1000)")
    gen.add_argument("--clients", type=int, default=4,
                     help="closed-loop concurrent sessions (default 4)")
    gen.add_argument("--mean-interval", type=float, default=0.01,
                     help="open-loop mean seconds between arrivals "
                          "(default 0.01)")
    gen.add_argument("--spread-nodes", type=int, default=0, metavar="N",
                     help="open-loop: spread arrivals over nodes 0..N-1; "
                          "0 lets the server pick (default 0)")
    gen.add_argument("--hold-time", type=float, default=0.0,
                     help="seconds to hold the lock per grant (default 0)")
    gen.add_argument("--think-time", type=float, default=0.0,
                     help="closed-loop pause between cycles (default 0)")
    gen.add_argument("--timeout", type=float, default=30.0,
                     help="per-acquire timeout in seconds (default 30)")
    gen.add_argument("--seed", type=int, default=0,
                     help="arrival-process seed (default 0)")
    gen.add_argument("--json", action="store_true",
                     help="emit the report as JSON")

    wsmoke = sub.add_parser(
        "wire-smoke",
        help="stand up the full real-socket stack in-process (wire "
             "transport + ARQ + supervision + invariant oracle + lock "
             "service) and hammer it; exits non-zero unless every op is "
             "granted with zero violations")
    wsmoke.add_argument("-n", "--nodes", type=int, default=3,
                        help="cluster size (default 3)")
    wsmoke.add_argument("--ops", type=int, default=2000,
                        help="acquire/release ops (default 2000)")
    wsmoke.add_argument("--clients", type=int, default=6,
                        help="closed-loop sessions (default 6)")
    wsmoke.add_argument("--protocol", choices=PROTOCOLS,
                        default="fault_tolerant",
                        help="protocol core (default fault_tolerant)")
    wsmoke.add_argument("--seed", type=int, default=0,
                        help="run seed (default 0)")
    wsmoke.add_argument("--delay", type=float, default=0.001,
                        help="node wire delay / timer base (default 0.001)")
    wsmoke.add_argument("--loss-rate", type=float, default=0.0,
                        help="cheap-message loss on the node wire "
                             "(default 0)")
    wsmoke.add_argument("--p99-budget", type=float, default=2.0,
                        help="acquire-wait p99 budget in seconds "
                             "(default 2.0)")
    wsmoke.add_argument("--json", action="store_true",
                        help="print the full report as JSON")
    wsmoke.add_argument("--out", metavar="FILE", default=None,
                        help="also write the report JSON to FILE "
                             "(CI artifact)")
    return parser


def _cmd_simulate(args) -> int:
    config = ProtocolConfig(idle_pause=args.idle_pause, trap_gc=args.trap_gc)
    row = run_protocol_once(
        args.protocol, n=args.nodes, mean_interval=args.mean_interval,
        rounds=args.rounds, seed=args.seed, config=config,
    )
    print(format_table(
        [row],
        ["protocol", "n", "grants", "avg_responsiveness",
         "max_responsiveness", "avg_waiting", "messages_total",
         "messages_cheap", "token_passes"],
        title=(f"{args.protocol} | n={args.nodes} "
               f"interval={args.mean_interval:g} rounds={args.rounds}"),
    ))
    return 0


def _cmd_compare(args) -> int:
    from repro.analysis.runner import Cell, run_cells

    rows = run_cells(
        [Cell(key=("compare", protocol), fn=run_protocol_once,
              kwargs=dict(protocol=protocol, n=args.nodes,
                          mean_interval=args.mean_interval,
                          rounds=args.rounds, seed=args.seed))
         for protocol in ("ring", "binary_search")],
        jobs=args.jobs,
    )
    print(format_table(
        rows,
        ["protocol", "avg_responsiveness", "max_responsiveness",
         "grants", "messages_total"],
        title=(f"ring vs binary_search | n={args.nodes} "
               f"interval={args.mean_interval:g} "
               f"(n/2={args.nodes // 2}, log2(n)="
               f"{math.log2(args.nodes):.2f})"),
    ))
    return 0


def _cmd_figure9(args) -> int:
    rows = run_figure9(rounds=args.rounds, seed=args.seed, jobs=args.jobs)
    print(format_series(
        rows, index="n", series="protocol", value="avg_responsiveness",
        title="Figure 9 — avg responsiveness vs processors (fixed load)",
    ))
    return 0


def _cmd_figure10(args) -> int:
    rows = run_figure10(n=args.nodes, rounds=args.rounds, seed=args.seed,
                        jobs=args.jobs)
    print(format_series(
        rows, index="mean_interval", series="protocol",
        value="avg_responsiveness",
        title=(f"Figure 10 — avg responsiveness vs load (n={args.nodes}; "
               f"log2(n)={math.log2(args.nodes):.2f}, "
               f"n/2={args.nodes // 2})"),
    ))
    return 0


def _cmd_ablations(args) -> int:
    print(format_table(
        run_gc_ablation(rounds=args.rounds, seed=args.seed, jobs=args.jobs),
        ["trap_gc", "grants", "dummy_per_grant", "avg_responsiveness"],
        title="A1 — trap garbage collection",
    ))
    print()
    print(format_series(
        run_directed_ablation(rounds=args.rounds, seed=args.seed,
                              jobs=args.jobs),
        index="n", series="protocol", value="search_per_grant",
        title="A2 — search messages per request",
    ))
    print()
    print(format_series(
        run_push_pull_ablation(rounds=args.rounds, seed=args.seed,
                               jobs=args.jobs),
        index="mean_interval", series="protocol",
        value="avg_responsiveness",
        title="A3 — pull vs push vs hybrid (responsiveness)",
    ))
    print()
    print(format_table(
        run_throttle_ablation(rounds=args.rounds, seed=args.seed,
                              jobs=args.jobs),
        ["single_outstanding", "grants", "search_messages", "token_passes",
         "avg_responsiveness"],
        title="A4 — gimme throttle",
    ))
    print()
    print(format_table(
        run_adaptive_speed_ablation(rounds=max(args.rounds // 2, 50),
                                    seed=args.seed, jobs=args.jobs),
        ["idle_pause", "grants", "messages_per_time", "avg_responsiveness"],
        title="A5 — adaptive token speed",
    ))
    return 0


def _cmd_refinement(args) -> int:
    from repro.specs import (
        system_binary_search,
        system_message_passing,
        system_s,
        system_s1,
        system_search,
        system_token,
    )
    from repro.specs.properties import prefix_property
    from repro.specs.refinement import (
        binary_search_to_s1,
        check_refinement,
        mp_to_s1,
        s1_to_s,
        search_to_s1,
        token_to_s1,
    )

    n = args.nodes
    coarse_s, _ = system_s.make_system(n)
    coarse_s1, _ = system_s1.make_system(n)
    chain = [
        ("S1 -> S (Lemma 1)", system_s1.make_system(n), s1_to_s,
         coarse_s, 1, {}),
        ("Token -> S1 (Lemma 2)", system_token.make_system(n), token_to_s1,
         coarse_s1, 2, {}),
        ("MP -> S1 (Lemma 3)", system_message_passing.make_system(n),
         mp_to_s1, coarse_s1, 2, {}),
        ("Search -> S1", system_search.make_system(n), search_to_s1,
         coarse_s1, 2, {"5": 0.5, "6": 0.8}),
        ("BinarySearch -> S1 (Thm 1)", system_binary_search.make_system(n),
         binary_search_to_s1, coarse_s1, 2,
         {"1": 1.5, "2": 3.0, "5": 0.6}),
    ]
    for label, (rewriter, initial), mapping, coarse, depth, weights in chain:
        reduction = rewriter.random_reduction(initial, args.steps,
                                              seed=args.seed,
                                              weights=weights or None)
        reduction.check_invariant(prefix_property)
        simulated = check_refinement(reduction, mapping, coarse,
                                     max_depth=depth)
        print(f"  {label:<28} OK ({len(reduction)} steps, "
              f"{simulated} simulated)")
    print("refinement chain verified")
    return 0


def _report_figure9_seed(seed: int, rounds: int) -> list:
    """One Figure-9 replication run (module-level so it pickles to spawn
    workers when ``report --jobs N`` parallelizes over seeds)."""
    return run_figure9(sizes=(8, 16, 32, 64), rounds=rounds, seed=seed)


def _report_figure10_seed(seed: int, rounds: int) -> list:
    """One Figure-10 replication run (module-level for spawn pickling)."""
    return run_figure10(intervals=(2, 10, 50, 200), n=64, rounds=rounds,
                        seed=seed)


def _cmd_report(args) -> int:
    from functools import partial

    from repro.analysis.replication import replicate

    lines = ["# repro — replicated figure report", ""]
    lines.append(f"seeds: {args.seeds}; rounds per run: {args.rounds}")
    lines.append("")

    fig9 = replicate(
        partial(_report_figure9_seed, rounds=args.rounds),
        seeds=args.seeds, key_fields=("n", "protocol"),
        value_fields=("avg_responsiveness",),
        jobs=args.jobs,
    )
    lines.append("## Figure 9 — fixed load, varying processors")
    lines.append("")
    lines.append("| n | protocol | avg responsiveness (mean ± 95% CI) |")
    lines.append("|---|---|---|")
    for row in fig9:
        lines.append(
            f"| {row['n']} | {row['protocol']} | "
            f"{row['avg_responsiveness_mean']:.2f} ± "
            f"{row['avg_responsiveness_ci']:.2f} |")
    lines.append("")

    fig10 = replicate(
        partial(_report_figure10_seed, rounds=args.rounds),
        seeds=args.seeds, key_fields=("mean_interval", "protocol"),
        value_fields=("avg_responsiveness",),
        jobs=args.jobs,
    )
    lines.append("## Figure 10 — fixed n = 64, varying load")
    lines.append("")
    lines.append("| interval | protocol | avg responsiveness (mean ± CI) |")
    lines.append("|---|---|---|")
    for row in fig10:
        lines.append(
            f"| {row['mean_interval']:g} | {row['protocol']} | "
            f"{row['avg_responsiveness_mean']:.2f} ± "
            f"{row['avg_responsiveness_ci']:.2f} |")
    lines.append("")

    text = "\n".join(lines) + "\n"
    with open(args.out, "w") as handle:
        handle.write(text)
    print(f"wrote {args.out} ({len(fig9) + len(fig10)} aggregated rows)")
    return 0


def _cmd_bench(args) -> int:
    import json

    from repro.analysis import bench
    from repro.errors import BenchSchemaError

    if args.validate is not None and args.compare is None:
        if args.validate is True:
            print("error: bare --validate needs --compare (or pass a "
                  "baseline file to validate)", file=sys.stderr)
            return 2
        try:
            with open(args.validate) as handle:
                doc = json.load(handle)
            bench.validate(doc)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        except BenchSchemaError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"{args.validate}: valid {bench.SCHEMA} baseline "
              f"({len(doc['results'])} results)")
        return 0

    if args.compare is not None:
        baseline_path = args.compare
        if os.path.isdir(baseline_path):
            candidates = sorted(
                glob.glob(os.path.join(baseline_path, "BENCH_*.json")))
            if not candidates:
                print(f"error: no BENCH_*.json under {baseline_path}",
                      file=sys.stderr)
                return 2
            baseline_path = candidates[-1]
        try:
            with open(baseline_path) as handle:
                baseline = json.load(handle)
            bench.validate(baseline)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        except BenchSchemaError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"baseline file: {baseline_path} "
              f"(commit {baseline.get('commit', 'unknown')[:12]}, "
              f"rounds {baseline['rounds']})")
        # Checksums are rounds-dependent, so the comparison run must use
        # the baseline's recorded rounds, not the CLI default.
        doc = bench.collect(rounds=baseline["rounds"])
        if args.validate is not None:
            bench.validate(doc)
        lines, ok = bench.compare(doc, baseline,
                                  regression_pct=args.regression_threshold)
        for line in lines:
            print(line)
        if not ok:
            print(f"bench compare vs {baseline_path}: FAILED "
                  "(checksum mismatch, regression beyond threshold, or "
                  "no shared workloads)", file=sys.stderr)
            return 1
        suffix = ("value deltas are informational"
                  if args.regression_threshold is None else
                  f"within the {args.regression_threshold:.1f}% threshold")
        print(f"bench compare vs {baseline_path}: OK ({suffix})")
        return 0

    if args.profile:
        import cProfile
        import io
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        doc = bench.collect(rounds=args.rounds, trace_memory=args.mem)
        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        buffer.write("Top 30 by cumulative time\n")
        stats.sort_stats("cumulative").print_stats(30)
        buffer.write("\nTop 30 by internal time\n")
        stats.sort_stats("tottime").print_stats(30)
        stamp = bench.default_stamp()
        path = bench.write_baseline(doc, out_dir=args.out, stamp=stamp)
        profile_path = bench.write_profile(buffer.getvalue(),
                                           out_dir=args.out, stamp=stamp)
        print(f"wrote {profile_path}", file=sys.stderr)
    else:
        doc = bench.collect(rounds=args.rounds, trace_memory=args.mem)
        path = bench.write_baseline(doc, out_dir=args.out)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(format_table(
            [{"name": r["name"], "metric": r["metric"],
              "value": f"{r['value']:.1f}", "unit": r["unit"],
              "wall_s": f"{r['wall_s']:.3f}"}
             for r in doc["results"]],
            ["name", "metric", "value", "unit", "wall_s"],
            title=f"benchmark baseline (rounds={doc['rounds']}, "
                  f"sanitize={doc['sanitize']})",
        ))
    print(f"wrote {path}", file=sys.stderr)
    return 0


def _cmd_lint(args) -> int:
    from repro.lint.registry import run_all, targets

    if args.system:
        known = [t.name for t in targets()]
        unknown = [name for name in args.system if name not in known]
        if unknown:
            print(f"error: unknown system(s) {', '.join(unknown)}; "
                  f"choose from: {', '.join(known)}", file=sys.stderr)
            return 2

    report = run_all(
        max_states=args.max_states,
        include_dynamic=not args.skip_dynamic,
        only=args.system,
    )
    if args.json:
        print(report.to_json())
    else:
        for finding in report:
            print(repr(finding))
        print(report.summary_line())
    return 0 if report.ok(strict=args.strict) else 1


def _cmd_fabric(args) -> int:
    import json
    import time
    import zlib

    from repro.fabric import TokenFabric
    from repro.workload.keyed import ClosedLoopKeyedWorkload

    fabric = TokenFabric(seed=args.seed)
    config = ProtocolConfig(idle_pause=args.idle_pause)
    width = len(str(max(args.keys - 1, 0)))
    for k in range(args.keys):
        fabric.add_key(f"lock/{k:0{width}d}", protocol=args.protocol,
                       n=args.ring, config=config)
    clients = (args.clients if args.clients is not None
               else max(4, (args.keys * 12) // 5))
    grants_target = (args.grants if args.grants is not None
                     else args.keys * 25)
    fabric.add_workload(ClosedLoopKeyedWorkload(
        clients=clients, think_time=args.think_time, s=args.zipf_s))
    start = time.perf_counter()
    fabric.run(grants=grants_target)
    wall = time.perf_counter() - start

    metrics = fabric.metrics
    lane_crc = 0
    for stat in metrics.stats:
        lane_crc = zlib.crc32(b"%d|" % stat.grants, lane_crc)
    # Same counters the fabric_10k bench pins; folded to one hex word so a
    # CI job can carry the pin as a single --expect-checksum argument.
    counters = {
        "keys": args.keys,
        "events": fabric.executed_total,
        "messages": fabric.sent_total,
        "grants": metrics.total_grants,
        "requests": metrics.total_requests,
        "p50_us": round(metrics.percentile(50.0) * 1e6),
        "p99_us": round(metrics.percentile(99.0) * 1e6),
        "lane_grants_crc": f"{lane_crc & 0xFFFFFFFF:08x}",
    }
    blob = json.dumps(counters, sort_keys=True).encode("utf-8")
    checksum = f"{zlib.crc32(blob):08x}"

    if args.json:
        print(json.dumps({
            "checksum": checksum, "counters": counters, "wall_s": wall,
            "events_per_second": (fabric.executed_total / wall
                                  if wall > 0 else 0.0),
            "summary": metrics.summary(),
        }, indent=2, sort_keys=True))
    else:
        print(format_table(
            [{"key": stat.key, "grants": stat.grants,
              "requests": stat.requests,
              "mean_resp": f"{stat.mean_responsiveness:.2f}",
              "max_resp": f"{stat.resp_max:.2f}",
              "mean_wait": f"{stat.mean_wait:.2f}"}
             for stat in metrics.hottest(args.top)],
            ["key", "grants", "requests", "mean_resp", "max_resp",
             "mean_wait"],
            title=(f"hottest {args.top} of {args.keys} keys | "
                   f"{args.protocol} x{args.ring} clients={clients} "
                   f"zipf_s={args.zipf_s:g}"),
        ))
        print(f"grants={metrics.total_grants} "
              f"requests={metrics.total_requests} "
              f"events={fabric.executed_total} "
              f"messages={fabric.sent_total} "
              f"p50={metrics.percentile(50.0):.3f} "
              f"p99={metrics.percentile(99.0):.3f}")
        print(f"wall={wall:.3f}s "
              f"({fabric.executed_total / wall if wall > 0 else 0.0:,.0f} "
              f"events/s) checksum={checksum}")

    if args.expect_checksum is not None:
        if checksum != args.expect_checksum.lower():
            print(f"checksum MISMATCH: expected {args.expect_checksum}, "
                  f"got {checksum}", file=sys.stderr)
            return 1
        print("checksum pinned: ok")
    return 0


def _cmd_fuzz(args) -> int:
    import os

    from repro.fuzz import FuzzCase, fuzz_run, run_case, shrink

    if args.replay:
        case, recorded = FuzzCase.load(args.replay)
        result = run_case(case)
        status = "ok" if result.ok else \
            f"VIOLATION {result.violation.get('invariant')}"
        print(f"replay {args.replay}: {status} "
              f"checksum={result.checksum} events={result.events}")
        if recorded is None:
            return 0 if result.ok else 1
        if result.matches(recorded):
            print("recorded outcome reproduced exactly")
            return 0
        print(f"MISMATCH: recorded {recorded}, got {result.outcome()}",
              file=sys.stderr)
        return 1

    failures = []

    def _capture(index, case, result):
        label = case.label or case.kind
        if result.ok:
            print(f"  run {index:3d} {label:32s} ok  "
                  f"checksum={result.checksum} events={result.events}")
            return
        print(f"  run {index:3d} {label:32s} VIOLATION "
              f"{result.violation.get('invariant')}")
        final_case, final_result = case, result
        if args.shrink:
            final_case, final_result, attempts = shrink(case, result)
            print(f"    shrunk to {final_case.event_count()} schedule "
                  f"events (n={final_case.n}) in {attempts} attempts")
        os.makedirs(args.out, exist_ok=True)
        path = os.path.join(args.out, f"case-{args.seed}-{index}.json")
        final_case.save(path, outcome=final_result.outcome())
        failures.append((index, final_result.violation, path))
        print(f"    counterexample written to {path}")

    print(f"fuzz: seed={args.seed} runs={args.runs} profile={args.profile}")
    summaries = fuzz_run(args.seed, args.runs, args.profile,
                         on_result=_capture)
    ok = sum(1 for s in summaries if s["ok"])
    print(f"{ok}/{len(summaries)} runs clean")
    for index, violation, path in failures:
        print(f"  run {index}: {violation.get('invariant')} -> {path}",
              file=sys.stderr)
    return 0 if not failures else 1


def _cmd_stabilize(args) -> int:
    import os

    from repro.fuzz import fuzz_run, shrink

    if args.measure is not None:
        from repro.faults.corruption import CORRUPTION_KINDS
        from repro.stabilize import measure_convergence

        n = args.measure
        corruptions = [
            (CORRUPTION_KINDS[i % len(CORRUPTION_KINDS)],
             (i * 3 + 1) % n, args.seed + i * 17)
            for i in range(args.episodes)
        ]
        doc = measure_convergence(n, corruptions, seed=args.seed)
        print(f"stabilize measure: n={n} episodes={doc['episodes']} "
              f"bound={doc['bound']:.1f}")
        print(f"  stabilization_time p50={doc['stabilization_p50']:.2f} "
              f"p99={doc['stabilization_p99']:.2f} "
              f"max={doc['max_stabilization_time']:.2f} "
              f"grants={doc['grants']}")
        return 0

    failures = []

    def _capture(index, case, result):
        if result.ok:
            stab = result.stabilization or {}
            print(f"  run {index:3d} {case.label:20s} ok  "
                  f"episodes={stab.get('episodes', 0):.0f} "
                  f"stabilization_p99={stab.get('stabilization_p99', 0):.2f}")
            return
        print(f"  run {index:3d} {case.label:20s} VIOLATION "
              f"{result.violation.get('invariant')}")
        final_case, final_result = case, result
        if args.shrink:
            final_case, final_result, attempts = shrink(case, result)
            print(f"    shrunk to {final_case.event_count()} schedule "
                  f"events (n={final_case.n}) in {attempts} attempts")
        os.makedirs(args.out, exist_ok=True)
        path = os.path.join(args.out, f"stabilize-{args.seed}-{index}.json")
        final_case.save(path, outcome=final_result.outcome())
        failures.append((index, final_result.violation, path))
        print(f"    counterexample written to {path}")

    print(f"stabilize: seed={args.seed} runs={args.runs}")
    summaries = fuzz_run(args.seed, args.runs, "stabilize",
                         on_result=_capture)
    ok = sum(1 for s in summaries if s["ok"])
    print(f"{ok}/{len(summaries)} runs converged")
    for index, violation, path in failures:
        print(f"  run {index}: {violation.get('invariant')} -> {path}",
              file=sys.stderr)
    return 0 if not failures else 1


def _cmd_verify(args) -> int:
    import json as _json

    from repro.errors import VerifyError
    from repro.trs.engine import Rewriter
    from repro.trs.rules import RuleContext
    from repro.verify import (IndependenceRelation, certify, check_verdict,
                              get_system, validate_dpor, validate_relation,
                              write_verdict)

    quiet = args.json

    def say(msg: str) -> None:
        if not quiet:
            print(msg)

    if args.check:
        reports = []
        failed = False
        for path in args.check:
            try:
                reports.append(check_verdict(path, recompute=args.recompute))
                say(f"{path}: signature ok"
                    + (", recomputation ok" if args.recompute else ""))
            except (VerifyError, OSError) as exc:
                failed = True
                reports.append({"path": path, "error": str(exc)})
                print(f"{path}: FAILED: {exc}", file=sys.stderr)
        if args.json:
            print(_json.dumps(reports, indent=2, sort_keys=True))
        return 1 if failed else 0

    try:
        system = get_system(args.system)
    except VerifyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    prop_names = args.properties or list(system.properties)

    report = {"system": system.key, "title": system.title}
    n = system.default_n
    rules = system.bounded(n)
    initial = system.initial(n)
    rewriter = Rewriter(rules, RuleContext())
    relation = IndependenceRelation(rules)
    report["independence"] = relation.summary()
    say(f"{system.title}: independence relation "
        f"{report['independence']}")

    violations, checks = validate_relation(rewriter, relation, initial)
    report["diamond"] = {"checks": checks, "violations": len(violations)}
    say(f"  diamond validation: {checks} commutation checks, "
        f"{len(violations)} violation(s)")
    for violation in violations[:5]:
        print(f"    {violation['rule_a']} vs {violation['rule_b']}: "
              f"{violation['reason']}", file=sys.stderr)

    dpor = validate_dpor(rewriter, initial, max_states=args.max_states,
                         relation=relation)
    report["dpor_self_check"] = dpor
    say(f"  sleep DPOR at n={n}: {dpor['dpor_states']} states / "
        f"{dpor['dpor_executed']} executed vs full "
        f"{dpor['full_states']} / {dpor['full_transitions']} "
        f"(exact={dpor['exact']})")

    verdicts = []
    failed = bool(violations) or not dpor["exact"]
    for prop_name in prop_names:
        try:
            say(f"  certifying {prop_name!r}:")
            verdict = certify(system.key, prop_name,
                              max_states=args.max_states, log=say)
        except VerifyError as exc:
            failed = True
            verdicts.append({"property": prop_name, "error": str(exc)})
            print(f"  {prop_name}: FAILED: {exc}", file=sys.stderr)
            continue
        verdicts.append(verdict)
        if verdict["result"] != "verified":
            failed = True
        say(f"  {prop_name}: {verdict['result']} "
            f"(cutoff {verdict['cutoff']}, "
            f"{sum(r['states'] for r in verdict['runs'])} states total)")
        if args.out:
            path = write_verdict(verdict, args.out)
            say(f"    verdict written to {path}")
    report["verdicts"] = verdicts

    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
    return 1 if (failed and args.strict) else (1 if violations else 0)


def _cmd_chaos(args) -> int:
    import os

    from repro.aio.chaos import ChaosCase, chaos_run, run_chaos_case

    if args.replay:
        case, recorded = ChaosCase.load(args.replay)
        result = run_chaos_case(case)
        status = "ok" if result.ok else \
            f"VIOLATION {result.violation.get('invariant')}"
        if result.unrecovered:
            status += f" unrecovered={len(result.unrecovered)}"
        print(f"replay {args.replay}: {status} "
              f"checksum={result.checksum} grants={result.grants}")
        if recorded is None:
            return 0 if result.ok and not result.unrecovered else 1
        if result.matches(recorded):
            print("recorded outcome reproduced exactly")
            return 0
        print(f"MISMATCH: recorded {recorded}, got {result.outcome()}",
              file=sys.stderr)
        return 1

    failures = []

    def _capture(index, case, result):
        clean = result.ok and not result.unrecovered
        if clean:
            print(f"  run {index:3d} {case.label:32s} ok  "
                  f"checksum={result.checksum} grants={result.grants} "
                  f"restarts={result.restarts} max_wait={result.max_wait:.2f}")
            return
        what = (result.violation.get("invariant")
                if result.violation is not None
                else f"{len(result.unrecovered)} acquire(s) past the "
                     f"recovery window")
        print(f"  run {index:3d} {case.label:32s} FAILED {what}")
        os.makedirs(args.out, exist_ok=True)
        path = os.path.join(args.out, f"case-{args.seed}-{index}.json")
        case.save(path, outcome=result.outcome())
        failures.append((index, what, path))
        print(f"    counterexample written to {path}")

    print(f"chaos: seed={args.seed} runs={args.runs} profile={args.profile}")
    chaos_run(args.seed, args.runs, args.profile, on_result=_capture)
    clean = args.runs - len(failures)
    print(f"{clean}/{args.runs} scenarios clean")
    for index, what, path in failures:
        print(f"  run {index}: {what} -> {path}", file=sys.stderr)
    return 0 if not failures else 1


def _cmd_serve(args) -> int:
    import asyncio

    from repro.aio.cluster import AioCluster
    from repro.aio.reliability import ReliabilityConfig
    from repro.aio.supervisor import ClusterSupervisor
    from repro.wire.server import LockServiceServer
    from repro.wire.smoke import service_config
    from repro.wire.transport import WireTransport

    async def _serve() -> None:
        import random

        transport = WireTransport(delay=args.delay,
                                  loss_rate=args.loss_rate,
                                  rng=random.Random(args.seed ^ 0x5EED))
        cluster = AioCluster(
            args.protocol, args.nodes, seed=args.seed,
            config=service_config(args.protocol),
            transport=transport,
            reliability=(ReliabilityConfig() if args.reliability else None),
        )
        supervisor = ClusterSupervisor(cluster) if args.supervise else None
        server = LockServiceServer(cluster, host=args.host, port=args.port)
        await server.start()
        if supervisor is not None:
            await supervisor.start()
        print(f"lock service: {args.protocol} x{args.nodes} on "
              f"{server.address} (delay={args.delay:g}s, "
              f"reliability={'on' if args.reliability else 'off'}, "
              f"supervision={'on' if supervisor else 'off'})")
        print("Ctrl-C to stop")
        try:
            await asyncio.Event().wait()
        finally:
            if supervisor is not None:
                await supervisor.stop()
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\nstopped")
    return 0


def _cmd_loadgen(args) -> int:
    import asyncio
    import json

    from repro.wire.client import LoadGenerator

    async def _drive():
        generator = LoadGenerator(args.host, args.port, seed=args.seed,
                                  acquire_timeout=args.timeout)
        if args.mode == "closed":
            return await generator.run_closed_loop(
                args.clients, args.ops,
                think_time=args.think_time, hold_time=args.hold_time)
        return await generator.run_open_loop(
            args.mean_interval, args.ops,
            n=args.spread_nodes, hold_time=args.hold_time)

    try:
        report = asyncio.run(_drive())
    except (ConnectionError, OSError) as exc:
        print(f"error: cannot reach {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    doc = report.as_dict()
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(format_table(
            [{"field": key, "value": value} for key, value in doc.items()
             if key != "error_samples"],
            ["field", "value"],
            title=f"{args.mode}-loop load vs {args.host}:{args.port}",
        ))
        for sample in doc["error_samples"]:
            print(f"  error: {sample}", file=sys.stderr)
    return 0 if report.errors == 0 and report.failures == 0 else 1


def _cmd_wire_smoke(args) -> int:
    import json

    from repro.wire.smoke import run_wire_smoke, save_report

    report = run_wire_smoke(
        n=args.nodes, ops=args.ops, clients=args.clients,
        protocol=args.protocol, seed=args.seed, delay=args.delay,
        loss_rate=args.loss_rate, p99_budget=args.p99_budget,
    )
    if args.out:
        save_report(report, args.out)
        print(f"report written to {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        load = report["load"]
        print(f"wire-smoke: {report['protocol']} x{report['n']} "
              f"ops={report['ops']} -> grants={load['grants']} "
              f"failures={load['failures']} errors={load['errors']}")
        print(f"  wait p50={load['wait_p50_ms']:.2f}ms "
              f"p99={load['wait_p99_ms']:.2f}ms "
              f"max={load['wait_max_ms']:.2f}ms "
              f"({load['throughput_ops_s']:.0f} ops/s over "
              f"{load['duration_s']:.2f}s)")
        wire = report["wire"]
        print(f"  wire frames tx/rx={wire['frames_sent']}/"
              f"{wire['frames_received']} "
              f"bytes tx/rx={wire['bytes_sent']}/{wire['bytes_received']} "
              f"connects={wire['connects']} resets={wire['resets']}")
        if report["oracle_violation"] is not None:
            violation = report["oracle_violation"]
            print(f"  ORACLE VIOLATION {violation['invariant']}: "
                  f"{violation['detail']}", file=sys.stderr)
        print(f"  ok={report['ok']}")
    return 0 if report["ok"] else 1


_COMMANDS = {
    "simulate": _cmd_simulate,
    "compare": _cmd_compare,
    "figure9": _cmd_figure9,
    "figure10": _cmd_figure10,
    "ablations": _cmd_ablations,
    "refinement": _cmd_refinement,
    "report": _cmd_report,
    "lint": _cmd_lint,
    "bench": _cmd_bench,
    "fabric": _cmd_fabric,
    "fuzz": _cmd_fuzz,
    "stabilize": _cmd_stabilize,
    "verify": _cmd_verify,
    "chaos": _cmd_chaos,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "wire-smoke": _cmd_wire_smoke,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
