"""Cluster-shaped facade over the compiled engine.

``FastCluster`` exposes the subset of :class:`repro.core.cluster.Cluster`
that benchmarks, experiments and the differential tests use — ``build``,
``add_workload``, ``request``/``request_at``, ``run``, and the metrics
accessors — backed by :func:`repro.fastsim.compiled.compile_engine`
instead of the object driver stack.  Construction validates the
configuration against the fast path's support matrix and raises
:class:`~repro.errors.FastSimUnsupportedError` for anything outside it.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import ProtocolConfig
from repro.errors import ConfigError, FastSimUnsupportedError
from repro.fastsim.compiled import compile_engine
from repro.fastsim.state import ArrayState, unsupported_reason
from repro.metrics.responsiveness import ResponsivenessTracker
from repro.sim.network import DelayModel
from repro.workload.generators import FixedRateWorkload, SingleShotWorkload

__all__ = ["FastCluster"]


class FastCluster:
    """N array-compiled protocol nodes over a fused network/event loop."""

    def __init__(
        self,
        protocol: str,
        n: int,
        seed: int = 0,
        config: Optional[ProtocolConfig] = None,
        delay: Optional[DelayModel] = None,
        loss_rate: float = 0.0,
        dup_rate: float = 0.0,
        digest: bool = False,
        sanitize: Optional[bool] = None,  # accepted for drop-in calls; the
        track_fairness: bool = False,     # fast path has neither subsystem
    ) -> None:
        if n < 1:
            raise ConfigError(f"n must be >= 1, got {n}")
        if track_fairness:
            raise FastSimUnsupportedError(
                "fairness auditing is not wired into the fast path")
        self.config = config if config is not None else ProtocolConfig()
        self.config.n = n
        self.config.validate()
        reason = unsupported_reason(protocol, self.config, delay)
        if reason is not None:
            raise FastSimUnsupportedError(reason)
        self.protocol = protocol
        self.n = n
        self.state = ArrayState(protocol, n, self.config, seed=seed,
                                delay=delay, loss_rate=loss_rate,
                                dup_rate=dup_rate, digest=digest)
        self.engine = compile_engine(self.state)
        self._responsiveness: Optional[ResponsivenessTracker] = None

    @classmethod
    def build(cls, protocol: str, n: int, **kwargs: object) -> "FastCluster":
        """Mirror of ``Cluster.build`` (protocol name + keyword config)."""
        return cls(protocol, n, **kwargs)  # type: ignore[arg-type]

    # -- public API ---------------------------------------------------------

    def add_workload(self, workload: object) -> None:
        """Attach a workload generator.

        Only the generators the fast path replicates draw-for-draw are
        accepted; others raise :class:`FastSimUnsupportedError`.
        """
        if isinstance(workload, FixedRateWorkload):
            self.engine.add_fixed_rate(workload.mean_interval)
        elif isinstance(workload, SingleShotWorkload):
            for time, node in workload.events:
                self.engine.request_at(time, node)
        else:
            raise FastSimUnsupportedError(
                f"workload {type(workload).__name__} is not compiled; "
                f"use the object Cluster")

    def request(self, node: int) -> None:
        """Make ``node`` ready immediately (same semantics as Cluster)."""
        self.engine.request(node)

    def request_at(self, time: float, node: int) -> None:
        """Schedule a request at an absolute simulation time."""
        self.engine.request_at(time, node)

    def run(
        self,
        rounds: Optional[int] = None,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        grants: Optional[int] = None,
    ) -> None:
        """Run until any bound is hit; see ``Cluster.run``."""
        self.engine.run(rounds=rounds, until=until, max_events=max_events,
                        grants=grants)
        self.engine.sync()
        self._responsiveness = None  # applog grew; rebuild lazily

    def start(self) -> None:
        """Start the nodes (idempotent); ``run`` calls this implicitly."""
        self.engine.start()

    # -- metrics ------------------------------------------------------------

    @property
    def responsiveness(self) -> ResponsivenessTracker:
        """Definition-3 tracker, rebuilt from the applog on demand.

        The compiled loop records ``(kind, node, req_seq, time)`` tuples
        instead of calling the tracker inline (a method call per request
        would cost more than the whole dispatch); replaying them through a
        real tracker afterwards yields the identical sample stream because
        the applog preserves event order.
        """
        if self._responsiveness is None:
            tracker = ResponsivenessTracker()
            for kind, node, req_seq, time in self.state.applog:
                if kind == 0:
                    tracker.on_request(node, req_seq, time)
                else:
                    tracker.on_grant(node, req_seq, time)
            self._responsiveness = tracker
        return self._responsiveness

    @property
    def executed_total(self) -> int:
        """Kernel events executed (mirrors ``sim.executed_total``)."""
        return self.state.executed_total

    @property
    def sent_total(self) -> int:
        """Messages sent (mirrors ``cluster.messages.total``)."""
        return self.state.sent_total

    @property
    def sent_by_type(self) -> dict:
        """Send counts per message type (zero counts omitted, like the
        object cluster's counter, which only knows types it has seen)."""
        return {k: v for k, v in self.state.sent_by_type.items() if v}

    @property
    def rounds(self) -> int:
        """Completed token circulations (from the visit clock)."""
        return self.state.rounds_seen

    @property
    def grants(self) -> int:
        """Requests satisfied."""
        return self.state.grants_count

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.state.now

    @property
    def send_checksum(self) -> str:
        """CRC32 over the send stream (requires ``digest=True``)."""
        if not self.state.digest:
            raise FastSimUnsupportedError(
                "send_checksum needs digest=True at construction")
        return f"{self.state.send_crc & 0xFFFFFFFF:08x}"
