"""The array-compiled event loop.

One generated closure replaces the whole object stack for a run:
``Simulator.run`` + ``NodeDriver._apply`` + ``Network.send`` + the
per-node core handlers collapse into a single dispatch loop over plain
tuples.  Everything hot is a closure cell or a loop local — no attribute
lookups, no effect lists, no message/handle allocation.

Event calendar
--------------

Entries are plain tuples ``(time, seq, tag, ...)``; ``seq`` mirrors the
kernel's global sequence counter, so ``(time, seq)`` reproduces the
kernel heap's ``(time, priority, seq)`` order exactly (every event in
the supported configurations uses priority 0).  Deliveries under the
constant-delay model go to a **deque**: constant latency means send
order equals delivery order, so the queue is already sorted and a
heap push/pop per message is wasted work.  Timers, workload ticks and
scheduled requests (and all deliveries under non-constant delay models)
use a conventional heap; the loop merges the two heads, comparing times
first and falling back to a full tuple comparison only on a tie.

Served-carry interning
----------------------

Under rotation GC the hot cost is merging served piggybacks.  Every
carry tuple the engine produces is *interned* (one canonical object per
value), so the merge memo can be keyed by ``(id(served), id(base))`` —
two integer hashes instead of hashing 8-16 pair tuples.  Because sends
ship carry objects by reference and merges resolve to interned outputs,
the same canonical objects meet again and again; most merges are
answered by the memo without building a dict or calling ``sorted``.

Both tables are **process-level** (module globals), not per-engine:
merging is value-pure, so canonical objects and memo entries computed by
one run answer for every later run in the process.  Benchmark repeats
and sharded workers therefore run with a warm cache.  Memo entries keep
``(served, base, out)`` alive, so the id-based keys stay valid exactly
as long as the entry exists, independent of intern-table eviction; the
memo is additionally partitioned by piggyback width, since the trim in
the merge makes the result depend on it.

Behavioural mirroring
---------------------

The loop replicates, exactly:

- the kernel's run semantics — ``until`` is checked against the *peeked*
  head (clock then advances to ``until`` without popping), drained queues
  advance the clock to ``until``, and cancelled timers are skipped
  without counting as executed (forward timers carry a generation stamp;
  a stale generation is the cancelled case);
- ``Cluster.run``'s chunked budget loop (rounds/grants bounds are only
  checked between chunks of ``max(64, n // 8 * 10)`` events);
- the global seq-allocation order of sends and timers, including the
  effect-list ordering inside each handler;
- the shared-RNG draw order: workload draws (gap at bind; node then next
  gap per tick) and network draws (loss/dup only for unreliable
  messages, dup copy scheduled before the original, one delay sample per
  scheduled copy under non-constant delay models).

With ``state.digest`` on, every send feeds the same
``"{now:.6f}|{src}|{dst}|{msg!r}"`` CRC32 stream the fuzz harness
records, reconstructing the frozen-dataclass reprs field for field — so
a fast replay of a corpus case must reproduce the committed checksum.
"""

from __future__ import annotations

import gc
import heapq
import zlib
from collections import deque
from typing import Optional

from repro.errors import ProtocolError, SimulationError
from repro.fastsim.state import (TAG_FWD, TAG_GIMME, TAG_LOAN,
                                 TAG_LOAN_RETURN, TAG_REL, TAG_REQUEST,
                                 TAG_RETRY, TAG_TOKEN, TAG_WORKLOAD,
                                 ArrayState)

__all__ = ["Engine", "compile_engine"]

_INF = float("inf")
#: Each table is cleared independently past this size; correctness does
#: not depend on retention (a miss just recomputes).
_MEMO_LIMIT = 1 << 16

#: Process-level canonical carry tuples: value -> the one object used
#: for that value everywhere.  Seeded with the empty carry.
_INTERN: dict = {(): ()}
#: Process-level merge memos, one per piggyback width:
#: pb -> {(id(served), id(base)): (served, base, out)}.
_MEMO_BY_PB: dict = {}
#: Process-level {z: seq} dict views of canonical carries, keyed by
#: identity: id(carry) -> (carry, view).  Every carry in circulation is
#: interned, so each view is built once per process instead of once per
#: node per carry change; the value keeps the carry alive, so the id
#: key stays valid as long as the entry exists.  Views are read-only.
_VIEWS: dict = {}


class Engine:
    """Handle to one compiled run loop (see :func:`compile_engine`)."""

    __slots__ = ("state", "run", "start", "request", "request_at",
                 "add_fixed_rate", "sync")

    def __init__(self, state, run, start, request, request_at,
                 add_fixed_rate, sync):
        self.state = state
        self.run = run
        self.start = start
        self.request = request
        self.request_at = request_at
        self.add_fixed_rate = add_fixed_rate
        self.sync = sync


def compile_engine(st: ArrayState) -> Engine:
    """Close the dispatch loop over ``st``'s columns and return it."""
    n = st.n
    is_bs = st.is_bs
    rotation = st.rotation
    inverse = st.inverse
    config = st.config
    piggyback = config.served_piggyback
    single_outstanding = config.single_outstanding
    throttle = config.forward_throttle
    idle_pause = config.idle_pause
    service_time = config.service_time
    retry_timeout = config.retry_timeout

    rng = st.rng
    rng_random = rng.random
    rng_expovariate = rng.expovariate
    # randrange(n) is validation + _randbelow(n); calling _randbelow
    # directly draws the identical stream without re-validating the
    # constant bound every workload tick.
    _randbelow = rng._randbelow
    loss_rate = st.loss_rate
    dup_rate = st.dup_rate
    use_dq = st.use_dq
    const_delay = st.delay.delay if use_dq else 0.0
    sample = st.delay.sample
    digest_on = st.digest

    # Columns (shared with st by reference).
    has_token = st.has_token
    ready = st.ready
    outstanding = st.outstanding
    parked = st.parked
    serving = st.serving
    demand_seen = st.demand_seen
    gimme_inflight = st.gimme_inflight
    clock = st.clock
    round_no = st.round_no
    req_seq = st.req_seq
    last_visit = st.last_visit
    granted_seq = st.granted_seq
    fwd_gen = st.fwd_gen
    waiting = st.waiting
    lent_to = st.lent_to
    carry = st.carry
    traps = st.traps
    trap_latest = st.trap_latest
    trap_minclk = st.trap_minclk
    gc_clean = st.gc_clean
    gimme_queue = st.gimme_queue
    loan_pending = st.loan_pending
    applog_append = st.applog.append

    # Scalar run state (flushed back to st by sync()).
    now = st.now
    seq = st.seq
    executed_total = st.executed_total
    sent_total = st.sent_total
    dropped = st.dropped_count
    sent_token = st.sent_by_type["TokenMsg"]
    sent_gimme = st.sent_by_type["GimmeMsg"]
    sent_loan = st.sent_by_type["LoanMsg"]
    sent_ret = st.sent_by_type["LoanReturnMsg"]
    grants_count = st.grants_count
    rounds_seen = st.rounds_seen
    crc = st.send_crc
    started = False

    heap: list = []
    dq: deque = deque()
    heappush = heapq.heappush
    heappop = heapq.heappop
    crc32 = zlib.crc32

    intern_tab = _INTERN
    merge_memo = _MEMO_BY_PB.get(piggyback)
    if merge_memo is None:
        _MEMO_BY_PB[piggyback] = merge_memo = {}
    memo_get = merge_memo.get
    views = _VIEWS
    views_get = views.get

    def view(c):
        """The {z: seq} dict view of a canonical carry (cached by id)."""
        e = views_get(id(c))
        if e is None:
            if len(views) > _MEMO_LIMIT:
                views.clear()
            views[id(c)] = e = (c, dict(c))
        return e[1]

    # -- send paths (network.send + kernel.post, fused) --------------------

    def send_token(src, dst, clk, rnd, served):
        nonlocal seq, sent_total, sent_token, crc
        sent_total += 1
        sent_token += 1
        if digest_on:
            crc = crc32(
                (f"{now:.6f}|{src}|{dst}|TokenMsg(clock={clk}, "
                 f"round_no={rnd}, served={served!r}, membership=None, "
                 f"epoch=0, suspects=())").encode("utf-8"), crc)
        if use_dq:
            dq.append((now + const_delay, seq, TAG_TOKEN, dst, clk, rnd,
                       served))
        else:
            heappush(heap, (now + sample(rng, src, dst), seq, TAG_TOKEN,
                            dst, clk, rnd, served))
        seq += 1

    def send_loan(src, dst, clk, rnd, lender, requester, rseq, served,
                  trail):
        nonlocal seq, sent_total, sent_loan, crc
        sent_total += 1
        sent_loan += 1
        if digest_on:
            crc = crc32(
                (f"{now:.6f}|{src}|{dst}|LoanMsg(clock={clk}, "
                 f"round_no={rnd}, lender={lender}, requester={requester}, "
                 f"req_seq={rseq}, served={served!r}, trail={trail!r}, "
                 f"epoch=0)").encode("utf-8"), crc)
        if use_dq:
            dq.append((now + const_delay, seq, TAG_LOAN, dst, clk, rnd,
                       lender, requester, rseq, served, trail))
        else:
            heappush(heap, (now + sample(rng, src, dst), seq, TAG_LOAN, dst,
                            clk, rnd, lender, requester, rseq, served,
                            trail))
        seq += 1

    def send_loan_return(src, dst, clk, rnd, served):
        nonlocal seq, sent_total, sent_ret, crc
        sent_total += 1
        sent_ret += 1
        if digest_on:
            crc = crc32(
                (f"{now:.6f}|{src}|{dst}|LoanReturnMsg(clock={clk}, "
                 f"round_no={rnd}, served={served!r}, epoch=0)"
                 ).encode("utf-8"), crc)
        if use_dq:
            dq.append((now + const_delay, seq, TAG_LOAN_RETURN, dst, served))
        else:
            heappush(heap, (now + sample(rng, src, dst), seq,
                            TAG_LOAN_RETURN, dst, served))
        seq += 1

    def send_gimme(src, dst, requester, rseq, span, vstamp, trail):
        # The one unreliable message: loss/dup draws happen here, in the
        # network's order (loss, dup, then one delay sample per copy).
        nonlocal seq, sent_total, sent_gimme, dropped, crc
        sent_total += 1
        sent_gimme += 1
        if digest_on:
            crc = crc32(
                (f"{now:.6f}|{src}|{dst}|GimmeMsg(requester={requester}, "
                 f"req_seq={rseq}, span={span}, visit_stamp={vstamp}, "
                 f"trail={trail!r})").encode("utf-8"), crc)
        if loss_rate and rng_random() < loss_rate:
            dropped += 1
            return
        if dup_rate and rng_random() < dup_rate:
            if use_dq:
                dq.append((now + const_delay, seq, TAG_GIMME, dst, requester,
                           rseq, span, vstamp, trail))
            else:
                heappush(heap, (now + sample(rng, src, dst), seq, TAG_GIMME,
                                dst, requester, rseq, span, vstamp, trail))
            seq += 1
        if use_dq:
            dq.append((now + const_delay, seq, TAG_GIMME, dst, requester,
                       rseq, span, vstamp, trail))
        else:
            heappush(heap, (now + sample(rng, src, dst), seq, TAG_GIMME,
                            dst, requester, rseq, span, vstamp, trail))
        seq += 1

    # -- served bookkeeping (binary search, rotation GC) -------------------
    #
    # The carry's {node: seq} dict view is identity-cached per node
    # (rebuilt only when the carry object changed) and inlined at every
    # use site — returning a bound ``.get`` would allocate a method
    # object per probe.

    def record_served(node, z, s):
        if not rotation or piggyback == 0:
            return
        entries = [p for p in carry[node] if p[0] != z]
        entries.append((z, s))
        t = tuple(entries[-piggyback:])
        out = intern_tab.get(t)
        if out is None:
            if len(intern_tab) > _MEMO_LIMIT:
                intern_tab.clear()
                intern_tab[()] = ()
            intern_tab[t] = out = t
        carry[node] = out
        gc_clean[node] = 0

    def merge_miss(node, served, base):
        # Cold path of the merge: the arms answer memo hits inline.
        merged = dict(base)
        g = merged.get
        for z, s in served:
            if g(z, -1) < s:
                merged[z] = s
        entries = sorted(merged.items())
        if piggyback and len(entries) > piggyback:
            entries = entries[-piggyback:]
        t = tuple(entries)
        out = intern_tab.get(t)
        if out is None:
            intern_tab[t] = out = t
        if len(merge_memo) > _MEMO_LIMIT:
            merge_memo.clear()
        if len(intern_tab) > _MEMO_LIMIT:
            intern_tab.clear()
            intern_tab[()] = ()
            intern_tab[out] = out
        merge_memo[(id(served), id(base))] = (served, base, out)
        if out is not base:
            carry[node] = out
            gc_clean[node] = 0

    def gc_traps(node):
        # TrapStore.expire + drop_served fused into one conditional rebuild
        # (both are pure filters, so one pass with the conjunction yields
        # the same final queue).  Detection is O(|carry|) at worst: the
        # expiry half is answered by the conservative min-set_clock bound;
        # the served half by the gc_clean flag when nothing relevant
        # changed, else by probing the trap dict with the <=piggyback
        # carry keys (a hit needs the requester in both).  A false expiry
        # trigger just rebuilds an identical queue and tightens the bound.
        d = traps[node]
        stale = clock[node] - n
        if trap_minclk[node] > stale:
            if gc_clean[node]:
                return
            smap = view(carry[node])
            dget = d.get
            for z, s in smap.items():
                t = dget(z)
                if t is not None and s >= t[1]:
                    break
            else:
                gc_clean[node] = 1
                return
        else:
            smap = view(carry[node])
        nd = {}
        mn = _INF
        sget = smap.get
        for z, t in d.items():
            if t[2] > stale and sget(z, -1) < t[1]:
                nd[z] = t
                c2 = t[2]
                if c2 < mn:
                    mn = c2
        traps[node] = nd
        trap_minclk[node] = mn
        gc_clean[node] = 1

    # -- binary-search protocol steps --------------------------------------

    def next_loan(node):
        """Pop the next live trap and loan the token; True when loaned."""
        d = traps[node]
        smap = view(carry[node])
        sget = smap.get
        while d:
            z = next(iter(d))
            t = d.pop(z)
            if z == node:
                continue
            if sget(z, -1) >= t[1]:
                continue
            has_token[node] = 0
            lent_to[node] = z
            target = z
            trail = ()
            if inverse and t[3]:
                back = tuple(h for h in reversed(t[3])
                             if h != node and h != z)
                if back:
                    target = back[0]
                    trail = back[1:]
            send_loan(node, target, clock[node], round_no[node], node,
                      z, t[1], carry[node], trail)
            return True
        return False

    def forward_bs(node):
        if n == 1:
            return
        has_token[node] = 0
        demand_seen[node] = 0
        succ = node + 1
        if succ == n:
            succ = 0
        send_token(node, succ, clock[node] + 1,
                   round_no[node] + 1 if succ == 0 else round_no[node],
                   carry[node])

    def forward_ring(node):
        if n == 1:
            return
        has_token[node] = 0
        succ = node + 1
        if succ == n:
            succ = 0
        send_token(node, succ, clock[node] + 1,
                   round_no[node] + 1 if succ == 0 else round_no[node], ())

    def advance_bs(node):
        nonlocal seq, grants_count
        if serving[node] or not has_token[node]:
            return
        if ready[node]:
            ready[node] = 0
            outstanding[node] = 0
            s = req_seq[node]
            granted_seq[node] = s
            record_served(node, node, s)
            w = waiting[node]            # Deliver("granted") -> cluster
            if w >= 0:
                waiting[node] = -1
                applog_append((1, node, w, now))
                grants_count += 1
            if service_time > 0:
                serving[node] = 1
                heappush(heap, (now + service_time, seq, TAG_REL, node))
                seq += 1
                return
        if traps[node] and next_loan(node):
            return
        if idle_pause > 0 and not demand_seen[node]:
            parked[node] = 1
            heappush(heap, (now + idle_pause, seq, TAG_FWD, node,
                            fwd_gen[node]))
            seq += 1
            return
        forward_bs(node)

    def advance_ring(node):
        nonlocal seq, grants_count
        if serving[node]:
            return
        if ready[node]:
            ready[node] = 0
            s = req_seq[node]
            granted_seq[node] = s
            w = waiting[node]
            if w >= 0:
                waiting[node] = -1
                applog_append((1, node, w, now))
                grants_count += 1
            if service_time > 0:
                serving[node] = 1
                heappush(heap, (now + service_time, seq, TAG_REL, node))
                seq += 1
                return
        if idle_pause > 0:
            parked[node] = 1
            heappush(heap, (now + idle_pause, seq, TAG_FWD, node,
                            fwd_gen[node]))
            seq += 1
            return
        forward_ring(node)

    advance = advance_bs if is_bs else advance_ring

    def launch_search(node):
        nonlocal seq
        if n <= 1:
            return
        if outstanding[node] and single_outstanding:
            return
        outstanding[node] = 1
        gimme_inflight[node] = 1
        span = n // 2
        target = node + span
        if target >= n:
            target -= n
        send_gimme(node, target, node, req_seq[node], span,
                   last_visit[node], (node,))
        if retry_timeout > 0:
            heappush(heap, (now + retry_timeout, seq, TAG_RETRY, node,
                            req_seq[node]))
            seq += 1

    def on_gimme(node, requester, rseq, span, vstamp, trail):
        demand_seen[node] = 1
        if requester == node:
            return
        smap = view(carry[node])
        if smap.get(requester, -1) >= rseq:
            return
        # Trap it (both the holder and the relay branch do this first;
        # TrapStore.add inlined: the latest-seq gate, then an in-place
        # supersede — dict insertion order is the FIFO order).
        tl = trap_latest[node]
        known = tl.get(requester)
        if known is None or known < rseq:
            tl[requester] = rseq
            d = traps[node]
            slot = d.get(requester)
            if slot is not None:
                slot[1] = rseq
                slot[2] = vstamp
                slot[3] = trail
            else:
                d[requester] = [requester, rseq, vstamp, trail]
                gc_clean[node] = 0
            if vstamp < trap_minclk[node]:
                trap_minclk[node] = vstamp
        if has_token[node] or lent_to[node] >= 0:
            if has_token[node] and not serving[node]:
                if parked[node]:
                    parked[node] = 0
                    fwd_gen[node] += 1   # CancelTimer(forward)
                advance_bs(node)
            return
        half = span // 2
        if half < 1:
            return
        if throttle and gimme_inflight[node]:
            gimme_queue[node].append((requester, rseq, span, vstamp, trail))
            return
        if last_visit[node] < vstamp:
            target = node - half        # rule 6: token is behind us
            if target < 0:
                target += n
        else:
            target = node + half        # token is ahead (or unseen)
            if target >= n:
                target -= n
        if target == node or target == requester:
            return
        gimme_inflight[node] = 1
        send_gimme(node, target, requester, rseq, half, vstamp,
                   trail + (node,))

    def release_gimme_budget(node):
        # Slow path: callers have already cleared the inflight bit and
        # checked the holdback queue is non-empty.  The served view is
        # re-derived per message, as _is_served does — a grant inside
        # on_gimme's advance can change the carry mid-loop.
        queued = gimme_queue[node]
        gimme_queue[node] = []
        for idx, m in enumerate(queued):
            smap = view(carry[node])
            if smap.get(m[0], -1) >= m[1]:
                continue
            on_gimme(node, m[0], m[1], m[2], m[3], m[4])
            if gimme_inflight[node]:
                gimme_queue[node].extend(queued[idx + 1:])
                break

    # -- application entry points ------------------------------------------

    def handle_request(node):
        # Cluster.request + core.on_request, fused.
        if waiting[node] >= 0:
            return
        s = req_seq[node] + 1
        waiting[node] = s
        applog_append((0, node, s, now))
        ready[node] = 1
        req_seq[node] = s
        if is_bs:
            demand_seen[node] = 1
        if has_token[node] and not serving[node]:
            if parked[node]:
                parked[node] = 0
                fwd_gen[node] += 1       # CancelTimer(forward)
            advance(node)
        elif is_bs:
            if lent_to[node] >= 0:
                return                   # served when the loan returns
            launch_search(node)

    def request(node):
        if not 0 <= node < n:
            raise SimulationError(f"node {node} out of range")
        handle_request(node)

    def request_at(time, node):
        nonlocal seq
        heappush(heap, (time, seq, TAG_REQUEST, node))
        seq += 1

    def add_fixed_rate(mean_interval):
        # FixedRateWorkload.bind: draw the first gap immediately.
        nonlocal seq
        gap = rng_expovariate(1.0 / mean_interval)
        heappush(heap, (now + gap, seq, TAG_WORKLOAD, mean_interval))
        seq += 1

    def start():
        nonlocal started
        if started:
            return
        started = True
        # Only the initial holder (node 0) emits effects from on_start.
        advance(0)                       # token_visit at clock 0 is a no-op

    # -- the dispatch loop --------------------------------------------------

    def run(rounds: Optional[int] = None, until: Optional[float] = None,
            max_events: Optional[int] = None,
            grants: Optional[int] = None) -> None:
        nonlocal now, seq, executed_total, grants_count, rounds_seen
        nonlocal sent_total, sent_gimme, dropped, crc
        if rounds is None and until is None and max_events is None \
                and grants is None:
            raise SimulationError("run() needs at least one stopping bound")
        start()
        budget = max_events if max_events is not None else 200_000_000
        chunk = max(64, n // 8 * 10)
        until_bound = _INF if until is None else until
        # Allocation churn (calendar tuples, carries) with no cycles:
        # the generational collector only costs here, so park it.
        gc_was_on = gc.isenabled()
        if gc_was_on:
            gc.disable()
        try:
            _run_loop(rounds, until, grants, budget, chunk, until_bound)
        finally:
            if gc_was_on:
                gc.enable()

    def _run_loop(rounds, until, grants, budget, chunk, until_bound):
        nonlocal now, seq, executed_total, grants_count, rounds_seen
        nonlocal sent_total, sent_gimme, sent_loan, sent_ret, dropped, crc
        # Hot names re-bound as frame locals: the inner loop touches
        # these dozens of times per event and LOAD_FAST beats LOAD_DEREF.
        l_heap = heap
        l_dq = dq
        dq_popleft = dq.popleft
        dq_append = dq.append
        l_has_token = has_token
        l_ready = ready
        l_outstanding = outstanding
        l_serving = serving
        l_parked = parked
        l_demand = demand_seen
        l_inflight = gimme_inflight
        l_clock = clock
        l_round = round_no
        l_req_seq = req_seq
        l_last_visit = last_visit
        l_granted = granted_seq
        l_waiting = waiting
        l_lent = lent_to
        l_carry = carry
        l_vget = views_get
        l_view = view
        l_traps = traps
        l_latest = trap_latest
        l_minclk = trap_minclk
        l_clean = gc_clean
        l_gq = gimme_queue
        l_applog = applog_append
        l_memo_get = memo_get
        l_n = n
        l_rot = rotation
        l_bs = is_bs
        l_dqm = use_dq
        l_cd = const_delay
        l_dig = digest_on
        l_throttle = throttle
        l_service = service_time
        l_loss = loss_rate
        l_dup = dup_rate
        l_rand = rng_random
        l_pb = piggyback
        l_intern = intern_tab
        l_heappush = heappush
        l_heappop = heappop
        l_abs = advance_bs
        l_adv = advance
        l_gct = gc_traps
        l_mm = merge_miss
        l_ls = launch_search
        l_fbs = forward_bs
        l_fg = fwd_gen
        l_sample = sample
        l_expo = rng_expovariate
        l_rb = _randbelow
        l_crc32 = crc32
        l_lp = loan_pending
        l_rgb = release_gimme_budget
        l_hreq = handle_request
        l_slr = send_loan_return
        l_sl = send_loan
        while budget > 0:
            if rounds is not None and rounds_seen >= rounds:
                break
            if grants is not None and grants_count >= grants:
                break
            step = min(chunk, budget)
            executed = 0
            while executed < step:
                # Merge the deque and heap heads (peek before popping: an
                # entry beyond `until` must stay queued, clock moves to
                # `until` — kernel semantics).  Times decide almost
                # always; the full tuple comparison only breaks ties.
                if l_dq:
                    head = l_dq[0]
                    t = head[0]
                    if l_heap:
                        hh = l_heap[0]
                        ht = hh[0]
                        if ht < t or (ht == t and hh < head):
                            head = hh
                            t = ht
                            from_heap = True
                        else:
                            from_heap = False
                    else:
                        from_heap = False
                elif l_heap:
                    head = l_heap[0]
                    t = head[0]
                    from_heap = True
                else:
                    if until is not None and until > now:
                        now = until
                    break
                if t > until_bound:
                    now = until
                    break
                entry = l_heappop(l_heap) if from_heap else dq_popleft()
                tag = entry[2]
                # Arms ordered by delivery frequency on busy BS runs:
                # gimme, loan, loan-return, workload, token, then timers.
                # The gimme arm is on_gimme + send_gimme inlined (the
                # functions stay canonical for the throttle release
                # path); keep the two in sync.
                if tag == 1:
                    now = t
                    executed += 1
                    node = entry[3]
                    requester = entry[4]
                    l_demand[node] = 1
                    if requester == node:
                        continue
                    rseq = entry[5]
                    c = l_carry[node]
                    e = l_vget(id(c))
                    smap = e[1] if e is not None else l_view(c)
                    if smap.get(requester, -1) >= rseq:
                        continue
                    vstamp = entry[7]
                    tl = l_latest[node]
                    known = tl.get(requester)
                    if known is None or known < rseq:
                        tl[requester] = rseq
                        d = l_traps[node]
                        slot = d.get(requester)
                        if slot is not None:
                            slot[1] = rseq
                            slot[2] = vstamp
                            slot[3] = entry[8]
                        else:
                            d[requester] = [requester, rseq, vstamp,
                                            entry[8]]
                            l_clean[node] = 0
                        if vstamp < l_minclk[node]:
                            l_minclk[node] = vstamp
                    if l_has_token[node] or l_lent[node] >= 0:
                        if l_has_token[node] and not l_serving[node]:
                            if l_parked[node]:
                                l_parked[node] = 0
                                l_fg[node] += 1
                            l_abs(node)
                        continue
                    half = entry[6] // 2
                    if half < 1:
                        continue
                    if l_throttle and l_inflight[node]:
                        l_gq[node].append((requester, rseq, entry[6],
                                           vstamp, entry[8]))
                        continue
                    if l_last_visit[node] < vstamp:
                        target = node - half
                        if target < 0:
                            target += l_n
                    else:
                        target = node + half
                        if target >= l_n:
                            target -= l_n
                    if target == node or target == requester:
                        continue
                    l_inflight[node] = 1
                    trail = entry[8] + (node,)
                    sent_total += 1
                    sent_gimme += 1
                    if l_dig:
                        crc = l_crc32(
                            (f"{now:.6f}|{node}|{target}|GimmeMsg("
                             f"requester={requester}, req_seq={rseq}, "
                             f"span={half}, visit_stamp={vstamp}, "
                             f"trail={trail!r})").encode("utf-8"), crc)
                    if l_loss and l_rand() < l_loss:
                        dropped += 1
                        continue
                    if l_dup and l_rand() < l_dup:
                        if l_dqm:
                            dq_append((now + l_cd, seq, 1, target,
                                       requester, rseq, half, vstamp, trail))
                        else:
                            l_heappush(l_heap, (now + l_sample(rng, node,
                                                           target),
                                              seq, 1, target,
                                              requester, rseq, half, vstamp,
                                              trail))
                        seq += 1
                    if l_dqm:
                        dq_append((now + l_cd, seq, 1, target,
                                   requester, rseq, half, vstamp, trail))
                    else:
                        l_heappush(l_heap, (now + l_sample(rng, node, target),
                                          seq, 1, target, requester,
                                          rseq, half, vstamp, trail))
                    seq += 1
                elif tag == 2:
                    now = t
                    executed += 1
                    dst = entry[3]
                    requester = entry[7]
                    if requester != dst:
                        # Inverse-GC relay hop: clear our trap, pass along.
                        l_traps[dst].pop(requester, None)
                        trail = entry[10]
                        nxt = trail[0] if trail else requester
                        l_sl(dst, nxt, entry[4], entry[5], entry[6],
                                  requester, entry[8], entry[9], trail[1:])
                        continue
                    clk = entry[4]
                    rnd = entry[5]
                    lender = entry[6]
                    l_last_visit[dst] = clk
                    l_clock[dst] = clk
                    l_round[dst] = rnd
                    if l_rot:
                        served = entry[9]
                        base = l_carry[dst]
                        hit = l_memo_get((id(served), id(base)))
                        if hit is not None:
                            nc = hit[2]
                            if nc is not base:
                                l_carry[dst] = nc
                                l_clean[dst] = 0
                        else:
                            l_mm(dst, served, base)
                    if l_ready[dst]:
                        l_ready[dst] = 0
                        l_outstanding[dst] = 0
                        s = l_req_seq[dst]
                        l_granted[dst] = s
                        if l_rot and l_pb:       # record_served inlined
                            entries = [p for p in l_carry[dst]
                                       if p[0] != dst]
                            entries.append((dst, s))
                            tt = tuple(entries[-l_pb:])
                            out = l_intern.get(tt)
                            if out is None:
                                if len(l_intern) > _MEMO_LIMIT:
                                    l_intern.clear()
                                    l_intern[()] = ()
                                l_intern[tt] = out = tt
                            l_carry[dst] = out
                            l_clean[dst] = 0
                        w = l_waiting[dst]
                        if w >= 0:
                            l_waiting[dst] = -1
                            l_applog((1, dst, w, now))
                            grants_count += 1
                        if l_service > 0:
                            l_serving[dst] = 1
                            l_lp[dst] = (lender, l_carry[dst])
                            l_heappush(l_heap, (now + l_service, seq, 13,
                                              dst))
                            seq += 1
                            continue
                    # else: stale loan (served through rotation) — the
                    # return below bounces it straight back.
                    served = l_carry[dst]    # send_loan_return inlined
                    sent_total += 1
                    sent_ret += 1
                    if l_dig:
                        crc = l_crc32(
                            (f"{now:.6f}|{dst}|{lender}|LoanReturnMsg("
                             f"clock={clk}, round_no={rnd}, "
                             f"served={served!r}, epoch=0)"
                             ).encode("utf-8"), crc)
                    if l_dqm:
                        dq_append((now + l_cd, seq, 3, lender,
                                   served))
                    else:
                        l_heappush(l_heap, (now + l_sample(rng, dst, lender),
                                          seq, 3, lender,
                                          served))
                    seq += 1
                elif tag == 3:
                    now = t
                    executed += 1
                    dst = entry[3]
                    if l_lent[dst] < 0:
                        raise ProtocolError(
                            f"node {dst}: loan return without "
                            f"outstanding loan")
                    l_lent[dst] = -1
                    l_has_token[dst] = 1
                    if l_rot:
                        served = entry[4]
                        base = l_carry[dst]
                        hit = l_memo_get((id(served), id(base)))
                        if hit is not None:
                            nc = hit[2]
                            if nc is not base:
                                l_carry[dst] = nc
                                l_clean[dst] = 0
                        else:
                            l_mm(dst, served, base)
                        if l_traps[dst] and (
                                not l_clean[dst]
                                or l_minclk[dst] <= l_clock[dst] - l_n):
                            l_gct(dst)
                    l_inflight[dst] = 0      # release budget, fast path
                    if l_gq[dst]:
                        l_rgb(dst)
                    # advance_bs inlined (the lender holds the token again;
                    # the function stays canonical for the other callers).
                    if l_serving[dst]:
                        continue
                    if l_ready[dst]:
                        l_abs(dst)      # rare: lender wants it itself
                        continue
                    d = l_traps[dst]
                    if d:
                        # next_loan + send_loan inlined.
                        c = l_carry[dst]
                        e = l_vget(id(c))
                        smap = e[1] if e is not None else l_view(c)
                        sget = smap.get
                        loaned = False
                        while d:
                            z = next(iter(d))
                            tslot = d.pop(z)
                            if z == dst:
                                continue
                            if sget(z, -1) >= tslot[1]:
                                continue
                            l_has_token[dst] = 0
                            l_lent[dst] = z
                            target = z
                            trail = ()
                            if inverse and tslot[3]:
                                back = tuple(h for h in reversed(tslot[3])
                                             if h != dst and h != z)
                                if back:
                                    target = back[0]
                                    trail = back[1:]
                            clk = l_clock[dst]
                            rnd = l_round[dst]
                            rs = tslot[1]
                            sent_total += 1
                            sent_loan += 1
                            if l_dig:
                                crc = l_crc32(
                                    (f"{now:.6f}|{dst}|{target}|LoanMsg("
                                     f"clock={clk}, round_no={rnd}, "
                                     f"lender={dst}, requester={z}, "
                                     f"req_seq={rs}, served={c!r}, "
                                     f"trail={trail!r}, epoch=0)"
                                     ).encode("utf-8"), crc)
                            if l_dqm:
                                dq_append((now + l_cd, seq, 2,
                                           target, clk, rnd, dst, z, rs, c,
                                           trail))
                            else:
                                l_heappush(l_heap,
                                         (now + l_sample(rng, dst, target),
                                          seq, 2, target, clk, rnd,
                                          dst, z, rs, c, trail))
                            seq += 1
                            loaned = True
                            break
                        if loaned:
                            continue
                    if idle_pause > 0 and not l_demand[dst]:
                        l_parked[dst] = 1
                        l_heappush(l_heap, (now + idle_pause, seq, 12,
                                          dst, l_fg[dst]))
                        seq += 1
                        continue
                    l_fbs(dst)
                elif tag == 10:
                    now = t
                    executed += 1
                    node = l_rb(l_n)
                    # handle_request inlined.
                    if l_waiting[node] < 0:
                        s = l_req_seq[node] + 1
                        l_waiting[node] = s
                        l_applog((0, node, s, now))
                        l_ready[node] = 1
                        l_req_seq[node] = s
                        if l_bs:
                            l_demand[node] = 1
                        if l_has_token[node] and not l_serving[node]:
                            if l_parked[node]:
                                l_parked[node] = 0
                                l_fg[node] += 1
                            l_adv(node)
                        elif l_bs and l_lent[node] < 0:
                            l_ls(node)
                    mean = entry[3]
                    gap = l_expo(1.0 / mean)
                    l_heappush(l_heap, (now + gap, seq, 10, mean))
                    seq += 1
                elif tag == 0:
                    now = t
                    executed += 1
                    dst = entry[3]
                    if l_has_token[dst] or (l_bs and l_lent[dst] >= 0):
                        raise ProtocolError(
                            f"node {dst} received a second token")
                    l_has_token[dst] = 1
                    clk = entry[4]
                    l_clock[dst] = clk
                    l_round[dst] = entry[5]
                    l_last_visit[dst] = clk
                    if l_bs:
                        if l_rot:
                            served = entry[6]
                            base = l_carry[dst]
                            hit = l_memo_get((id(served), id(base)))
                            if hit is not None:
                                nc = hit[2]
                                if nc is not base:
                                    l_carry[dst] = nc
                                    l_clean[dst] = 0
                            else:
                                l_mm(dst, served, base)
                            if l_traps[dst] and (
                                    not l_clean[dst]
                                    or l_minclk[dst] <= l_clock[dst] - l_n):
                                l_gct(dst)
                    r = clk // l_n       # Deliver("token_visit")
                    if r > rounds_seen:
                        rounds_seen = r
                    if l_bs:
                        l_inflight[dst] = 0
                        if l_gq[dst]:
                            l_rgb(dst)
                    l_adv(dst)
                elif tag == 11:
                    now = t
                    executed += 1
                    l_hreq(entry[3])
                elif tag == 12:
                    node = entry[3]
                    if entry[4] != l_fg[node]:
                        continue         # cancelled: skip, don't count
                    now = t
                    executed += 1
                    if not (has_token[node] and parked[node]):
                        continue
                    parked[node] = 0
                    if is_bs:
                        l_fbs(node)
                    else:
                        forward_ring(node)
                elif tag == 13:
                    now = t
                    executed += 1
                    node = entry[3]
                    if not serving[node]:
                        continue
                    serving[node] = 0
                    pend = l_lp[node]
                    if pend is not None:
                        l_lp[node] = None
                        l_slr(node, pend[0], clock[node],
                                         round_no[node], pend[1])
                        continue
                    l_adv(node)
                else:                    # 14
                    now = t
                    executed += 1
                    node = entry[3]
                    if ready[node] and entry[4] == req_seq[node]:
                        outstanding[node] = 0
                        l_ls(node)
            executed_total += executed
            budget -= executed
            if executed < step:
                break

    def sync():
        """Flush scalar run state back to the ArrayState."""
        st.now = now
        st.seq = seq
        st.executed_total = executed_total
        st.sent_total = sent_total
        st.dropped_count = dropped
        st.sent_by_type["TokenMsg"] = sent_token
        st.sent_by_type["GimmeMsg"] = sent_gimme
        st.sent_by_type["LoanMsg"] = sent_loan
        st.sent_by_type["LoanReturnMsg"] = sent_ret
        st.grants_count = grants_count
        st.rounds_seen = rounds_seen
        st.send_crc = crc

    return Engine(st, run, start, request, request_at, add_fixed_rate, sync)
