"""Differential harness: object cores vs. the array-compiled engine.

The fast path's whole value rests on one claim — *bit-identical* runs.
This module checks that claim mechanically by replaying the same fully
pinned schedule through both stacks and comparing the strongest cheap
observables: the CRC32 digest over the full send stream (time, source,
destination, rendered message — any field drift changes it), the kernel
event count, and the grant count.

Two entry points:

- :func:`diff_case` replays one :class:`~repro.fuzz.case.FuzzCase`
  (the fuzz corpus format) through ``repro.fuzz.runner.run_case`` (object
  stack, digest hook) and through :class:`~repro.fastsim.FastCluster`
  (``digest=True``), classifying cases outside the fast path's support
  matrix as *skipped* with the reason instead of failing.
- :func:`diff_corpus` sweeps a corpus directory and returns one report
  per case file; the differential tests run it over
  ``tests/fuzz/corpus`` so every committed counterexample doubles as a
  fast-path regression fixture.

Reports are plain dataclasses; ``verdict`` is one of ``"match"``,
``"MISMATCH"``, or ``"skipped"`` so callers can assert on the sweep
without re-deriving support rules.
"""

from __future__ import annotations

import glob
import os
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import ProtocolConfig
from repro.errors import ConfigError
from repro.fastsim.cluster import FastCluster
from repro.fastsim.state import unsupported_reason
from repro.fuzz.case import FuzzCase, build_delay
from repro.fuzz.rng import derive_seed

__all__ = ["DiffReport", "fast_outcome", "diff_case", "diff_corpus"]


@dataclass
class DiffReport:
    """Outcome of one object-vs-fast replay."""

    label: str
    verdict: str                       # "match" | "MISMATCH" | "skipped"
    skip_reason: Optional[str] = None
    object_outcome: Optional[Dict] = None
    fast_outcome: Optional[Dict] = None

    @property
    def ok(self) -> bool:
        """True unless the two stacks disagreed (skips are fine)."""
        return self.verdict != "MISMATCH"

    def render(self) -> str:
        if self.verdict == "skipped":
            return f"skip  {self.label}: {self.skip_reason}"
        if self.verdict == "match":
            assert self.fast_outcome is not None
            return (f"match {self.label}: checksum "
                    f"{self.fast_outcome['checksum']} "
                    f"events {self.fast_outcome['events']}")
        return (f"MISMATCH {self.label}: object={self.object_outcome!r} "
                f"fast={self.fast_outcome!r}")


def _skip_reason(case: FuzzCase) -> Optional[str]:
    """Why this corpus case cannot run on the fast path (None = it can).

    Layered on top of :func:`unsupported_reason`: fuzz cases add fault
    plans and spec-level walks, which only the object stack executes.
    """
    if case.kind != "impl":
        return "spec-level case (random reduction, no DES run)"
    if case.protocol == "stabilizing":
        return ("stabilizing core (watchdog censuses + absorption) has no "
                "array compilation")
    if any(f.get("op") == "corrupt" for f in case.faults):
        return ("arbitrary-state corruption mutates core objects; the "
                "array fast path has no object state to corrupt")
    if case.faults:
        return "fault plan needs the object driver stack"
    try:
        config = ProtocolConfig(**case.config)
        config.n = case.n
        config.validate()
    except (TypeError, ConfigError) as exc:
        return f"config rejected: {exc}"
    return unsupported_reason(case.protocol, config, build_delay(case.delay))


def fast_outcome(case: FuzzCase) -> Dict:
    """Replay an impl-level case on :class:`FastCluster`.

    Returns the same shape as ``FuzzResult.outcome()`` plus ``grants``
    so the comparison covers application-visible behaviour, not just the
    wire. The caller must have cleared :func:`_skip_reason` first.
    """
    cluster = FastCluster.build(
        case.protocol, case.n,
        seed=derive_seed(case.seed, "net"),
        config=ProtocolConfig(**case.config),
        delay=build_delay(case.delay),
        loss_rate=case.loss_rate,
        dup_rate=case.dup_rate,
        digest=True,
    )
    for time, node in case.requests:
        cluster.request_at(time, node)
    cluster.run(until=case.horizon, max_events=case.max_events)
    return {
        "ok": True,
        "checksum": cluster.send_checksum,
        "events": cluster.executed_total,
        "grants": cluster.grants,
    }


def diff_case(case: FuzzCase) -> DiffReport:
    """Replay ``case`` through both stacks and compare.

    The object side runs through :func:`repro.fuzz.runner.run_case` —
    the exact harness that produced the corpus outcomes, oracle and
    sanitizer included — so a match here certifies the fast path against
    the strictest instrumented object run, not a stripped-down twin.
    """
    from repro.fuzz.runner import run_case  # deferred: pulls in lint/oracle

    label = case.label or f"{case.protocol}/n{case.n}/seed{case.seed}"
    reason = _skip_reason(case)
    if reason is not None:
        return DiffReport(label=label, verdict="skipped", skip_reason=reason)
    obj = run_case(case)
    obj_outcome = {"ok": obj.ok, "checksum": obj.checksum,
                   "events": obj.events, "grants": obj.grants}
    if not obj.ok:
        # A safety violation on the object side is a finding for the fuzz
        # harness, not a differential target: the fast path raises on the
        # same states but the post-violation trace is not comparable.
        return DiffReport(label=label, verdict="skipped",
                          skip_reason=f"object run not clean: "
                                      f"{(obj.violation or {}).get('type')}",
                          object_outcome=obj_outcome)
    fast = fast_outcome(case)
    verdict = "match" if fast == obj_outcome else "MISMATCH"
    return DiffReport(label=label, verdict=verdict,
                      object_outcome=obj_outcome, fast_outcome=fast)


def diff_corpus(directory: str) -> List[DiffReport]:
    """Replay every ``*.json`` corpus case under ``directory``.

    Unsupported cases come back as skips; the sweep never raises on
    classification, so adding exotic counterexamples to the corpus can
    never break the differential suite — only a genuine divergence can.
    """
    reports: List[DiffReport] = []
    for path in sorted(glob.glob(os.path.join(directory, "*.json"))):
        case, _recorded = FuzzCase.load(path)
        report = diff_case(case)
        if not report.label:
            report.label = os.path.basename(path)
        reports.append(report)
    return reports
