"""Array-compiled fast simulation cores (the ``fast as the hardware
allows`` ROADMAP item).

:class:`FastCluster` is a drop-in stand-in for
:class:`repro.core.cluster.Cluster` over a declared support matrix
(ring / binary-search protocols, fault-free runs, auto-release grants)
that executes the same simulation 5-10x faster by compiling node state
into flat columns and messages into plain tuples — see
:mod:`repro.fastsim.state` for the layout and the equivalence contract,
and :mod:`repro.fastsim.shard` for the process-sharded mega-sim built
on top of it.

Anything outside the support matrix raises
:class:`repro.errors.FastSimUnsupportedError`; callers fall back to the
object cluster.
"""

from repro.fastsim.cluster import FastCluster
from repro.fastsim.compiled import Engine, compile_engine
from repro.fastsim.diff import DiffReport, diff_case, diff_corpus
from repro.fastsim.shard import MegaResult, ShardedRingSim, mega_requests
from repro.fastsim.state import ArrayState, unsupported_reason

__all__ = [
    "ArrayState",
    "DiffReport",
    "Engine",
    "FastCluster",
    "MegaResult",
    "ShardedRingSim",
    "compile_engine",
    "diff_case",
    "diff_corpus",
    "mega_requests",
    "unsupported_reason",
]
