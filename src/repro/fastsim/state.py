"""Flat column-oriented node state for the array-compiled engine.

The object cores (:mod:`repro.core.ring`, :mod:`repro.core.binary_search`)
keep one Python object per node with ~15 attributes; every handler pays
attribute-dictionary lookups and allocates effect/message dataclasses.
The fast engine replaces all of that with *columns*: one ``bytearray``
per boolean flag, one flat int list per integer register, and plain
Python lists/dicts for the few per-node structures that hold tuples
(the served-carry piggyback, the FIFO trap queue).  Messages become plain
tuples tagged with a small integer, queued directly in the event
calendar — no ``Send`` effects, no frozen dataclasses, no driver layer.

Equivalence contract: for every configuration accepted by
:func:`unsupported_reason` (returning ``None``), a run through the
compiled engine produces **bit-identical** observable behaviour to the
object stack — same kernel event count, same send stream (order, fields,
timestamps), same grants and responsiveness samples.  The differential
tests in ``tests/fastsim/`` enforce this against the fuzz corpus and a
generated configuration matrix.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.core.config import GC_INVERSE, GC_ROTATION, ProtocolConfig
from repro.sim.network import (ConstantDelay, DelayModel, ExponentialDelay,
                               UniformDelay)

__all__ = [
    "ArrayState",
    "unsupported_reason",
    "TAG_TOKEN",
    "TAG_GIMME",
    "TAG_LOAN",
    "TAG_LOAN_RETURN",
    "TAG_WORKLOAD",
    "TAG_REQUEST",
    "TAG_FWD",
    "TAG_REL",
    "TAG_RETRY",
]

#: Delivery tags (hot; dispatch checks GIMME/TOKEN first).
TAG_TOKEN = 0
TAG_GIMME = 1
TAG_LOAN = 2
TAG_LOAN_RETURN = 3
#: Non-delivery tags (timers, workload ticks, scheduled requests).
TAG_WORKLOAD = 10
TAG_REQUEST = 11
TAG_FWD = 12
TAG_REL = 13
TAG_RETRY = 14

_PROTOCOLS = ("ring", "binary_search")


def unsupported_reason(protocol: str, config: ProtocolConfig,
                       delay: Optional[DelayModel] = None) -> Optional[str]:
    """Why this configuration cannot run on the fast path (None = it can).

    The support matrix is intentionally explicit: everything inside it is
    covered by the differential tests; everything outside raises instead
    of risking silent divergence from the object cores.
    """
    if protocol not in _PROTOCOLS:
        return f"protocol {protocol!r} has no array-compiled core"
    if config.hold_until_release:
        return "hold_until_release needs application-driven release calls"
    if delay is not None and not isinstance(
            delay, (ConstantDelay, UniformDelay, ExponentialDelay)):
        return f"unknown delay model {type(delay).__name__}"
    return None


class ArrayState:
    """All mutable simulation state of one fast-engine run.

    Scalar run state (clock, seq counter, counters) lives in the compiled
    engine's closure cells while running and is flushed back here by
    ``Engine.sync()``; the columns below are shared by reference and always
    current.
    """

    def __init__(self, protocol: str, n: int, config: ProtocolConfig,
                 seed: int = 0,
                 delay: Optional[DelayModel] = None,
                 loss_rate: float = 0.0,
                 dup_rate: float = 0.0,
                 digest: bool = False) -> None:
        self.protocol = protocol
        self.n = n
        self.config = config
        self.rng = random.Random(seed)
        self.delay = delay if delay is not None else ConstantDelay(1.0)
        self.loss_rate = loss_rate
        self.dup_rate = dup_rate
        self.digest = digest

        # -- boolean flag columns ------------------------------------------
        self.has_token = bytearray(n)
        self.has_token[0] = 1  # initial holder, as in the object cores
        self.ready = bytearray(n)
        self.outstanding = bytearray(n)
        self.parked = bytearray(n)
        self.serving = bytearray(n)
        self.demand_seen = bytearray(n)
        self.gimme_inflight = bytearray(n)

        # -- integer register columns --------------------------------------
        # Plain lists, deliberately: ``array('q')`` halves the memory but
        # boxes a fresh int object on *every read* (PyLong_FromLongLong),
        # and the engine reads registers far more often than it stores
        # them.  Lists return the already-boxed object.
        self.clock: List[int] = [0] * n
        self.round_no: List[int] = [0] * n
        self.req_seq: List[int] = [0] * n
        self.last_visit: List[int] = [-1] * n
        self.last_visit[0] = 0
        self.granted_seq: List[int] = [-1] * n
        self.fwd_gen: List[int] = [0] * n             # forward-timer epoch
        self.waiting: List[int] = [-1] * n            # Cluster._waiting mirror
        self.lent_to: List[int] = [-1] * n            # -1 = no loan out

        # -- per-node tuple-valued structures ------------------------------
        # Served carry (rotation GC), always one of the engine's interned
        # canonical tuples; the {z: seq} lookup views and the merge memo
        # mirroring BinarySearchCore._merge_served/_served_lookup live in
        # process-level caches in :mod:`repro.fastsim.compiled`.
        self.carry: List[Tuple[Tuple[int, int], ...]] = [()] * n
        # FIFO trap queue as an insertion-ordered dict:
        # requester -> mutable [requester, req_seq, set_clock, trail] slot.
        # Dict insertion order *is* FIFO order; superseding updates the slot
        # in place, which preserves the queue position exactly like
        # TrapStore's in-place rewrite.  Keying by requester makes
        # supersede, relay-removal, and served-GC probes O(1) instead of
        # queue scans.
        self.traps: List[dict] = [{} for _ in range(n)]
        self.trap_latest: List[dict] = [{} for _ in range(n)]
        # Conservative lower bound on min(set_clock) over each trap queue;
        # lets expiry GC skip queues that cannot contain a stale entry.
        # Only ever too low (false trigger = harmless rescan), never too
        # high, so the GC outcome is identical to a full scan.
        self.trap_minclk: List[float] = [float("inf")] * n
        # 1 after a served-GC probe found nothing; cleared whenever the
        # carry gains entries or a new trap is inserted (the only events
        # that can create a served hit), so a set flag proves the probe
        # loop would find nothing again.
        self.gc_clean = bytearray(n)
        # forward-throttle holdback queue of raw gimme tuples.
        self.gimme_queue: List[list] = [[] for _ in range(n)]
        # (lender, carry-at-grant) while serving a loaned token.
        self.loan_pending: List[Optional[tuple]] = [None] * n

        # -- run log / aggregates (written back by Engine.sync) ------------
        # applog entries: (kind, node, req_seq, time); kind 0=request 1=grant.
        self.applog: List[Tuple[int, int, int, float]] = []
        self.now = 0.0
        self.seq = 0
        self.executed_total = 0
        self.sent_total = 0
        self.dropped_count = 0
        self.sent_by_type = {"TokenMsg": 0, "GimmeMsg": 0, "LoanMsg": 0,
                             "LoanReturnMsg": 0}
        self.grants_count = 0
        self.rounds_seen = 0
        self.send_crc = 0

        self.is_bs = protocol == "binary_search"
        self.rotation = config.trap_gc == GC_ROTATION
        self.inverse = config.trap_gc == GC_INVERSE
        self.use_dq = type(self.delay) is ConstantDelay
