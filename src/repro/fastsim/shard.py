"""Process-sharded mega-simulation of the token ring.

Scales the array-compiled simulation past one process: the ring
``[0, n)`` is cut into ``shards`` contiguous segments, each owned by a
worker process running a segment-local event loop, and a controller
advances them under **conservative time windows** — the classic
lookahead argument, specialized to the ring:

- the only cross-segment messages are token hops across a boundary, and
  every hop takes at least ``d_cross`` (the constant per-hop delay);
- a segment that neither holds the token nor has one in flight toward
  it cannot emit *anything*, whatever its pending request events say —
  its earliest-emission bound is infinite;
- therefore shard ``k`` may safely execute every event strictly before
  ``min over j != k of next_emit(j) + d_cross``: nothing the other
  shards do can reach it earlier.

Because at most one segment can emit (one token), the bound collapses
to a hand-off: the holder's window is unbounded (it sweeps its whole
segment in one go) while the others clear their pending request events.
Barriers are proportional to boundary crossings — ``shards`` per
circulation — not to simulated time, so a 100k-node ring advances
100k hops between synchronizations, not one.

Equivalence is the same currency as everywhere in :mod:`repro.fastsim`:
a sharded run is **bit-identical** to the single-process engine — same
executed-event count, same send stream (pinned by CRC32 digests), same
grants and responsiveness samples — and invariant under the partition
(``shards`` = 1, 2, 4 ... agree checksum-for-checksum).  The segment
engine replicates the compiled ring arm exactly, including the
``(time, seq)`` tie-break that lets a request scheduled at time *t* win
against a token arriving at *t*; request events carry their global
schedule index as ``seq`` while deliveries sort after every request
(``_SEQ_DELIVERY`` base), mirroring the single-process engine, where
``request_at`` burns seqs 0..k-1 before the first send.

The support matrix is ring-shaped on purpose: ``ring`` protocol,
constant delay, lossless links, pre-pinned request schedules (no
workload RNG inside the run).  Those are exactly the conditions under
which the simulation consumes *zero* RNG draws, which is what makes a
partition-invariant parallel run possible at all.  Binary search is out
of scope here — its gimme traffic crosses half the ring per hop and its
loss/dup draws impose a global RNG order (and its served carries would
need re-interning through ``_INTERN.setdefault`` on every unpickle);
use the single-process :class:`~repro.fastsim.FastCluster` for it.
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass, field
from multiprocessing import Pipe, Process, get_context
from typing import Dict, List, Optional, Tuple

from repro.core.config import ProtocolConfig
from repro.errors import ConfigError, FastSimUnsupportedError, ProtocolError

__all__ = [
    "MegaResult",
    "RingSegment",
    "ShardedRingSim",
    "mega_requests",
    "plan_segments",
]

_INF = float("inf")

#: Deliveries sort after every request event at equal times (the single
#: process engine assigns request seqs first, send seqs later).
_SEQ_DELIVERY = 1 << 40

#: Mask for the order-insensitive digest (sum of per-record CRC32s).
_MASK64 = (1 << 64) - 1


def plan_segments(n: int, shards: int) -> List[Tuple[int, int]]:
    """Cut ``[0, n)`` into ``shards`` contiguous ``[lo, hi)`` segments.

    Sizes differ by at most one; every node lands in exactly one
    segment, so cross-segment traffic is exactly the boundary hops.
    """
    if shards < 1:
        raise ConfigError(f"shards must be >= 1, got {shards}")
    if shards > n:
        raise ConfigError(f"cannot cut {n} nodes into {shards} segments")
    base, extra = divmod(n, shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for k in range(shards):
        hi = lo + base + (1 if k < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def mega_requests(n: int, seed: int, count: int,
                  horizon: float) -> List[Tuple[float, int]]:
    """A pinned mega-sim request schedule.

    All randomness is spent *before* the run (this is what keeps the
    sharded execution deterministic); the schedule is sorted so global
    seq order equals time order.
    """
    import random

    rng = random.Random(seed)
    return sorted((round(rng.uniform(0.0, horizon * 0.8), 3),
                   rng.randrange(n)) for _ in range(count))


class RingSegment:
    """One contiguous ring segment ``[lo, hi)`` with its event loop.

    Mirrors the compiled engine's ring arm field-for-field over the
    mega support matrix (default config: no service time, no idle
    pause).  Runs inline or inside a worker process — the controller
    talks to both through the same three methods: :meth:`status`,
    :meth:`run_window`, :meth:`finish`.
    """

    def __init__(self, n: int, lo: int, hi: int, delay: float,
                 horizon: float,
                 requests: List[Tuple[int, float, int]],
                 digest: bool = False) -> None:
        self.n = n
        self.lo = lo
        self.hi = hi
        self.delay = delay
        self.horizon = horizon
        self.digest = digest
        size = hi - lo
        self.ready = bytearray(size)
        self.has_token = bytearray(size)
        self.clock = [0] * size
        self.round_no = [0] * size
        self.last_visit = [-1] * size
        self.req_seq = [0] * size
        self.granted_seq = [-1] * size
        self.waiting = [-1] * size
        self.now = 0.0
        self.executed = 0
        self.sent = 0
        self.grants = 0
        self.rounds_seen = 0
        self.crc_chain = 0          # streaming CRC (order-sensitive)
        self.crc_sum = 0            # per-record CRC sum (order-free)
        self.applog: List[Tuple[int, int, int, float]] = []
        self.outbox: List[Tuple[float, int, int, int]] = []
        self._send_seq = _SEQ_DELIVERY
        # heap entries: (time, seq, is_token, node, clk, rnd)
        self.heap: List[tuple] = [(t, gseq, 0, node, 0, 0)
                                  for gseq, t, node in requests]
        heapq.heapify(self.heap)
        if lo == 0:
            # Initial holder: Engine.start() -> advance(0) at time zero.
            self.has_token[0] = 1
            self.last_visit[0] = 0
            self._advance(0)

    # -- protocol (compiled ring arm, segment-local) -----------------------

    def _send_token(self, src: int, dst: int, clk: int, rnd: int) -> None:
        self.sent += 1
        if self.digest:
            record = (f"{self.now:.6f}|{src}|{dst}|TokenMsg(clock={clk}, "
                      f"round_no={rnd}, served=(), membership=None, "
                      f"epoch=0, suspects=())").encode("utf-8")
            self.crc_chain = zlib.crc32(record, self.crc_chain)
            self.crc_sum = (self.crc_sum + zlib.crc32(record)) & _MASK64
        t = self.now + self.delay
        if self.lo <= dst < self.hi:
            heapq.heappush(self.heap, (t, self._send_seq, 1, dst, clk, rnd))
            self._send_seq += 1
        else:
            self.outbox.append((t, dst, clk, rnd))

    def _advance(self, node: int) -> None:
        i = node - self.lo
        if self.ready[i]:
            self.ready[i] = 0
            s = self.req_seq[i]
            self.granted_seq[i] = s
            w = self.waiting[i]
            if w >= 0:
                self.waiting[i] = -1
                self.applog.append((1, node, w, self.now))
                self.grants += 1
        if self.n == 1:
            return
        self.has_token[i] = 0
        succ = node + 1
        if succ == self.n:
            succ = 0
        self._send_token(node, succ, self.clock[i] + 1,
                         self.round_no[i] + 1 if succ == 0
                         else self.round_no[i])

    def _on_token(self, node: int, clk: int, rnd: int) -> None:
        i = node - self.lo
        if self.has_token[i]:
            raise ProtocolError(f"node {node} received a second token")
        self.has_token[i] = 1
        self.clock[i] = clk
        self.round_no[i] = rnd
        self.last_visit[i] = clk
        r = clk // self.n
        if r > self.rounds_seen:
            self.rounds_seen = r
        self._advance(node)

    def _on_request(self, node: int) -> None:
        i = node - self.lo
        if self.waiting[i] >= 0:
            return
        s = self.req_seq[i] + 1
        self.waiting[i] = s
        self.applog.append((0, node, s, self.now))
        self.ready[i] = 1
        self.req_seq[i] = s
        if self.has_token[i]:
            self._advance(node)

    # -- controller interface ----------------------------------------------

    def inject(self, messages: List[Tuple[float, int, int, int]]) -> None:
        """Queue cross-segment token arrivals forwarded by the controller."""
        for t, dst, clk, rnd in messages:
            heapq.heappush(self.heap, (t, self._send_seq, 1, dst, clk, rnd))
            self._send_seq += 1

    def status(self) -> Tuple[float, float]:
        """``(next_event_time, next_emit_time)``.

        The emission bound is the conservative core of the windowing: a
        segment with no token anywhere in its queue or hands reports
        infinity, licensing every other shard to run past its pending
        (silent) request events.
        """
        nt = self.heap[0][0] if self.heap else _INF
        holding = any(self.has_token)
        queued_token = any(e[2] for e in self.heap)
        return nt, (nt if (holding or queued_token) else _INF)

    def run_window(self, bound: float) -> List[Tuple[float, int, int, int]]:
        """Execute events with ``t < bound`` and ``t <= horizon``; drain
        and return the outbox of boundary crossings.

        The window ends early the moment a cross-segment message is
        emitted: that emission invalidates every bound the controller
        computed from the pre-window statuses (the token now exists
        outside this segment and can circle back), so the safe move is
        to stop, report, and let the controller re-derive windows.
        Without this cut a token-holding shard would sweep its request
        events all the way to the horizon and then process the returning
        token against `ready` flags from the future.
        """
        heap = self.heap
        horizon = self.horizon
        while heap and not self.outbox:
            t = heap[0][0]
            if t >= bound or t > horizon:
                break
            _, _, is_token, node, clk, rnd = heapq.heappop(heap)
            self.now = t
            self.executed += 1
            if is_token:
                self._on_token(node, clk, rnd)
            else:
                self._on_request(node)
        out = self.outbox
        self.outbox = []
        return out

    def finish(self) -> Dict:
        """Final per-segment statistics (the run sweeps ``now`` to the
        horizon exactly like the engine's drained/over-bound paths)."""
        self.now = self.horizon
        return {
            "executed": self.executed,
            "sent": self.sent,
            "grants": self.grants,
            "rounds_seen": self.rounds_seen,
            "applog": self.applog,
            "crc_chain": self.crc_chain,
            "crc_sum": self.crc_sum,
        }


def _worker_main(conn, n: int, lo: int, hi: int, delay: float,
                 horizon: float, requests: List[Tuple[int, float, int]],
                 digest: bool) -> None:
    """Worker-process loop: one segment, command pipe to the controller."""
    segment = RingSegment(n, lo, hi, delay, horizon, requests, digest)
    try:
        while True:
            op, payload = conn.recv()
            if op == "window":
                bound, injections = payload
                segment.inject(injections)
                outbox = segment.run_window(bound)
                conn.send((segment.status(), outbox))
            elif op == "finish":
                conn.send(segment.finish())
                return
    finally:
        conn.close()


class _InlineWorker:
    """Same wire protocol as a process worker, executed in-process.

    Used by tests and small runs where fork-and-pipe overhead would
    dominate; identical code path through :class:`RingSegment`, so
    partition-invariance checks cover the process mode's logic too.
    """

    def __init__(self, segment: RingSegment) -> None:
        self.segment = segment

    def window(self, bound: float, injections: List[tuple]):
        self.segment.inject(injections)
        outbox = self.segment.run_window(bound)
        return self.segment.status(), outbox

    def finish(self) -> Dict:
        return self.segment.finish()

    def close(self) -> None:  # interface parity with _PipeWorker
        pass


class _PipeWorker:
    """Controller-side handle for one forked segment process."""

    def __init__(self, ctx, n: int, lo: int, hi: int, delay: float,
                 horizon: float, requests: List[tuple],
                 digest: bool) -> None:
        self.conn, child = Pipe()
        self.process: Process = ctx.Process(
            target=_worker_main,
            args=(child, n, lo, hi, delay, horizon, requests, digest),
            daemon=True)
        self.process.start()
        child.close()

    def window(self, bound: float, injections: List[tuple]):
        self.conn.send(("window", (bound, injections)))
        return self.conn.recv()

    def finish(self) -> Dict:
        self.conn.send(("finish", None))
        stats = self.conn.recv()
        self.conn.close()
        self.process.join(timeout=30)
        return stats

    def close(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=10)


@dataclass
class MegaResult:
    """Merged outcome of a sharded run."""

    n: int
    shards: int
    horizon: float
    executed: int
    sent: int
    grants: int
    rounds: int
    barriers: int
    crc_sum: int
    crc_chain: Optional[int] = None     # only meaningful for shards == 1
    applog: List[Tuple[int, int, int, float]] = field(default_factory=list)

    @property
    def checksum(self) -> str:
        """Partition-invariant run fingerprint: counts plus the
        order-insensitive send digest."""
        return (f"{self.executed}-{self.sent}-{self.grants}-"
                f"{self.crc_sum:016x}")

    def responsiveness_samples(self) -> List[float]:
        """Grant-minus-request times, replayed from the merged applog."""
        from repro.metrics.responsiveness import ResponsivenessTracker

        tracker = ResponsivenessTracker()
        for kind, node, req_seq, time in self.applog:
            if kind == 0:
                tracker.on_request(node, req_seq, time)
            else:
                tracker.on_grant(node, req_seq, time)
        return list(tracker.responsiveness_samples)


class ShardedRingSim:
    """Controller: cut the ring, spawn workers, drive windows, merge.

    ``processes=False`` runs every segment inline (single process, same
    segment code); ``processes=True`` forks one worker per segment and
    speaks the window protocol over pipes.
    """

    def __init__(self, n: int, shards: int,
                 config: Optional[ProtocolConfig] = None,
                 delay: float = 1.0,
                 digest: bool = False,
                 processes: bool = True) -> None:
        if n < 2:
            raise ConfigError(f"mega-sim needs n >= 2, got {n}")
        config = config if config is not None else ProtocolConfig()
        reason = self._unsupported(config, delay)
        if reason is not None:
            raise FastSimUnsupportedError(reason)
        self.n = n
        self.shards = shards
        self.delay = delay
        self.digest = digest
        self.processes = processes
        self.segments = plan_segments(n, shards)
        self.requests: List[Tuple[float, int]] = []

    @staticmethod
    def _unsupported(config: ProtocolConfig, delay: float) -> Optional[str]:
        if config.service_time > 0 or config.idle_pause > 0:
            return "mega-sim supports the zero-hold ring only"
        if config.hold_until_release:
            return "hold_until_release needs application-driven releases"
        if delay <= 0:
            return "conservative windows need a positive hop delay"
        return None

    def request_at(self, time: float, node: int) -> None:
        if not 0 <= node < self.n:
            raise ConfigError(f"node {node} out of range")
        self.requests.append((time, node))

    def run(self, until: float) -> MegaResult:
        """Run the sharded simulation to the horizon and merge."""
        per_shard: List[List[tuple]] = [[] for _ in self.segments]
        for gseq, (time, node) in enumerate(self.requests):
            per_shard[self._shard_of(node)].append((gseq, time, node))

        workers: List[object] = []
        if self.processes:
            ctx = get_context("fork")
            for (lo, hi), reqs in zip(self.segments, per_shard):
                workers.append(_PipeWorker(ctx, self.n, lo, hi, self.delay,
                                           until, reqs, self.digest))
        else:
            for (lo, hi), reqs in zip(self.segments, per_shard):
                workers.append(_InlineWorker(RingSegment(
                    self.n, lo, hi, self.delay, until, reqs, self.digest)))
        try:
            return self._drive(workers, until)
        finally:
            for worker in workers:
                worker.close()  # type: ignore[attr-defined]

    def _shard_of(self, node: int) -> int:
        for k, (lo, hi) in enumerate(self.segments):
            if lo <= node < hi:
                return k
        raise ConfigError(f"node {node} outside every segment")

    def _drive(self, workers: List[object], until: float) -> MegaResult:
        shard_count = len(workers)
        in_flight: List[Tuple[float, int, int, int]] = []
        # Zero-width opening window: collects every worker's initial
        # status (including node 0's time-zero token emission) without a
        # dedicated status op.
        next_time = [_INF] * shard_count
        next_emit = [_INF] * shard_count
        pending: List[List[tuple]] = [[] for _ in range(shard_count)]
        bounds = [0.0] * shard_count
        barriers = 0
        while True:
            for k, worker in enumerate(workers):
                (next_time[k], next_emit[k]), outbox = worker.window(
                    bounds[k], pending[k])  # type: ignore[attr-defined]
                in_flight.extend(outbox)
            barriers += 1
            pending = [[] for _ in range(shard_count)]
            emit_floor = list(next_emit)
            time_floor = list(next_time)
            for message in in_flight:
                k = self._shard_of(message[1])
                pending[k].append(message)
                if message[0] < emit_floor[k]:
                    emit_floor[k] = message[0]
                if message[0] < time_floor[k]:
                    time_floor[k] = message[0]
            in_flight = []
            if all(t > until for t in time_floor):
                break
            for k in range(shard_count):
                other = min((emit_floor[j] for j in range(shard_count)
                             if j != k), default=_INF)
                bounds[k] = other + self.delay
            if barriers > 4 * self.n:
                raise ProtocolError(
                    "sharded run stopped making progress (window stall)")
        applog: List[Tuple[int, int, int, float]] = []
        executed = sent = grants = rounds = 0
        crc_sum = 0
        crc_chain: Optional[int] = None
        for worker in workers:
            stats = worker.finish()  # type: ignore[attr-defined]
            executed += stats["executed"]
            sent += stats["sent"]
            grants += stats["grants"]
            rounds = max(rounds, stats["rounds_seen"])
            crc_sum = (crc_sum + stats["crc_sum"]) & _MASK64
            applog.extend(stats["applog"])
            if shard_count == 1:
                crc_chain = stats["crc_chain"]
        # Request-before-grant at equal times, matching engine seq order.
        applog.sort(key=lambda e: (e[3], e[0]))
        return MegaResult(
            n=self.n, shards=self.shards, horizon=until,
            executed=executed, sent=sent, grants=grants, rounds=rounds,
            barriers=barriers, crc_sum=crc_sum, crc_chain=crc_chain,
            applog=applog)
