"""AioFabric: the multi-token fabric over the asyncio runtime.

Mirrors :class:`~repro.fabric.fabric.TokenFabric` for live deployments:
one lock key per :class:`~repro.aio.cluster.AioCluster` (its own ring,
transport and reliability stack), all sharing the caller's event loop —
which is the asyncio analogue of the DES fabric's shared kernel; no
thread or loop per key.

The fabric front-door is ``acquire``/``release``/``lock`` *by key*.
Acquire latency (request to grant, on the loop clock — virtual under
:func:`~repro.aio.virtualtime.run_virtual`) is recorded per key in a
:class:`~repro.metrics.keyed.KeyedMetricsRegistry`; the wait doubles as
the histogram's latency sample, so fabric-level p50/p99 summarize how
long callers blocked on the lock.

Supervision composes per lane: wrap any lane's cluster in a
:class:`~repro.aio.supervisor.ClusterSupervisor` via :meth:`supervise`,
and the fabric will stop the supervisors alongside the lanes.
"""

from __future__ import annotations

import asyncio
import zlib
from typing import Dict, List, Optional

from repro.aio.cluster import AioCluster
from repro.aio.reliability import ReliabilityConfig
from repro.aio.supervisor import ClusterSupervisor, RestartPolicy
from repro.core.config import ProtocolConfig
from repro.errors import ConfigError
from repro.metrics.keyed import KeyedMetricsRegistry

__all__ = ["AioFabric"]


class AioFabric:
    """Keyed collection of asyncio token clusters on one event loop."""

    def __init__(self, seed: int = 0, sanitize: Optional[bool] = None) -> None:
        self.seed = seed
        self.metrics = KeyedMetricsRegistry()
        self._sanitize = sanitize
        self._ids: Dict[str, int] = {}
        self._keys: List[str] = []
        self._lanes: List[AioCluster] = []
        self._supervisors: Dict[int, ClusterSupervisor] = {}
        self._started = False

    def __len__(self) -> int:
        return len(self._lanes)

    @property
    def keys(self) -> List[str]:
        return self._keys

    def lane_seed(self, key: str) -> int:
        """Same derivation as ``TokenFabric.lane_seed`` — a DES rehearsal
        and a live deployment of the same fabric seed agree per key."""
        return zlib.crc32(f"{self.seed}|{key}".encode("utf-8"))

    def add_key(
        self,
        key: str,
        protocol: str = "binary_search",
        n: int = 4,
        seed: Optional[int] = None,
        config: Optional[ProtocolConfig] = None,
        delay: float = 0.001,
        loss_rate: float = 0.0,
        dup_rate: float = 0.0,
        reliability: Optional[ReliabilityConfig] = None,
    ) -> AioCluster:
        """Create the lane for ``key``; returns its :class:`AioCluster`.

        Must be called before :meth:`start` — live lanes need their node
        tasks started, which is an async operation the synchronous
        ``add_key`` cannot perform.
        """
        if key in self._ids:
            raise ConfigError(f"duplicate fabric key {key!r}")
        if self._started:
            raise ConfigError("add keys before the fabric starts")
        if seed is None:
            seed = self.lane_seed(key)
        lane = AioCluster(protocol, n, seed=seed, config=config, delay=delay,
                          loss_rate=loss_rate, dup_rate=dup_rate,
                          sanitize=self._sanitize, reliability=reliability)
        self._ids[key] = len(self._lanes)
        self._keys.append(key)
        self._lanes.append(lane)
        self.metrics.add_key(key)
        return lane

    def supervise(self, key: str,
                  policy: Optional[RestartPolicy] = None) -> ClusterSupervisor:
        """Attach a :class:`ClusterSupervisor` to ``key``'s lane; started
        and stopped with the fabric."""
        kid = self._ids[key]
        if kid in self._supervisors:
            raise ConfigError(f"key {key!r} is already supervised")
        supervisor = ClusterSupervisor(
            self._lanes[kid],
            policy if policy is not None else RestartPolicy())
        self._supervisors[kid] = supervisor
        return supervisor

    def key_id(self, key: str) -> int:
        return self._ids[key]

    def lane(self, key: str) -> AioCluster:
        return self._lanes[self._ids[key]]

    def lanes(self) -> List[AioCluster]:
        return self._lanes

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Start every lane, then every supervisor (idempotent)."""
        if self._started:
            return
        if not self._lanes:
            raise ConfigError("AioFabric has no keys")
        self._started = True
        for lane in self._lanes:
            await lane.start()
        for supervisor in self._supervisors.values():
            await supervisor.start()

    async def stop(self) -> None:
        """Stop supervisors first (so repairs do not race shutdown), then
        every lane."""
        for supervisor in self._supervisors.values():
            await supervisor.stop()
        for lane in self._lanes:
            await lane.stop()
        self._started = False

    # -- token access --------------------------------------------------------

    async def acquire(self, key: str, node: int,
                      timeout: Optional[float] = None) -> None:
        """Await the token for ``node`` on ``key``'s lane, recording the
        wait in the per-key metrics.  Timed-out acquires count as requests
        with no grant."""
        kid = self._ids[key]
        self.metrics.on_request(kid)
        loop = asyncio.get_running_loop()
        started = loop.time()
        await self._lanes[kid].acquire(node, timeout=timeout)
        waited = loop.time() - started
        self.metrics.on_grant(kid, waited, waited)

    def release(self, key: str, node: int) -> None:
        """Release the token held by ``node`` on ``key``'s lane."""
        self._lanes[self._ids[key]].release(node)

    def lock(self, key: str, node: int, timeout: Optional[float] = None):
        """``async with fabric.lock(key, node):`` critical section."""
        return _KeyedLock(self, key, node, timeout)

    # -- reporting -----------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Fabric-level acquire-latency roll-up (see ``metrics.summary``)."""
        return self.metrics.summary()


class _KeyedLock:
    """Async context manager pairing a metered acquire with its release."""

    def __init__(self, fabric: AioFabric, key: str, node: int,
                 timeout: Optional[float]) -> None:
        self._fabric = fabric
        self._key = key
        self._node = node
        self._timeout = timeout

    async def __aenter__(self) -> int:
        await self._fabric.acquire(self._key, self._node,
                                   timeout=self._timeout)
        return self._node

    async def __aexit__(self, exc_type, exc, tb) -> None:
        self._fabric.release(self._key, self._node)
