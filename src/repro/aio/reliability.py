"""Reliable delivery over the lossy asyncio transport.

The protocol model splits messages into *expensive* ones the network must
never lose (token, loans, regeneration) and *cheap* ones that may vanish
(searches, probes, heartbeats).  The discrete-event simulator simply
exempts expensive messages from loss; a real network offers no such
favour.  :class:`ReliableChannel` closes the gap: it is the per-node
reliability sublayer that makes the expensive class actually reliable over
an unreliable link.

Mechanics (classic ARQ, kept deterministic for virtual-time replay):

- every expensive payload rides a :class:`DataFrame` carrying a **per-link
  sequence number** and the sender's **incarnation** (bumped each time a
  supervised node restarts, so a reborn receiver never confuses old and
  new streams);
- frames themselves are *cheap* on the wire — droppable, duplicable — the
  channel supplies the reliability end-to-end;
- the receiver acks every data frame (including re-seen ones) and
  **dedups** by ``(sender, incarnation, seq)`` with a compacted watermark,
  so the protocol core sees each payload at most once per incarnation;
- the sender retransmits unacked frames on a timeout with **exponential
  backoff plus seeded jitter**, up to a **bounded retry budget**; a frame
  that exhausts its budget is surrendered via ``on_give_up`` (the token it
  may carry is then genuinely lost — which is precisely the failure the
  census/regeneration machinery exists to repair);
- cheap payloads bypass the channel entirely (the protocols tolerate
  their loss by design, and framing them would only add traffic).

All accounting lands in a :class:`~repro.metrics.counters.ReliabilityCounters`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.aio.transport import AioTransport
from repro.metrics.counters import ReliabilityCounters

__all__ = ["DataFrame", "AckFrame", "ReliabilityConfig", "ReliableChannel"]


@dataclass(frozen=True)
class DataFrame:
    """Wire envelope for one expensive payload (cheap on the wire)."""

    seq: int
    incarnation: int
    payload: object

    reliable = False


@dataclass(frozen=True)
class AckFrame:
    """Receiver's acknowledgement of one :class:`DataFrame` (cheap)."""

    seq: int
    incarnation: int

    reliable = False


@dataclass
class ReliabilityConfig:
    """Retransmission policy.

    ``rto`` of 0 means "derive from the transport delay" (four one-way
    delays: request + ack plus slack).  ``max_retries`` bounds the budget:
    a frame is surrendered after that many retransmissions.
    """

    rto: float = 0.0
    backoff: float = 2.0
    max_rto: float = 1.0
    jitter: float = 0.25
    max_retries: int = 10

    def resolved_rto(self, transport_delay: float) -> float:
        if self.rto > 0:
            return self.rto
        return max(4.0 * transport_delay, 1e-4)


class ReliableChannel:
    """Per-node ARQ sublayer between a protocol driver and the transport."""

    def __init__(
        self,
        node_id: int,
        transport: AioTransport,
        incarnation: int = 0,
        config: Optional[ReliabilityConfig] = None,
        rng: Optional[random.Random] = None,
        counters: Optional[ReliabilityCounters] = None,
    ) -> None:
        self.node_id = node_id
        self.transport = transport
        self.incarnation = incarnation
        self.config = config if config is not None else ReliabilityConfig()
        self.rng = rng if rng is not None else random.Random(node_id)
        self.counters = counters if counters is not None else ReliabilityCounters()
        #: ``hook(src, dst, payload)`` for frames whose retry budget ran out.
        self.on_give_up: List[Callable[[int, int, object], None]] = []
        self._next_seq: Dict[int, int] = {}                # dst -> next seq
        self._unacked: Dict[Tuple[int, int], _Pending] = {}  # (dst, seq)
        # Receive side, per sender: (incarnation, watermark, out-of-order set).
        self._seen: Dict[int, Tuple[int, int, Set[int]]] = {}
        self._stopped = False

    # -- send side ---------------------------------------------------------------

    def send(self, dst: int, msg: object) -> None:
        """Send ``msg`` to ``dst``: framed + retransmitted when expensive,
        raw fire-and-forget when cheap."""
        if not getattr(msg, "reliable", True):
            self.transport.send(self.node_id, dst, msg)
            return
        seq = self._next_seq.get(dst, 0) + 1
        self._next_seq[dst] = seq
        frame = DataFrame(seq=seq, incarnation=self.incarnation, payload=msg)
        pending = _Pending(dst, frame)
        self._unacked[(dst, seq)] = pending
        self.counters.data_frames += 1
        self.transport.send(self.node_id, dst, frame)
        self._arm(pending)

    def _arm(self, pending: "_Pending") -> None:
        import asyncio

        cfg = self.config
        base = cfg.resolved_rto(self.transport.delay)
        delay = min(base * (cfg.backoff ** pending.attempts), cfg.max_rto)
        delay *= 1.0 + cfg.jitter * self.rng.random()
        loop = asyncio.get_running_loop()
        pending.timer = loop.call_later(
            delay, self._on_timeout, pending.dst, pending.frame.seq
        )

    def _on_timeout(self, dst: int, seq: int) -> None:
        pending = self._unacked.get((dst, seq))
        if pending is None or self._stopped:
            return
        if pending.attempts >= self.config.max_retries:
            del self._unacked[(dst, seq)]
            self.counters.give_ups += 1
            for hook in self.on_give_up:
                hook(self.node_id, dst, pending.frame.payload)
            return
        pending.attempts += 1
        self.counters.retransmits += 1
        self.transport.send(self.node_id, dst, pending.frame)
        self._arm(pending)

    # -- receive side ------------------------------------------------------------

    def on_frame(self, src: int, frame: object) -> Optional[object]:
        """Handle an inbound frame.  Returns the payload to hand to the
        protocol core, or None when the frame was an ack or a duplicate."""
        if isinstance(frame, AckFrame):
            pending = self._unacked.pop((src, frame.seq), None)
            if pending is not None and pending.timer is not None:
                pending.timer.cancel()
            return None
        if not isinstance(frame, DataFrame):
            return frame  # not channel traffic; pass through untouched
        # Always (re-)ack: the original ack may have been lost.
        self.counters.acks += 1
        self.transport.send(
            self.node_id, src, AckFrame(seq=frame.seq,
                                        incarnation=frame.incarnation))
        inc, low, seen = self._seen.get(src, (frame.incarnation, 0, set()))
        if inc != frame.incarnation:
            # The sender restarted: its sequence space starts over.
            inc, low, seen = frame.incarnation, 0, set()
        if frame.seq <= low or frame.seq in seen:
            self.counters.dedup_drops += 1
            self._seen[src] = (inc, low, seen)
            return None
        seen.add(frame.seq)
        while low + 1 in seen:
            low += 1
            seen.discard(low)
        self._seen[src] = (inc, low, seen)
        return frame.payload

    # -- durable receive state ---------------------------------------------------

    def export_recv_state(self) -> Dict[int, Tuple[int, int, Set[int]]]:
        """The per-sender dedup state (incarnation, watermark, out-of-order
        set).  This is **durable** across a node restart: in a real
        deployment the watermark is advanced synchronously with accepting
        a frame (one integer per peer — a trivial WAL).  Without it, a
        retransmission of a frame the node accepted *and acted on* before
        crashing would be re-accepted by the reborn node — resurrecting,
        e.g., an already-forwarded token at its original epoch, which no
        epoch fence could retire."""
        return {src: (inc, low, set(seen))
                for src, (inc, low, seen) in self._seen.items()}

    def restore_recv_state(
            self, state: Dict[int, Tuple[int, int, Set[int]]]) -> None:
        """Adopt a previous incarnation's dedup state (see
        :meth:`export_recv_state`)."""
        for src, (inc, low, seen) in state.items():
            self._seen[src] = (inc, low, set(seen))

    # -- lifecycle ---------------------------------------------------------------

    def stop(self) -> None:
        """Cancel every retransmission timer (the node is going down)."""
        self._stopped = True
        for pending in self._unacked.values():
            if pending.timer is not None:
                pending.timer.cancel()
        self._unacked.clear()

    @property
    def inflight(self) -> int:
        """Frames sent but not yet acknowledged."""
        return len(self._unacked)


class _Pending:
    """One unacknowledged frame and its retransmission state."""

    __slots__ = ("dst", "frame", "attempts", "timer")

    def __init__(self, dst: int, frame: DataFrame) -> None:
        self.dst = dst
        self.frame = frame
        self.attempts = 0
        self.timer = None
