"""Asyncio driver for sans-IO protocol cores.

Runs one core as a coroutine: messages are awaited from the transport
inbox, timers are ``loop.call_later`` handles, and application events are
fanned out to subscribers — the same contract as the discrete-event driver,
so every core runs unchanged in real time.

The driver is also the seam where the fault-tolerant runtime plugs in:

- an optional :class:`~repro.aio.reliability.ReliableChannel` frames every
  expensive outgoing message and dedups inbound frames, so the core sees
  exactly the at-most-once stream it was designed for;
- ``on_control`` interceptors consume runtime-internal messages (e.g.
  supervisor heartbeats) before they can reach — and confuse — the core;
- ``on_send_msg`` hooks observe every **logical** protocol send (once per
  payload, never per retransmission) and ``on_handled`` hooks fire after a
  delivered payload has been fully processed — together they give the
  invariant oracle the quiescent points it needs.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, Hashable, List, Optional

from repro.aio.reliability import ReliableChannel
from repro.aio.transport import AioTransport
from repro.core.base import ProtocolCore
from repro.core.effects import CancelTimer, Deliver, Effect, Send, SetTimer, Trace
from repro.errors import SimulationError
from repro.lint.sanitizer import ClusterSanitizer

__all__ = ["AioNodeDriver"]


class AioNodeDriver:
    """Runs one protocol core on the asyncio event loop.

    An attached :class:`~repro.lint.sanitizer.ClusterSanitizer` (shared
    across the cluster's drivers) audits cluster safety invariants after
    every handled event; see ``REPRO_SANITIZE``.
    """

    def __init__(
        self,
        transport: AioTransport,
        core: ProtocolCore,
        sanitizer: Optional[ClusterSanitizer] = None,
        channel: Optional[ReliableChannel] = None,
    ) -> None:
        self.transport = transport
        self.core = core
        self.node_id = core.node_id
        self.sanitizer = sanitizer
        self.channel = channel
        self.crashed = False
        if sanitizer is not None:
            sanitizer.register(core)
        self._inbox = transport.attach(self.node_id)
        self._timers: Dict[Hashable, asyncio.TimerHandle] = {}
        self._subscribers: List[Callable[[int, str, tuple, float], None]] = []
        #: ``hook(src, msg) -> bool`` — True consumes the message before
        #: it reaches the core (supervisor heartbeats, runtime control).
        self.on_control: List[Callable[[int, object], bool]] = []
        #: ``hook(src, dst, msg)`` — every logical protocol send.
        self.on_send_msg: List[Callable[[int, int, object], None]] = []
        #: ``hook(src, msg)`` — a delivered payload was fully processed.
        self.on_handled: List[Callable[[int, object], None]] = []
        self._task: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    def subscribe(self, callback: Callable[[int, str, tuple, float], None]) -> None:
        """Register ``callback(node_id, kind, payload, now)`` for
        application events."""
        self._subscribers.append(callback)

    async def start(self) -> None:
        """Run the core's start handler and begin consuming the inbox."""
        self._loop = asyncio.get_running_loop()
        self._apply(self.core.on_start(self._now()), "on_start")
        self._task = asyncio.create_task(self._run(), name=f"node-{self.node_id}")

    async def stop(self) -> None:
        """Cancel the consumer task, all timers, and any retransmissions."""
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        if self.channel is not None:
            self.channel.stop()
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        self.transport.detach(self.node_id)

    def request(self) -> None:
        """The application at this node asks for the token."""
        if self.crashed:
            return
        self._apply(self.core.on_request(self._now()), "on_request")

    def release(self) -> None:
        """The application releases a held grant."""
        if self.crashed:
            return
        self._apply(self.core.on_release(self._now()), "on_release")

    # -- internals -----------------------------------------------------------

    def _now(self) -> float:
        loop = self._loop or asyncio.get_event_loop()
        return loop.time()

    async def _run(self) -> None:
        while True:
            src, raw = await self._inbox.get()
            msg = raw
            if self.channel is not None:
                msg = self.channel.on_frame(src, raw)
                if msg is None:
                    continue  # ack, or a deduplicated retransmission
            if self._consume_control(src, msg):
                continue
            self._apply(self.core.on_message(src, msg, self._now()),
                        "on_message", msg)
            for hook in self.on_handled:
                hook(src, msg)

    def _consume_control(self, src: int, msg: object) -> bool:
        for hook in self.on_control:
            if hook(src, msg):
                return True
        # Runtime-internal traffic must never reach the core: cores raise
        # on unknown message types by design.
        return type(msg).__name__ == "HeartbeatMsg"

    def _on_timer(self, key: Hashable) -> None:
        self._timers.pop(key, None)
        self._apply(self.core.on_timer(key, self._now()), "on_timer", key)

    def _send(self, dst: int, msg: object) -> None:
        for hook in self.on_send_msg:
            hook(self.node_id, dst, msg)
        if self.channel is not None:
            self.channel.send(dst, msg)
        else:
            self.transport.send(self.node_id, dst, msg)

    def _apply(
        self, effects: List[Effect], origin: str = "<direct>", payload: object = None
    ) -> None:
        for effect in effects:
            if isinstance(effect, Send):
                self._send(effect.dst, effect.msg)
            elif isinstance(effect, SetTimer):
                previous = self._timers.pop(effect.key, None)
                if previous is not None:
                    previous.cancel()
                loop = self._loop or asyncio.get_event_loop()
                self._timers[effect.key] = loop.call_later(
                    effect.delay * self._timer_scale(), self._on_timer, effect.key
                )
            elif isinstance(effect, CancelTimer):
                handle = self._timers.pop(effect.key, None)
                if handle is not None:
                    handle.cancel()
            elif isinstance(effect, Deliver):
                for callback in self._subscribers:
                    callback(self.node_id, effect.kind, effect.payload, self._now())
            elif isinstance(effect, Trace):
                pass
            else:
                raise SimulationError(f"unknown effect {effect!r}")
        if self.sanitizer is not None:
            self.sanitizer.after_apply(self.core, origin, payload, self._now())

    def _timer_scale(self) -> float:
        """Core timers are expressed in message-delay units; scale them to
        the transport's real-time delay."""
        return max(self.transport.delay, 1e-6)
