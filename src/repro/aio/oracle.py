"""Invariant oracle for the asyncio runtime.

:class:`AioInvariantOracle` runs the PR-4 network-wide safety checks
(:class:`~repro.fuzz.oracle.InvariantOracle`) against a live
:class:`~repro.aio.cluster.AioCluster` instead of the discrete-event
simulator.  The checks themselves — per-epoch token conservation, shadow
history differential, trap/search stamp consistency — are inherited
unchanged; only the *wiring* differs:

- **logical sends** are observed at the driver seam
  (``driver.on_send_msg``), which fires exactly once per protocol payload
  — never per :class:`~repro.aio.reliability.DataFrame` retransmission —
  so a retransmitted token does not double-count as two in-flight units;
- **in-flight lineage** is settled at *terminal* events only: the core
  fully handled the payload (``driver.on_handled``), the reliability
  channel surrendered it (``on_give_up``), or the transport dropped an
  unframed reliable message (``on_drop``).  Settling floors at zero:
  under crash/restart a payload can be both given up *and* later
  delivered by a wire copy, and the floor keeps that benign;
- **conservation is checked at quiescent points**: after a handled
  delivery, when every send the handler emitted has been counted — the
  asyncio analogue of checking after ``_deliver`` completes in the sim;
- **violations are captured, not raised**, by default: the hooks run deep
  inside node coroutines, where an exception would kill one node task
  asymmetrically instead of failing the run.  The chaos runner inspects
  :attr:`violation` after the schedule completes.

Known over-count: a lineage payload whose wire frame evaporates *after*
its sender crashed (channel stopped, so no give-up will ever fire) stays
in the in-flight ledger.  That is deliberate — phantom units at stale
epochs are harmless to the newest-epoch check, while under-counting could
mask a real duplication.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.aio.cluster import AioCluster
from repro.aio.driver import AioNodeDriver
from repro.core.messages import LoanMsg
from repro.fuzz.oracle import InvariantOracle, OracleViolation, _LINEAGE

__all__ = ["AioInvariantOracle", "CorruptionTolerantOracle"]


class AioInvariantOracle(InvariantOracle):
    """PR-4 invariant checks re-wired onto the asyncio runtime."""

    def __init__(self, cluster: AioCluster, protocol: str = "",
                 capture: bool = True) -> None:
        # Never strict: the whole point of the aio runtime is schedules
        # that *can* destroy the token.
        super().__init__(cluster, protocol=protocol, strict=False)
        self.capture = capture
        self.violation: Optional[OracleViolation] = None

    # -- wiring ---------------------------------------------------------------

    def attach(self) -> None:
        if self._attached:
            return
        self._attached = True
        self.cluster.transport.on_drop.append(self._on_transport_drop)
        self.cluster.on_driver.append(self._wire_driver)
        for node, driver in self.cluster.drivers.items():
            self._wire_driver(node, driver)

    def _wire_driver(self, node: int, driver: AioNodeDriver) -> None:
        driver.on_send_msg.append(self._on_send)
        driver.on_handled.append(self._on_handled)
        driver.on_control.append(self._make_loan_peek(node))
        driver.subscribe(self._on_app_event)
        if driver.channel is not None:
            driver.channel.on_give_up.append(self._on_give_up)
        # (Re)sync the shadow history with the core we now observe: a
        # restarted node's restored ``last_visit`` *is* its observable
        # history (the pre-crash tail is genuinely forgotten).
        self._seen[node] = getattr(driver.core, "last_visit", -1)

    def _make_loan_peek(self, node: int):
        def peek(src: int, msg: object) -> bool:
            # Mirror the borrower's ring contact before the core runs
            # (the sim oracle does this in ``_deliver``): accepting a loan
            # extends H_x to the lender's clock, unless epoch-fenced.
            if isinstance(msg, LoanMsg) and msg.requester == node:
                core = self.cluster.drivers[node].core
                if getattr(msg, "epoch", 0) >= getattr(core, "epoch", 0):
                    self._seen[node] = msg.clock
            return False  # observe only; never consume

        return peek

    # -- terminal events ------------------------------------------------------

    def _settle(self, epoch: int) -> None:
        count = self._inflight.get(epoch, 0)
        if count > 1:
            self._inflight[epoch] = count - 1
        else:
            self._inflight.pop(epoch, None)

    def _on_handled(self, src: int, msg: object) -> None:
        if isinstance(msg, _LINEAGE):
            self._settle(getattr(msg, "epoch", 0))
            self._check_conservation()

    def _on_give_up(self, src: int, dst: int, payload: object) -> None:
        if isinstance(payload, _LINEAGE):
            self._settle(getattr(payload, "epoch", 0))
            self._lineage_lost += 1
            self._check_conservation()

    def _on_transport_drop(self, src: int, dst: int, msg: object,
                           reason: str) -> None:
        # Only an *unframed* reliable lineage message dies at the transport
        # (no channel to retransmit it).  Dropped DataFrames are
        # non-terminal: the ARQ either recovers them or gives up above.
        if isinstance(msg, _LINEAGE):
            self._settle(getattr(msg, "epoch", 0))
            self._lineage_lost += 1

    # -- reporting ------------------------------------------------------------

    def _fail(self, invariant: str, detail: str, **context) -> None:
        try:
            context.setdefault("now", asyncio.get_running_loop().time())
        except RuntimeError:
            context.setdefault("now", -1.0)
        violation = OracleViolation(invariant, detail, context)
        if self.capture:
            if self.violation is None:
                self.violation = violation
            return
        raise violation


class CorruptionTolerantOracle(AioInvariantOracle):
    """Unit counting only, for runs that inject arbitrary-state corruption.

    A corrupted history violates every semantic check by construction —
    shadow divergence, hop clocks, stamp snapshots carry no signal when
    the state they model was just scrambled — so corruption runs keep the
    lineage ledger (final-census convergence verdicts need it) and drop
    the rest.  The convergence judgment itself lives with the harness
    (chaos/wire), which checks the single-token predicate after the
    stabilization window."""

    def _check_token_send(self, src: int, dst: int, msg: object) -> None:
        return

    def _check_gimme_send(self, src: int, dst: int, msg: object) -> None:
        return

    def _check_conservation(self) -> None:
        self.checks += 1
