"""Asyncio cluster: the real-time counterpart of
:class:`repro.core.cluster.Cluster`, plus dynamic membership.

Nodes run as coroutines on one event loop.  ``acquire``/``release`` give
awaitable token access (the mutual-exclusion surface the apps build on),
and ``join``/``leave`` exercise the paper's Section 5 dynamic-membership
sketch: the authoritative :class:`~repro.faults.membership.MembershipService`
versions the ring; cores adopt new views immediately (in a distributed
deployment the view would ride :class:`~repro.core.messages.MembershipMsg`
updates — an approximate view only degrades search performance, never
safety, because grants are keyed by node id).
"""

from __future__ import annotations

import asyncio
import random
from typing import Dict, List, Optional

from repro.aio.driver import AioNodeDriver
from repro.aio.transport import AioTransport
from repro.core.config import ProtocolConfig
from repro.errors import ConfigError, MembershipError
from repro.faults.membership import MembershipService, RingView
from repro.lint.sanitizer import ClusterSanitizer, sanitize_enabled

__all__ = ["AioCluster"]


class AioCluster:
    """Asyncio-driven token-passing cluster with awaitable grants."""

    def __init__(
        self,
        protocol: str,
        n: int,
        seed: int = 0,
        config: Optional[ProtocolConfig] = None,
        delay: float = 0.001,
        loss_rate: float = 0.0,
        sanitize: Optional[bool] = None,
    ) -> None:
        if n < 1:
            raise ConfigError(f"n must be >= 1, got {n}")
        from repro.core.cluster import _registry

        registry = _registry()
        if protocol not in registry:
            raise ConfigError(
                f"unknown protocol {protocol!r}; choose from {sorted(registry)}"
            )
        self.protocol = protocol
        self._factory = registry[protocol]
        self.n = n
        self.rng = random.Random(seed)
        self.config = config if config is not None else ProtocolConfig()
        self.config.n = n
        self.config.hold_until_release = True
        self.config.validate()
        self.transport = AioTransport(delay=delay, loss_rate=loss_rate, rng=self.rng)
        enabled = sanitize_enabled() if sanitize is None else sanitize
        self.sanitizer = ClusterSanitizer() if enabled else None
        self.membership = MembershipService(range(n))
        self.drivers: Dict[int, AioNodeDriver] = {}
        self._grant_waiters: Dict[int, List[asyncio.Future]] = {}
        self._grant_log: List[int] = []
        self._next_id = n
        self._started = False
        for node_id in range(n):
            self._make_driver(node_id)
        self.membership.subscribe(self._on_view_change)

    def _make_driver(self, node_id: int) -> AioNodeDriver:
        core = self._factory(node_id, self.config)
        core.ring = self.membership.view
        driver = AioNodeDriver(self.transport, core, sanitizer=self.sanitizer)
        driver.subscribe(self._on_app_event)
        self.drivers[node_id] = driver
        return driver

    def _on_view_change(self, view: RingView) -> None:
        for driver in self.drivers.values():
            driver.core.ring = view

    def _on_app_event(self, node: int, kind: str, payload: tuple, now: float) -> None:
        if kind == "granted":
            self._grant_log.append(node)
            waiters = self._grant_waiters.get(node)
            if not waiters:
                return
            # One grant admits exactly one waiter (FIFO).  If others are
            # queued on the same node, re-arm the request so the core
            # serves them on the next release.
            future = waiters.pop(0)
            if not waiters:
                del self._grant_waiters[node]
            if not future.done():
                future.set_result(node)
            if node in self._grant_waiters:
                driver = self.drivers.get(node)
                if driver is not None:
                    driver.request()

    # -- lifecycle -----------------------------------------------------------------

    async def start(self) -> None:
        """Start every node (idempotent)."""
        if self._started:
            return
        self._started = True
        for driver in list(self.drivers.values()):
            await driver.start()

    async def stop(self) -> None:
        """Stop every node."""
        for driver in list(self.drivers.values()):
            await driver.stop()
        self._started = False

    # -- token access ------------------------------------------------------------------

    async def acquire(self, node: int, timeout: Optional[float] = None) -> None:
        """Await the token for ``node`` (mutual-exclusion entry)."""
        driver = self.drivers.get(node)
        if driver is None:
            raise MembershipError(f"node {node} is not a member")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._grant_waiters.setdefault(node, []).append(future)
        driver.request()
        await asyncio.wait_for(future, timeout)

    def release(self, node: int) -> None:
        """Release the token held by ``node`` (mutual-exclusion exit)."""
        driver = self.drivers.get(node)
        if driver is None:
            raise MembershipError(f"node {node} is not a member")
        driver.release()

    def lock(self, node: int, timeout: Optional[float] = None):
        """``async with cluster.lock(node):`` critical-section helper."""
        return _Lock(self, node, timeout)

    @property
    def grant_order(self) -> List[int]:
        """Nodes in the order they were granted the token — the cluster's
        total order (used by the broadcast app)."""
        return list(self._grant_log)

    # -- membership ------------------------------------------------------------------------

    async def join(self, sponsor: Optional[int] = None) -> int:
        """Add a fresh node to the ring; returns its id."""
        node_id = self._next_id
        self._next_id += 1
        # Grow the config ceiling so new ids validate; geometry itself
        # always follows the ring view.
        self.config.n = max(self.config.n, node_id + 1)
        driver = self._make_driver(node_id)
        self.membership.join(node_id, sponsor=sponsor)
        if self._started:
            await driver.start()
        return node_id

    async def leave(self, node: int) -> None:
        """Remove ``node`` from the ring.  The node must not hold the token
        (wait for quiescence or release first)."""
        driver = self.drivers.get(node)
        if driver is None:
            raise MembershipError(f"node {node} is not a member")
        core = driver.core
        deadline = 200
        while (getattr(core, "has_token", False)
               or getattr(core, "lent_to", None) is not None):
            await asyncio.sleep(self.transport.delay)
            deadline -= 1
            if deadline <= 0:
                raise MembershipError(
                    f"node {node} still holds the token; cannot leave"
                )
        self.membership.leave(node)
        await driver.stop()
        if self.sanitizer is not None:
            self.sanitizer.unregister(node)
        del self.drivers[node]


class _Lock:
    """Async context manager for the critical section."""

    def __init__(self, cluster: AioCluster, node: int, timeout: Optional[float]) -> None:
        self._cluster = cluster
        self._node = node
        self._timeout = timeout

    async def __aenter__(self) -> int:
        await self._cluster.acquire(self._node, timeout=self._timeout)
        return self._node

    async def __aexit__(self, exc_type, exc, tb) -> None:
        self._cluster.release(self._node)
