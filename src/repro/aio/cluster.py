"""Asyncio cluster: the real-time counterpart of
:class:`repro.core.cluster.Cluster`, plus dynamic membership and the
crash/restart surface the fault-tolerant runtime is built on.

Nodes run as coroutines on one event loop.  ``acquire``/``release`` give
awaitable token access (the mutual-exclusion surface the apps build on),
``join``/``leave`` exercise the paper's Section 5 dynamic-membership
sketch, and ``crash_node``/``restart_node`` are the crash-stop/rebirth
primitives the :class:`~repro.aio.supervisor.ClusterSupervisor` drives:
a crashed node loses its volatile state and its inbox; a restarted node
comes back under a fresh core (optionally restored from a supervisor
snapshot) and a bumped reliability incarnation, and immediately re-arms
any acquires that were pending across the outage.

The authoritative :class:`~repro.faults.membership.MembershipService`
versions the ring; cores adopt new views immediately (in a distributed
deployment the view would ride :class:`~repro.core.messages.MembershipMsg`
updates — an approximate view only degrades search performance, never
safety, because grants are keyed by node id).
"""

from __future__ import annotations

import asyncio
import random
from typing import Dict, List, Optional

from repro.aio.driver import AioNodeDriver
from repro.aio.reliability import ReliabilityConfig, ReliableChannel
from repro.aio.transport import AioTransport
from repro.core.config import ProtocolConfig
from repro.errors import ConfigError, MembershipError
from repro.faults.membership import MembershipService, RingView
from repro.lint.sanitizer import ClusterSanitizer, sanitize_enabled
from repro.metrics.counters import MessageCounters, ReliabilityCounters

__all__ = ["AioCluster"]


class AioCluster:
    """Asyncio-driven token-passing cluster with awaitable grants."""

    def __init__(
        self,
        protocol: str,
        n: int,
        seed: int = 0,
        config: Optional[ProtocolConfig] = None,
        delay: float = 0.001,
        loss_rate: float = 0.0,
        dup_rate: float = 0.0,
        sanitize: Optional[bool] = None,
        reliability: Optional[ReliabilityConfig] = None,
        transport: Optional[AioTransport] = None,
    ) -> None:
        if n < 1:
            raise ConfigError(f"n must be >= 1, got {n}")
        from repro.core.cluster import _registry

        registry = _registry()
        if protocol not in registry:
            raise ConfigError(
                f"unknown protocol {protocol!r}; choose from {sorted(registry)}"
            )
        self.protocol = protocol
        self._factory = registry[protocol]
        self.n = n
        self._seed = seed
        self.rng = random.Random(seed)
        self.config = config if config is not None else ProtocolConfig()
        self.config.n = n
        self.config.hold_until_release = True
        self.config.validate()
        if transport is not None:
            # An injected transport (e.g. the real-socket
            # repro.wire.WireTransport) arrives fully configured; the
            # delay/loss_rate/dup_rate arguments are ignored in its favor.
            self.transport = transport
        else:
            self.transport = AioTransport(delay=delay, loss_rate=loss_rate,
                                          dup_rate=dup_rate, rng=self.rng)
        enabled = sanitize_enabled() if sanitize is None else sanitize
        self.sanitizer = ClusterSanitizer() if enabled else None
        self.reliability = reliability
        self.reliability_counters = (
            ReliabilityCounters() if reliability is not None else None
        )
        self.messages = MessageCounters()
        self.membership = MembershipService(range(n))
        #: ``hook(node_id, driver)`` — fired whenever a driver is (re)built
        #: (initial construction, restart, join).  The supervisor and the
        #: aio invariant oracle use this to re-wire their per-driver hooks
        #: onto the fresh incarnation.
        self.on_driver: List = []
        self.drivers: Dict[int, AioNodeDriver] = {}
        self._incarnations: Dict[int, int] = {}
        self._recv_states: Dict[int, Dict] = {}
        self._grant_waiters: Dict[int, List[asyncio.Future]] = {}
        self._grant_log: List[int] = []
        self._next_id = n
        self._started = False
        for node_id in range(n):
            self._make_driver(node_id)
        self.membership.subscribe(self._on_view_change)

    def _make_driver(self, node_id: int,
                     restore: Optional[Dict] = None) -> AioNodeDriver:
        core = self._factory(node_id, self.config)
        core.ring = self.membership.view
        if node_id in self._incarnations:
            # Rebuilt cores must never *own* the token by construction.
            # The factory gives the configured initial holder (node 0 by
            # default) ``has_token=True`` — correct at cluster birth, but a
            # reborn node 0 would resurrect a stale token at its original
            # epoch, with no fence able to retire it.  Ownership after a
            # restart only ever arrives over the wire or via regeneration.
            core.has_token = False
            core.lent_to = None
            core.last_visit = -1
        if restore:
            for attr, value in restore.items():
                setattr(core, attr, value)
        channel = None
        if self.reliability is not None:
            incarnation = self._incarnations.get(node_id, 0)
            channel = ReliableChannel(
                node_id, self.transport,
                incarnation=incarnation,
                config=self.reliability,
                rng=random.Random(
                    self._seed * 1_000_003 + node_id * 101 + incarnation),
                counters=self.reliability_counters,
            )
            saved = self._recv_states.pop(node_id, None)
            if saved:
                channel.restore_recv_state(saved)
        driver = AioNodeDriver(self.transport, core,
                               sanitizer=self.sanitizer, channel=channel)
        driver.subscribe(self._on_app_event)
        driver.on_send_msg.append(self.messages.on_send)
        self.drivers[node_id] = driver
        for hook in self.on_driver:
            hook(node_id, driver)
        return driver

    def _on_view_change(self, view: RingView) -> None:
        for driver in self.drivers.values():
            driver.core.ring = view

    def _on_app_event(self, node: int, kind: str, payload: tuple, now: float) -> None:
        if kind == "granted":
            self._grant_log.append(node)
            waiters = self._grant_waiters.get(node)
            if not waiters:
                # Nobody is waiting (the acquire timed out, or the grant
                # answers a pre-crash request): hand the token straight
                # back, otherwise it would sit here forever in
                # hold-until-release mode.  Deferred to the next loop
                # iteration — we are inside the driver's effect
                # application right now.
                driver = self.drivers.get(node)
                if driver is not None:
                    asyncio.get_running_loop().call_soon(driver.release)
                return
            # One grant admits exactly one waiter (FIFO).  If others are
            # queued on the same node, re-arm the request so the core
            # serves them on the next release.
            future = waiters.pop(0)
            if not waiters:
                del self._grant_waiters[node]
            if not future.done():
                future.set_result(node)
            if node in self._grant_waiters:
                driver = self.drivers.get(node)
                if driver is not None:
                    driver.request()

    # -- lifecycle -----------------------------------------------------------------

    async def start(self) -> None:
        """Start every node (idempotent).  A transport with an async
        ``start`` (the real-socket one binds its listeners there) is
        started first, so node ``on_start`` traffic has somewhere to go."""
        if self._started:
            return
        self._started = True
        transport_start = getattr(self.transport, "start", None)
        if transport_start is not None:
            await transport_start()
        for driver in list(self.drivers.values()):
            await driver.start()

    async def stop(self) -> None:
        """Stop every node (and close an injected transport that owns
        real resources, via its async ``aclose``)."""
        for driver in list(self.drivers.values()):
            await driver.stop()
        transport_close = getattr(self.transport, "aclose", None)
        if transport_close is not None:
            await transport_close()
        self._started = False

    # -- token access ------------------------------------------------------------------

    async def acquire(self, node: int, timeout: Optional[float] = None) -> None:
        """Await the token for ``node`` (mutual-exclusion entry)."""
        driver = self.drivers.get(node)
        if driver is None:
            raise MembershipError(f"node {node} is not a member")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._grant_waiters.setdefault(node, []).append(future)
        driver.request()
        try:
            await asyncio.wait_for(future, timeout)
        except (asyncio.TimeoutError, asyncio.CancelledError):
            # Regression guard: a timed-out waiter must not linger in the
            # queue, where it would silently swallow the node's next grant.
            waiters = self._grant_waiters.get(node)
            if waiters is not None and future in waiters:
                waiters.remove(future)
                if not waiters:
                    del self._grant_waiters[node]
            raise

    def release(self, node: int) -> None:
        """Release the token held by ``node`` (mutual-exclusion exit)."""
        driver = self.drivers.get(node)
        if driver is None:
            raise MembershipError(f"node {node} is not a member")
        driver.release()

    def lock(self, node: int, timeout: Optional[float] = None):
        """``async with cluster.lock(node):`` critical-section helper."""
        return _Lock(self, node, timeout)

    @property
    def grant_order(self) -> List[int]:
        """Nodes in the order they were granted the token — the cluster's
        total order (used by the broadcast app)."""
        return list(self._grant_log)

    def pending_acquires(self, node: int) -> int:
        """Waiters currently queued on ``node`` (diagnostics/tests)."""
        return len(self._grant_waiters.get(node, ()))

    # -- crash / restart -----------------------------------------------------------

    async def crash_node(self, node: int) -> None:
        """Crash-stop ``node``: its volatile core state, timers, channel
        and inbox are lost; in-flight messages to it are dropped.  The node
        stays a ring member (a crash is not a leave)."""
        driver = self.drivers.get(node)
        if driver is None:
            raise MembershipError(f"node {node} is not a member")
        if driver.crashed:
            return
        driver.crashed = True
        await driver.stop()
        if driver.channel is not None:
            # The ARQ dedup watermark is durable (see
            # ReliableChannel.export_recv_state): a reborn node must not
            # re-accept frames its previous incarnation already acted on.
            self._recv_states[node] = driver.channel.export_recv_state()
        self.transport.crash(node)
        if self.sanitizer is not None:
            self.sanitizer.mark_crashed(node)

    async def restart_node(self, node: int,
                           restore: Optional[Dict] = None) -> AioNodeDriver:
        """Bring a crashed node back under a fresh core.

        ``restore`` is an attribute dict (a supervisor snapshot) applied to
        the new core — typically ``epoch``/``last_visit``/``clock`` so the
        reborn node rejoins the current token lineage instead of accepting
        stale history.  Acquires that were pending across the outage are
        re-armed immediately."""
        driver = self.drivers.get(node)
        if driver is None:
            raise MembershipError(f"node {node} is not a member")
        if not driver.crashed:
            raise MembershipError(f"node {node} is not crashed")
        self.transport.recover(node)
        if self.sanitizer is not None:
            # Forget the dead incarnation entirely: the fresh core starts a
            # new clock history (possibly restored from a snapshot).
            self.sanitizer.unregister(node)
        self._incarnations[node] = self._incarnations.get(node, 0) + 1
        fresh = self._make_driver(node, restore=restore)
        if self._started:
            await fresh.start()
        if self._grant_waiters.get(node):
            fresh.request()
        return fresh

    def crashed_nodes(self) -> List[int]:
        """Currently crash-stopped members."""
        return sorted(n for n, d in self.drivers.items() if d.crashed)

    # -- membership ------------------------------------------------------------------------

    async def join(self, sponsor: Optional[int] = None) -> int:
        """Add a fresh node to the ring; returns its id."""
        node_id = self._next_id
        self._next_id += 1
        # Grow the config ceiling so new ids validate; geometry itself
        # always follows the ring view.
        self.config.n = max(self.config.n, node_id + 1)
        driver = self._make_driver(node_id)
        self.membership.join(node_id, sponsor=sponsor)
        if self._started:
            await driver.start()
        return node_id

    async def leave(self, node: int, timeout: Optional[float] = None) -> None:
        """Remove ``node`` from the ring.  The node must not hold the token;
        we wait up to ``timeout`` wall-clock seconds for it to pass the
        token on (default: 200 transport delays, floored at 0.2 s)."""
        driver = self.drivers.get(node)
        if driver is None:
            raise MembershipError(f"node {node} is not a member")
        if timeout is None:
            timeout = max(200 * self.transport.delay, 0.2)
        core = driver.core
        loop = asyncio.get_running_loop()
        started = loop.time()
        poll = max(self.transport.delay, 1e-4)
        while (getattr(core, "has_token", False)
               or getattr(core, "lent_to", None) is not None):
            elapsed = loop.time() - started
            if elapsed >= timeout:
                raise MembershipError(
                    f"node {node} still holds the token after "
                    f"{elapsed:.3f}s (timeout {timeout:.3f}s); cannot leave"
                )
            await asyncio.sleep(poll)
        self.membership.leave(node)
        await driver.stop()
        if self.sanitizer is not None:
            self.sanitizer.unregister(node)
        del self.drivers[node]


class _Lock:
    """Async context manager for the critical section."""

    def __init__(self, cluster: AioCluster, node: int, timeout: Optional[float]) -> None:
        self._cluster = cluster
        self._node = node
        self._timeout = timeout

    async def __aenter__(self) -> int:
        await self._cluster.acquire(self._node, timeout=self._timeout)
        return self._node

    async def __aexit__(self, exc_type, exc, tb) -> None:
        self._cluster.release(self._node)
