"""Node supervision for the asyncio runtime: heartbeats, phi-accrual
failure detection, state snapshots, and automatic restart.

The paper's Section 5 sketch assumes "a time-out based detection is
available" and leaves the constant to the deployment.
:class:`ClusterSupervisor` supplies that detection *adaptively*:

- every live node emits periodic :class:`~repro.core.messages.HeartbeatMsg`
  beacons to its ring neighbours **over the real transport** (so crashes
  and partitions silence them exactly like any other traffic), and a
  :class:`~repro.faults.detector.PhiAccrualDetector` per peer turns the
  observed arrival cadence into a continuous suspicion level;
- a second detector per node watches **token sightings** (the rotating
  token is its own liveness signal) and is wired into the fault-tolerant
  core's ``regen_delay_provider``, replacing the fixed ``regen_timeout``
  with an adaptive one — fast rings suspect token loss in milliseconds,
  slow rings wait proportionally;
- peers whose phi crosses the threshold are pushed into every live core's
  ``suspected`` set, so rotation and loans route around them (and are
  cleared again once their heartbeats resume);
- a crashed node is restarted after ``restart_delay``, restored from the
  supervisor's last **snapshot** of its durable state (epoch, visit clock
  — never ``has_token``: a crashed holder's token is genuinely lost and
  the census/regeneration machinery recovers it), under a bumped
  reliability incarnation, up to ``max_restarts`` times.

Everything is deterministic under :mod:`repro.aio.virtualtime`: the
supervisor introduces no randomness of its own.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.aio.cluster import AioCluster
from repro.aio.driver import AioNodeDriver
from repro.core.messages import HeartbeatMsg
from repro.faults.detector import PhiAccrualDetector

__all__ = ["RestartPolicy", "ClusterSupervisor"]

#: Durable core attributes worth carrying across a restart.  ``has_token``
#: is deliberately absent: resurrecting a crashed holder's token would
#: duplicate it whenever regeneration already ran.
_SNAPSHOT_ATTRS = ("epoch", "last_visit", "clock", "round_no")


@dataclass
class RestartPolicy:
    """Supervision knobs.  Zero-valued timings scale with the transport
    delay (heartbeats every 5 delays, restart after 20)."""

    restart_delay: float = 0.0
    max_restarts: int = 5
    heartbeat_interval: float = 0.0
    phi_threshold: float = 8.0
    snapshot_restore: bool = True


class ClusterSupervisor:
    """Watches an :class:`AioCluster`, restarts crashed nodes, and feeds
    adaptive failure detection into the protocol cores."""

    def __init__(self, cluster: AioCluster,
                 policy: Optional[RestartPolicy] = None) -> None:
        self.cluster = cluster
        self.policy = policy if policy is not None else RestartPolicy()
        delay = cluster.transport.delay
        self.interval = (self.policy.heartbeat_interval
                         if self.policy.heartbeat_interval > 0
                         else max(5.0 * delay, 1e-3))
        self.restart_delay = (self.policy.restart_delay
                              if self.policy.restart_delay > 0
                              else max(20.0 * delay, 2e-3))
        #: Silence after which a peer with too little phi history is
        #: suspected anyway (covers crash-before-first-heartbeat).
        self.fallback_timeout = 10.0 * self.interval
        #: Liveness detectors, one per peer, fed by heartbeat arrivals.
        self.peer_detectors: Dict[int, PhiAccrualDetector] = {}
        #: Token-cadence detectors, one per node, fed by token sightings;
        #: wired into ``core.regen_delay_provider``.
        self.token_detectors: Dict[int, PhiAccrualDetector] = {}
        self.suspected: Set[int] = set()
        self.restarts: Dict[int, int] = {}
        self.events: List[dict] = []
        self._snapshots: Dict[int, dict] = {}
        self._restart_at: Dict[int, float] = {}
        self._hb_seq = 0
        self._task: Optional[asyncio.Task] = None
        self._started_at = 0.0

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Wire every driver (current and future) and begin supervising."""
        if self._task is not None:
            return
        loop = asyncio.get_running_loop()
        self._started_at = loop.time()
        self.cluster.on_driver.append(self._wire)
        for node, driver in self.cluster.drivers.items():
            self._wire(node, driver)
        self._task = asyncio.create_task(self._monitor(), name="supervisor")

    async def stop(self) -> None:
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None

    # -- wiring ---------------------------------------------------------------

    def _wire(self, node: int, driver: AioNodeDriver) -> None:
        driver.on_control.append(self._heartbeat_sink)
        driver.subscribe(self._on_app_event)
        core = driver.core
        if hasattr(core, "regen_delay_provider"):
            detector = self.token_detectors.setdefault(
                node, PhiAccrualDetector())
            core.regen_delay_provider = self._make_delay_provider(detector)
        if hasattr(core, "alive_provider"):
            core.alive_provider = self._alive_view

    def _heartbeat_sink(self, src: int, msg: object) -> bool:
        if not isinstance(msg, HeartbeatMsg):
            return False
        detector = self.peer_detectors.get(msg.sender)
        if detector is None:
            detector = self.peer_detectors[msg.sender] = PhiAccrualDetector()
        detector.observe(asyncio.get_running_loop().time())
        return True  # runtime traffic: never reaches the core

    def _make_delay_provider(self, detector: PhiAccrualDetector):
        def provider() -> Optional[float]:
            # Core timers run in message-delay units; convert the adaptive
            # silence threshold (seconds) through the driver's scale.
            if detector.samples < 3:
                return None  # not enough cadence history: use the config
            timeout = detector.timeout_after(self.policy.phi_threshold)
            if timeout is None:
                return None
            return timeout / max(self.cluster.transport.delay, 1e-6)

        return provider

    def _alive_view(self) -> set:
        """Peers with fresh liveness evidence (heartbeats flowing, not
        crash-stopped) — wired into every core's ``alive_provider`` so
        routing trusts heartbeats over stale suspicion gossip."""
        return {peer for peer, driver in self.cluster.drivers.items()
                if not driver.crashed and peer not in self.suspected}

    def _on_app_event(self, node: int, kind: str, payload: tuple,
                      now: float) -> None:
        if kind == "token_visit":
            detector = self.token_detectors.setdefault(
                node, PhiAccrualDetector())
            detector.observe(now)
        if kind in ("token_visit", "granted", "regenerated"):
            self._snapshot(node)

    def _snapshot(self, node: int) -> None:
        driver = self.cluster.drivers.get(node)
        if driver is None or driver.crashed:
            return
        core = driver.core
        snap = {attr: getattr(core, attr)
                for attr in _SNAPSHOT_ATTRS if hasattr(core, attr)}
        if hasattr(core, "suspected"):
            snap["suspected"] = set(core.suspected)
        self._snapshots[node] = snap

    def snapshot_of(self, node: int) -> Optional[dict]:
        """The latest durable-state snapshot taken for ``node``."""
        snap = self._snapshots.get(node)
        if snap is None:
            return None
        return {k: (set(v) if isinstance(v, set) else v)
                for k, v in snap.items()}

    # -- supervision loop -----------------------------------------------------

    async def _monitor(self) -> None:
        while True:
            await asyncio.sleep(self.interval)
            now = asyncio.get_running_loop().time()
            self._send_heartbeats()
            self._update_suspicions(now)
            await self._maybe_restart(now)

    def _send_heartbeats(self) -> None:
        view = self.cluster.membership.view
        self._hb_seq += 1
        for node, driver in list(self.cluster.drivers.items()):
            if driver.crashed or node not in view:
                continue
            beat = HeartbeatMsg(
                sender=node, seq=self._hb_seq,
                last_visit=getattr(driver.core, "last_visit", -1))
            for dst in {view.succ(node), view.pred(node)} - {node}:
                self.cluster.transport.send(node, dst, beat)

    def _is_suspicious(self, peer: int, now: float) -> bool:
        detector = self.peer_detectors.get(peer)
        if detector is None:
            return now - self._started_at > self.fallback_timeout
        if detector.samples < 2:
            last = (detector.last_arrival if detector.last_arrival is not None
                    else self._started_at)
            return now - last > self.fallback_timeout
        return detector.suspicious(now, self.policy.phi_threshold)

    def _update_suspicions(self, now: float) -> None:
        view = self.cluster.membership.view
        current = {peer for peer in self.cluster.drivers
                   if peer in view and self._is_suspicious(peer, now)}
        newly, cleared = current - self.suspected, self.suspected - current
        self.suspected = current
        for peer in sorted(newly):
            self.events.append({"t": now, "event": "suspect", "node": peer})
        for peer in sorted(cleared):
            self.events.append({"t": now, "event": "clear", "node": peer})
        # Sync every live core to the heartbeat-proven view on *every*
        # tick, not just on transitions: token messages gossip their
        # holder's ``suspects`` tuple, so one stale in-flight token can
        # re-infect the ring right after a one-shot clear — and a node
        # everyone still suspects is skipped by rotation and loans
        # forever, starving it.  Heartbeats are the fresher evidence.
        alive = {peer for peer, driver in self.cluster.drivers.items()
                 if peer in view and peer not in current
                 and not driver.crashed}
        for node, driver in self.cluster.drivers.items():
            core = driver.core
            if driver.crashed or not hasattr(core, "suspected"):
                continue
            core.suspected |= current - {node}
            core.suspected -= alive

    async def _maybe_restart(self, now: float) -> None:
        for node in sorted(self.suspected):
            driver = self.cluster.drivers.get(node)
            if driver is None or not driver.crashed:
                continue  # partitioned, not dead: nothing to restart
            self._restart_at.setdefault(node, now + self.restart_delay)
        for node, deadline in sorted(self._restart_at.items()):
            driver = self.cluster.drivers.get(node)
            if driver is None or not driver.crashed:
                self._restart_at.pop(node, None)
                continue
            if now < deadline:
                continue
            self._restart_at.pop(node, None)
            if self.restarts.get(node, 0) >= self.policy.max_restarts:
                self.events.append(
                    {"t": now, "event": "gave_up", "node": node})
                continue
            self.restarts[node] = self.restarts.get(node, 0) + 1
            restore = (self.snapshot_of(node)
                       if self.policy.snapshot_restore else None)
            await self.cluster.restart_node(node, restore=restore)
            # Fresh liveness history, primed with "seen now": the reborn
            # node gets a full fallback window to resume heartbeats.
            detector = PhiAccrualDetector()
            detector.observe(now)
            self.peer_detectors[node] = detector
            self.events.append(
                {"t": now, "event": "restart", "node": node,
                 "attempt": self.restarts[node],
                 "restored": restore is not None})

    # -- reporting ------------------------------------------------------------

    def status(self) -> Dict[int, dict]:
        """Per-node supervision view (diagnostics, chaos reports)."""
        try:
            now = asyncio.get_running_loop().time()
        except RuntimeError:
            now = self._started_at
        out: Dict[int, dict] = {}
        for node, driver in sorted(self.cluster.drivers.items()):
            detector = self.peer_detectors.get(node)
            out[node] = {
                "crashed": driver.crashed,
                "suspected": node in self.suspected,
                "restarts": self.restarts.get(node, 0),
                "phi": round(detector.phi(now), 3) if detector else 0.0,
            }
        return out
