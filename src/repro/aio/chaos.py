"""Chaos testing for the fault-tolerant asyncio runtime.

The fuzz harness (PR 4) stresses the protocol *cores* under the
discrete-event simulator; this module stresses the *runtime* — supervisor,
reliability channel, adaptive detection — under the real asyncio stack,
kept bit-exact by :mod:`repro.aio.virtualtime`.

A :class:`ChaosCase` pins a complete scenario as plain data: node count,
transport parameters, an acquire schedule, and a fault plan (crashes that
the supervisor must detect and repair, partitions that the quorum gate
must park through).  ``run_chaos_case`` executes it on a virtual clock
with the :class:`~repro.aio.oracle.AioInvariantOracle` attached and
demands **bounded recovery**: every scheduled acquire must be granted
within ``recovery_window`` virtual seconds of the later of its issue time
and the last injected fault.  A run fails on an oracle violation, a dead
node coroutine, or an unrecovered acquire.

Determinism contract: the same case always produces the same
:class:`ChaosResult`, including the CRC32 checksum over the logical
protocol send stream (framing retransmissions and heartbeats excluded) —
the virtual clock removes wall-time jitter and every RNG is derived from
the case seed.
"""

from __future__ import annotations

import asyncio
import json
import zlib
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.aio.cluster import AioCluster
from repro.aio.oracle import AioInvariantOracle, CorruptionTolerantOracle
from repro.aio.reliability import ReliabilityConfig
from repro.aio.supervisor import ClusterSupervisor, RestartPolicy
from repro.aio.virtualtime import run_virtual
from repro.core.config import ProtocolConfig
from repro.errors import ConfigError
from repro.faults.corruption import CORRUPTION_KINDS, corrupt_core
from repro.fuzz.rng import child_rng

__all__ = [
    "SCHEMA",
    "PROFILES",
    "ChaosCase",
    "ChaosResult",
    "generate_chaos_case",
    "run_chaos_case",
    "chaos_run",
]

SCHEMA = "repro-chaos-case/v1"

PROFILES = ("crash", "partition", "mixed", "corrupt")

_FAULT_OPS = ("crash", "partition", "heal", "heal_all", "corrupt")


@dataclass
class ChaosCase:
    """One self-contained chaos scenario (serializable, replayable)."""

    seed: int
    profile: str = "mixed"
    #: Protocol core under test.  ``corrupt`` faults require the
    #: stabilizing core — every other core has no convergence story.
    protocol: str = "fault_tolerant"
    n: int = 5
    delay: float = 0.01
    loss_rate: float = 0.02
    #: Every acquire must be granted within this many virtual seconds of
    #: ``max(issue time, last fault time)`` — the bounded-recovery SLO.
    recovery_window: float = 8.0
    requests: List[Tuple[float, int]] = field(default_factory=list)
    faults: List[Dict] = field(default_factory=list)
    horizon: float = 30.0
    label: str = ""

    def validate(self) -> "ChaosCase":
        if self.n < 2:
            raise ConfigError(f"chaos needs n >= 2, got {self.n}")
        if self.recovery_window <= 0:
            raise ConfigError("recovery_window must be positive")
        for t, node in self.requests:
            if not 0 <= node < self.n:
                raise ConfigError(f"request targets unknown node {node}")
        for fault in self.faults:
            op = fault.get("op")
            if op not in _FAULT_OPS:
                raise ConfigError(f"unknown fault op {fault!r}")
            if op == "crash" and not 0 <= fault.get("a", -1) < self.n:
                raise ConfigError(f"crash targets unknown node {fault!r}")
            if op == "corrupt":
                if self.protocol != "stabilizing":
                    raise ConfigError(
                        "corrupt faults need protocol='stabilizing' "
                        f"(got {self.protocol!r}): no other core converges "
                        "from arbitrary states")
                if fault.get("what") not in CORRUPTION_KINDS:
                    raise ConfigError(
                        f"unknown corruption kind in fault {fault!r}")
                if not 0 <= fault.get("a", -1) < self.n:
                    raise ConfigError(
                        f"corrupt targets unknown node {fault!r}")
        return self

    # -- (de)serialization ----------------------------------------------------

    def to_dict(self) -> Dict:
        doc = asdict(self)
        doc["requests"] = [list(r) for r in self.requests]
        doc["schema"] = SCHEMA
        return doc

    @classmethod
    def from_dict(cls, doc: Dict) -> "ChaosCase":
        doc = dict(doc)
        schema = doc.pop("schema", SCHEMA)
        if schema != SCHEMA:
            raise ConfigError(f"unsupported chaos schema {schema!r}")
        doc.pop("outcome", None)
        doc["requests"] = [(float(t), int(node)) for t, node in
                           doc.get("requests", [])]
        return cls(**doc).validate()

    def save(self, path: str, outcome: Optional[Dict] = None) -> None:
        doc = self.to_dict()
        if outcome is not None:
            doc["outcome"] = outcome
        with open(path, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> Tuple["ChaosCase", Optional[Dict]]:
        with open(path) as handle:
            doc = json.load(handle)
        outcome = doc.get("outcome")
        return cls.from_dict(doc), outcome

    def with_(self, **changes) -> "ChaosCase":
        return replace(self, **changes)


@dataclass
class ChaosResult:
    """Outcome of one chaos scenario."""

    ok: bool
    checksum: str
    grants: int = 0
    requests: int = 0
    sends: int = 0
    restarts: int = 0
    give_ups: int = 0
    max_wait: float = 0.0
    duration: float = 0.0
    unrecovered: List[Dict] = field(default_factory=list)
    violation: Optional[Dict] = None

    def outcome(self) -> Dict:
        """The stable portion recorded in counterexample files."""
        doc: Dict = {"ok": self.ok, "checksum": self.checksum,
                     "grants": self.grants}
        if self.violation is not None:
            doc["invariant"] = self.violation.get("invariant")
        if self.unrecovered:
            doc["unrecovered"] = len(self.unrecovered)
        return doc

    def matches(self, recorded: Dict) -> bool:
        mine = self.outcome()
        return all(mine.get(k) == v for k, v in recorded.items())


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def _runtime_config(protocol: str = "fault_tolerant") -> ProtocolConfig:
    """The fault-tolerant stack a chaos run exercises.  Timer fields are
    in message-delay units (the driver scales them by the transport
    delay); ``regen_timeout`` is the *fallback* — once the ring has
    cadence history, the supervisor's phi provider overrides it."""
    config = ProtocolConfig(
        trap_gc="rotation",
        single_outstanding=True,
        retry_timeout=25.0,
        regen_timeout=30.0,
        census_window=8.0,
        loan_timeout=80.0,
        regen_quorum=True,
    )
    if protocol == "stabilizing":
        # The watchdog census would race the quorum-gated demand-driven
        # regeneration; its staggered cadence sits well above it.
        config.stabilize_watch = 50.0
        config.stabilize_reset = True
    return config


async def _execute(case: ChaosCase) -> ChaosResult:
    corrupting = any(f["op"] == "corrupt" for f in case.faults)
    cluster = AioCluster(
        case.protocol, case.n, seed=case.seed,
        config=_runtime_config(case.protocol),
        delay=case.delay, loss_rate=case.loss_rate,
        reliability=ReliabilityConfig(),
        # The at-rest sanitizer would (rightly) reject the injected
        # illegal states; convergence is the corrupt run's verdict.
        sanitize=False if corrupting else None,
    )
    oracle_cls = CorruptionTolerantOracle if corrupting else AioInvariantOracle
    oracle = oracle_cls(cluster, protocol=case.protocol)
    oracle.attach()
    supervisor = ClusterSupervisor(cluster, RestartPolicy(
        restart_delay=20.0 * case.delay,
        heartbeat_interval=5.0 * case.delay,
        phi_threshold=8.0,
    ))

    checksum = 0
    sends = 0

    def _digest(src: int, dst: int, msg: object) -> None:
        nonlocal checksum, sends
        sends += 1
        now = asyncio.get_running_loop().time()
        record = f"{now:.9f}|{src}|{dst}|{msg!r}"
        checksum = zlib.crc32(record.encode("utf-8"), checksum)

    def _wire_digest(node: int, driver) -> None:
        driver.on_send_msg.append(_digest)

    cluster.on_driver.append(_wire_digest)
    for node, driver in cluster.drivers.items():
        _wire_digest(node, driver)

    await cluster.start()
    await supervisor.start()

    last_fault_t = max((float(f["t"]) for f in case.faults), default=0.0)

    async def _apply_fault(fault: Dict) -> None:
        await asyncio.sleep(float(fault["t"]))
        op = fault["op"]
        if op == "crash":
            await cluster.crash_node(fault["a"])
        elif op == "partition":
            cluster.transport.split(fault["group_a"], fault["group_b"])
        elif op == "heal":
            cluster.transport.heal(fault["a"], fault["b"])
        elif op == "heal_all":
            cluster.transport.heal_all()
        elif op == "corrupt":
            corrupt_core(cluster.drivers[fault["a"]].core,
                         fault["what"], int(fault["arg"]), n=case.n)

    grants = 0
    waits: List[float] = []
    unrecovered: List[Dict] = []

    async def _request(t: float, node: int) -> None:
        nonlocal grants
        await asyncio.sleep(t)
        loop = asyncio.get_running_loop()
        start = loop.time()
        deadline = max(start, last_fault_t) + case.recovery_window
        try:
            await cluster.acquire(node, timeout=max(deadline - start, 1e-3))
        except asyncio.TimeoutError:
            unrecovered.append({
                "node": node, "t": round(t, 6),
                "waited": round(loop.time() - start, 6),
            })
            return
        grants += 1
        waits.append(loop.time() - start)
        await asyncio.sleep(case.delay)  # brief critical section
        cluster.release(node)

    tasks = [asyncio.create_task(_apply_fault(f)) for f in case.faults]
    tasks += [asyncio.create_task(_request(t, node))
              for t, node in case.requests]
    await asyncio.gather(*tasks)
    await asyncio.sleep(10.0 * case.delay)  # drain in-flight traffic
    if corrupting:
        # Leave the stabilizing machinery its convergence window, then
        # demand the single-token predicate at the horizon cut.
        loop = asyncio.get_running_loop()
        settle = case.horizon - loop.time()
        if settle > 0:
            await asyncio.sleep(settle)

    violation: Optional[Dict] = None
    if corrupting and oracle.violation is None:
        # Convergence verdict, two halves.  Reduction: at most one token
        # at rest (the census is blind to in-flight copies, so only > 1
        # is a breach at the cut).  Liveness: a probe acquire must still
        # be granted — a deleted-and-never-regenerated token fails here.
        census = sum(
            1 for driver in cluster.drivers.values()
            if getattr(driver.core, "has_token", False)
            or getattr(driver.core, "lent_to", None) is not None)
        if census > 1:
            violation = {
                "type": "OracleViolation", "invariant": "convergence",
                "detail": f"{census} tokens at the horizon cut after "
                          f"corruption (want at most 1 at rest)"}
        else:
            try:
                await cluster.acquire(0, timeout=case.recovery_window)
                cluster.release(0)
            except asyncio.TimeoutError:
                violation = {
                    "type": "OracleViolation", "invariant": "convergence",
                    "detail": "post-corruption probe acquire timed out: "
                              "the token never came back"}
    if oracle.violation is not None:
        exc = oracle.violation
        violation = {"type": "OracleViolation", "invariant": exc.invariant,
                     "detail": exc.detail,
                     "context": {k: repr(v) for k, v in exc.context.items()}}
    else:
        # A node coroutine that died (sanitizer violation, core bug) is a
        # finding too — it just surfaces as a dead task, not a raise.
        for node, driver in cluster.drivers.items():
            task = driver._task
            if task is None or not task.done() or task.cancelled():
                continue
            exc = task.exception()
            if exc is not None:
                violation = {"type": type(exc).__name__,
                             "invariant": type(exc).__name__,
                             "detail": f"node {node} coroutine died: {exc}"}
                break

    duration = asyncio.get_running_loop().time()
    restarts = sum(supervisor.restarts.values())
    give_ups = (cluster.reliability_counters.give_ups
                if cluster.reliability_counters is not None else 0)
    await supervisor.stop()
    await cluster.stop()
    return ChaosResult(
        ok=violation is None and not unrecovered,
        checksum=f"{checksum:08x}",
        grants=grants,
        requests=len(case.requests),
        sends=sends,
        restarts=restarts,
        give_ups=give_ups,
        max_wait=round(max(waits), 6) if waits else 0.0,
        duration=round(duration, 6),
        unrecovered=unrecovered,
        violation=violation,
    )


def run_chaos_case(case: ChaosCase) -> ChaosResult:
    """Execute one chaos scenario to completion on a fresh virtual clock."""
    case.validate()
    return run_virtual(_execute(case))


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------

def _draw_crashes(rng, n: int) -> List[Dict]:
    faults = [{"t": round(rng.uniform(1.0, 2.5), 3),
               "op": "crash", "a": rng.randrange(n)}]
    if rng.random() < 0.5:
        survivors = [x for x in range(n) if x != faults[0]["a"]]
        # Spaced so the supervisor repairs the first before the second
        # lands — at most one node is ever down, preserving the quorum.
        faults.append({"t": round(faults[0]["t"] + rng.uniform(2.0, 3.5), 3),
                       "op": "crash", "a": rng.choice(survivors)})
    return faults


def _draw_partition(rng, n: int) -> List[Dict]:
    minority = 1 if n < 5 else rng.choice((1, 2))
    group_a = sorted(rng.sample(range(n), minority))
    group_b = [x for x in range(n) if x not in group_a]
    t = round(rng.uniform(1.0, 2.5), 3)
    return [
        {"t": t, "op": "partition", "group_a": group_a, "group_b": group_b},
        {"t": round(t + rng.uniform(1.5, 3.0), 3), "op": "heal_all"},
    ]


def generate_chaos_case(root_seed: int, index: int,
                        profile: str = "mixed") -> ChaosCase:
    """Derive the ``index``-th chaos scenario of a run from the root seed
    — the same triple always yields the same case."""
    if profile not in PROFILES:
        raise ConfigError(
            f"unknown profile {profile!r}; choose from {PROFILES}")
    mode = profile
    if profile == "mixed":
        mode = ("crash", "partition", "crash+partition")[index % 3]
    rng = child_rng(root_seed, "chaos", index, mode)

    n = rng.choice((4, 5, 6, 7))
    requests = sorted(
        (round(rng.uniform(0.5, 5.0), 3), rng.randrange(n))
        for _ in range(rng.randrange(3, 7))
    )
    faults: List[Dict] = []
    if "crash" in mode:
        faults.extend(_draw_crashes(rng, n))
    if "partition" in mode:
        faults.extend(_draw_partition(rng, n))
    if mode == "corrupt":
        for _ in range(rng.randrange(1, 3)):
            faults.append({"t": round(rng.uniform(1.0, 2.5), 3),
                           "op": "corrupt", "a": rng.randrange(n),
                           "what": rng.choice(CORRUPTION_KINDS),
                           "arg": rng.randrange(1 << 16)})
    faults.sort(key=lambda f: f["t"])
    last_t = max(f["t"] for f in faults)
    case = ChaosCase(
        seed=root_seed + index,
        profile=profile,
        protocol="stabilizing" if mode == "corrupt" else "fault_tolerant",
        n=n,
        delay=0.01,
        loss_rate=rng.choice((0.0, 0.02, 0.05)),
        recovery_window=8.0,
        requests=requests,
        faults=faults,
        horizon=round(last_t + 10.0, 3),
        label=f"{mode}/n{n}",
    )
    return case.validate()


def chaos_run(root_seed: int, runs: int, profile: str = "mixed",
              on_result: Optional[Callable] = None) -> List[Dict]:
    """The chaos loop: generate and execute ``runs`` scenarios.

    Returns one summary dict per case; ``on_result(index, case, result)``
    fires after each (the CLI uses it for progress and counterexamples)."""
    summaries: List[Dict] = []
    for index in range(runs):
        case = generate_chaos_case(root_seed, index, profile)
        result = run_chaos_case(case)
        summary = {
            "index": index,
            "label": case.label,
            "ok": result.ok,
            "checksum": result.checksum,
            "grants": result.grants,
            "restarts": result.restarts,
        }
        if result.violation is not None:
            summary["violation"] = result.violation
        if result.unrecovered:
            summary["unrecovered"] = result.unrecovered
        summaries.append(summary)
        if on_result is not None:
            on_result(index, case, result)
    return summaries
