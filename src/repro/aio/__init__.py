"""Asyncio runtime: the same sans-IO protocol cores driven in real time,
with awaitable mutual exclusion, dynamic membership, and (since the
fault-tolerance PR) supervised crash-restart, reliable delivery over a
lossy transport, and deterministic virtual-time execution."""

from repro.aio.cluster import AioCluster
from repro.aio.driver import AioNodeDriver
from repro.aio.fabric import AioFabric
from repro.aio.oracle import AioInvariantOracle
from repro.aio.reliability import ReliabilityConfig, ReliableChannel
from repro.aio.supervisor import ClusterSupervisor, RestartPolicy
from repro.aio.transport import AioTransport
from repro.aio.virtualtime import VirtualClock, run_virtual

__all__ = [
    "AioCluster",
    "AioFabric",
    "AioNodeDriver",
    "AioTransport",
    "AioInvariantOracle",
    "ReliabilityConfig",
    "ReliableChannel",
    "ClusterSupervisor",
    "RestartPolicy",
    "VirtualClock",
    "run_virtual",
]
