"""Asyncio runtime: the same sans-IO protocol cores driven in real time,
with awaitable mutual exclusion and dynamic membership."""

from repro.aio.cluster import AioCluster
from repro.aio.driver import AioNodeDriver
from repro.aio.transport import AioTransport

__all__ = ["AioCluster", "AioNodeDriver", "AioTransport"]
