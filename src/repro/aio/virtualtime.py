"""Deterministic virtual time for the asyncio runtime.

Chaos schedules must be **bit-exact reproducible from their seed** — the
same guarantee the discrete-event simulator gives ``repro fuzz``.  Real
wall-clock asyncio cannot provide that: timer firing order depends on OS
scheduling jitter.  :class:`VirtualClock` removes the wall clock from the
picture: it patches a selector event loop so that

- ``loop.time()`` reads a virtual clock instead of the monotonic clock;
- whenever the loop would *block* waiting for the next timer, the virtual
  clock instead jumps forward to that timer instantly.

Because the runtime's transports are purely in-memory (no sockets), the
loop's behaviour is then a deterministic function of the scheduled
callbacks alone: the ready queue is FIFO, the timer heap breaks ties by
insertion order, and no real I/O ever preempts either.  A chaos run under
``run_virtual`` executes identically on every machine, at full CPU speed
(a 10-virtual-second schedule takes milliseconds of wall time).

A genuine deadlock — every task blocked on a queue with no timer armed —
would make a real loop hang forever; the virtual loop raises
:class:`VirtualTimeDeadlock` instead, turning liveness bugs into failures.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, TypeVar

from repro.errors import SimulationError

__all__ = ["VirtualClock", "VirtualTimeDeadlock", "run_virtual"]

T = TypeVar("T")


class VirtualTimeDeadlock(SimulationError):
    """The virtual loop went idle with nothing scheduled: every coroutine
    is blocked on an event that can never fire."""


class VirtualClock:
    """A monotonically advancing virtual clock patched into an event loop."""

    def __init__(self) -> None:
        self.virtual_time = 0.0
        self._patched = False

    def time(self) -> float:
        """Current virtual time (seconds since the loop was patched)."""
        return self.virtual_time

    def patch_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        """Route ``loop.time()`` and the selector's blocking wait through
        the virtual clock.  Only selector-based loops are supported (the
        default on every platform this project targets)."""
        if self._patched:
            raise SimulationError("VirtualClock is already patched into a loop")
        selector = getattr(loop, "_selector", None)
        if selector is None:
            raise SimulationError(
                f"cannot virtualize {type(loop).__name__}: no ._selector"
            )
        self._patched = True
        real_select = selector.select

        def virtual_select(timeout=None):
            if timeout is None:
                # asyncio passes None only when there is no ready callback
                # and no armed timer: a real loop would block forever.
                raise VirtualTimeDeadlock(
                    "virtual event loop is idle with no timer armed: "
                    "all coroutines are blocked on events that cannot fire"
                )
            if timeout > 0:
                # Jump to the next timer instead of sleeping; poll real
                # I/O (the loop's self-pipe) without blocking.
                self.virtual_time += timeout
            return real_select(0)

        selector.select = virtual_select
        loop.time = self.time  # type: ignore[method-assign]


def run_virtual(coro: Awaitable[T]) -> T:
    """``asyncio.run`` on a fresh virtual-time loop.

    The coroutine (and everything it spawns) executes under virtual time:
    ``loop.time()``, ``call_later`` and ``asyncio.sleep`` all follow the
    virtual clock, which advances instantly to the next scheduled event.
    """
    loop = asyncio.new_event_loop()
    clock = VirtualClock()
    clock.patch_loop(loop)
    asyncio.set_event_loop(loop)
    try:
        return loop.run_until_complete(coro)
    finally:
        try:
            _cancel_pending(loop)
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            asyncio.set_event_loop(None)
            loop.close()


def _cancel_pending(loop: asyncio.AbstractEventLoop) -> None:
    """Cancel tasks that outlived the main coroutine (stray consumers)."""
    pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
    if not pending:
        return
    for task in pending:
        task.cancel()
    loop.run_until_complete(
        asyncio.gather(*pending, return_exceptions=True)
    )
