"""In-memory asyncio transport with fault injection.

The real-time twin of :class:`repro.sim.network.Network`: point-to-point
messages between coroutine-driven nodes, with a configurable (real-time)
delay and the same fault surface the discrete-event network exposes —
cheap-message loss and duplication, crashed destinations, and (new for the
fault-tolerant runtime) **directed link partitions**: a blocked link drops
cheap messages and *parks* expensive ones, flushing them when the link
heals, exactly like the simulator.  Every node owns an inbox queue;
``send`` schedules the enqueue after the delay on the running event loop.

Observability hooks (all synchronous, fired in registration order):

- ``on_send(src, dst, msg)`` — every send attempt, **including** ones that
  are subsequently dropped (so counters see the true offered load);
- ``on_deliver(src, dst, msg)`` — a message enqueued into a live inbox;
- ``on_drop(src, dst, msg, reason)`` — a message that will never arrive;
  reasons: ``"loss"``, ``"partition"``, ``"down"``, ``"detached"``.
"""

from __future__ import annotations

import asyncio
import random
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import NetworkError

__all__ = ["AioTransport"]


class AioTransport:
    """Asyncio message bus for protocol nodes, with injectable faults."""

    def __init__(
        self,
        delay: float = 0.001,
        loss_rate: float = 0.0,
        dup_rate: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if delay < 0:
            raise NetworkError(f"delay must be >= 0, got {delay}")
        if not 0.0 <= loss_rate < 1.0:
            raise NetworkError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if not 0.0 <= dup_rate < 1.0:
            raise NetworkError(f"dup_rate must be in [0, 1), got {dup_rate}")
        self.delay = delay
        self.loss_rate = loss_rate
        self.dup_rate = dup_rate
        self.rng = rng if rng is not None else random.Random(0)
        self._inboxes: Dict[int, asyncio.Queue] = {}
        self._down: Set[int] = set()
        self._blocked: Set[Tuple[int, int]] = set()     # directed (src, dst)
        self._parked: List[Tuple[int, int, object]] = []
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0
        self.on_send: List[Callable[[int, int, object], None]] = []
        self.on_deliver: List[Callable[[int, int, object], None]] = []
        self.on_drop: List[Callable[[int, int, object, str], None]] = []

    # -- membership of the bus ----------------------------------------------------

    def attach(self, node_id: int) -> asyncio.Queue:
        """Create and return the inbox queue for ``node_id``."""
        if node_id in self._inboxes:
            raise NetworkError(f"node {node_id} already attached")
        queue: asyncio.Queue = asyncio.Queue()
        self._inboxes[node_id] = queue
        return queue

    def detach(self, node_id: int) -> None:
        """Remove a node's inbox; in-flight messages to it are dropped."""
        self._inboxes.pop(node_id, None)

    # -- fault injection -----------------------------------------------------------

    def crash(self, node_id: int) -> None:
        """Mark a node as crashed: everything sent to it disappears."""
        self._down.add(node_id)

    def recover(self, node_id: int) -> None:
        """Clear a node's crashed flag."""
        self._down.discard(node_id)

    def is_down(self, node_id: int) -> bool:
        """True while the node is marked crashed."""
        return node_id in self._down

    def partition(self, a: int, b: int, symmetric: bool = True) -> None:
        """Block the ``a -> b`` link (both directions when ``symmetric``).

        Blocked links drop cheap messages and park expensive ones until
        :meth:`heal` — the asyncio analogue of the simulator's partition
        semantics."""
        self._blocked.add((a, b))
        if symmetric:
            self._blocked.add((b, a))

    def split(self, group_a, group_b) -> None:
        """Partition every link between two node groups (symmetric)."""
        for a in group_a:
            for b in group_b:
                self.partition(a, b)

    def heal(self, a: int, b: int, symmetric: bool = True) -> None:
        """Unblock ``a -> b`` (both directions when ``symmetric``) and
        flush any parked expensive messages over the healed link(s)."""
        self._blocked.discard((a, b))
        if symmetric:
            self._blocked.discard((b, a))
        self._flush_parked()

    def heal_all(self) -> None:
        """Remove every partition and flush all parked messages."""
        self._blocked.clear()
        self._flush_parked()

    def partitioned(self, a: int, b: int) -> bool:
        """True when the directed ``a -> b`` link is currently blocked."""
        return (a, b) in self._blocked

    def _flush_parked(self) -> None:
        parked, self._parked = self._parked, []
        for src, dst, msg in parked:
            if (src, dst) in self._blocked:
                self._parked.append((src, dst, msg))
            else:
                self._schedule(src, dst, msg)

    # -- data path -----------------------------------------------------------------

    def send(self, src: int, dst: int, msg: object) -> None:
        """Deliver ``msg`` to ``dst`` after the transport delay (subject to
        loss, duplication, partitions, and crashed destinations)."""
        self.sent_count += 1
        for hook in self.on_send:
            hook(src, dst, msg)
        reliable = bool(getattr(msg, "reliable", True))
        if (src, dst) in self._blocked:
            if reliable:
                self._parked.append((src, dst, msg))
            else:
                self._drop(src, dst, msg, "partition")
            return
        if not reliable:
            if self.loss_rate and self.rng.random() < self.loss_rate:
                self._drop(src, dst, msg, "loss")
                return
            if self.dup_rate and self.rng.random() < self.dup_rate:
                self._schedule(src, dst, msg)
        self._schedule(src, dst, msg)

    def _schedule(self, src: int, dst: int, msg: object) -> None:
        loop = asyncio.get_running_loop()
        loop.call_later(self.delay, self._deliver, src, dst, msg)

    def _deliver(self, src: int, dst: int, msg: object) -> None:
        if dst in self._down:
            self._drop(src, dst, msg, "down")
            return
        inbox = self._inboxes.get(dst)
        if inbox is None:
            self._drop(src, dst, msg, "detached")
            return
        self.delivered_count += 1
        for hook in self.on_deliver:
            hook(src, dst, msg)
        inbox.put_nowait((src, msg))

    def _drop(self, src: int, dst: int, msg: object, reason: str) -> None:
        self.dropped_count += 1
        for hook in self.on_drop:
            hook(src, dst, msg, reason)
