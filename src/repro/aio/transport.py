"""In-memory asyncio transport.

The real-time twin of :class:`repro.sim.network.Network`: point-to-point
messages between coroutine-driven nodes, with a configurable (real-time)
delay and the same cheap-message loss injection.  Every node owns an inbox
queue; ``send`` schedules the enqueue after the delay on the running event
loop.
"""

from __future__ import annotations

import asyncio
import random
from typing import Callable, Dict, List, Optional

from repro.errors import NetworkError

__all__ = ["AioTransport"]


class AioTransport:
    """Asyncio message bus for protocol nodes."""

    def __init__(
        self,
        delay: float = 0.001,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if delay < 0:
            raise NetworkError(f"delay must be >= 0, got {delay}")
        if not 0.0 <= loss_rate < 1.0:
            raise NetworkError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.delay = delay
        self.loss_rate = loss_rate
        self.rng = rng if rng is not None else random.Random(0)
        self._inboxes: Dict[int, asyncio.Queue] = {}
        self.sent_count = 0
        self.dropped_count = 0
        self.on_send: List[Callable[[int, int, object], None]] = []

    def attach(self, node_id: int) -> asyncio.Queue:
        """Create and return the inbox queue for ``node_id``."""
        if node_id in self._inboxes:
            raise NetworkError(f"node {node_id} already attached")
        queue: asyncio.Queue = asyncio.Queue()
        self._inboxes[node_id] = queue
        return queue

    def detach(self, node_id: int) -> None:
        """Remove a node's inbox; in-flight messages to it are dropped."""
        self._inboxes.pop(node_id, None)

    def send(self, src: int, dst: int, msg: object) -> None:
        """Deliver ``msg`` to ``dst`` after the transport delay."""
        self.sent_count += 1
        for hook in self.on_send:
            hook(src, dst, msg)
        if not getattr(msg, "reliable", True):
            if self.loss_rate and self.rng.random() < self.loss_rate:
                self.dropped_count += 1
                return
        loop = asyncio.get_running_loop()
        loop.call_later(self.delay, self._deliver, src, dst, msg)

    def _deliver(self, src: int, dst: int, msg: object) -> None:
        inbox = self._inboxes.get(dst)
        if inbox is None:
            self.dropped_count += 1
            return
        inbox.put_nowait((src, msg))
