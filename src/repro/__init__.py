"""repro — a full reproduction of Englert, Rudolph & Shvartsman,
"Developing and Refining an Adaptive Token-Passing Strategy" (2001).

Three layers:

1. :mod:`repro.trs` + :mod:`repro.specs` — the paper's methodology: the
   six protocol specifications as executable Term Rewriting Systems, with
   machine-checked safety (prefix property, token uniqueness) and
   refinement mappings (Lemmas 1-3, Theorem 1).
2. :mod:`repro.core` + :mod:`repro.sim` — the executable protocols
   (ring baseline, linear search, the adaptive binary search, directed /
   push / hybrid variants) over a deterministic discrete-event simulator,
   with :mod:`repro.faults` adding regeneration and dynamic membership.
3. :mod:`repro.apps` + :mod:`repro.aio` — mutual exclusion, totally
   ordered broadcast, and round-robin scheduling, runnable both in
   simulation and on asyncio.

Quickstart::

    from repro import Cluster, FixedRateWorkload

    cluster = Cluster.build("binary_search", n=100, seed=1)
    cluster.add_workload(FixedRateWorkload(mean_interval=10.0))
    cluster.run(rounds=1000)
    print(cluster.responsiveness.average_responsiveness())
"""

from repro.aio import AioCluster, AioFabric
from repro.apps import RoundRobinScheduler, SimMutex, TotalOrderBroadcast
from repro.core import (
    BinarySearchCore,
    Cluster,
    DirectedSearchCore,
    HybridCore,
    LinearSearchCore,
    ProtocolConfig,
    PushCore,
    RingCore,
)
from repro.fabric import RingOfRings, TokenFabric
from repro.faults import FaultTolerantCore, MembershipService, RingView
from repro.metrics import (
    FairnessAuditor,
    KeyedMetricsRegistry,
    MessageCounters,
    ResponsivenessTracker,
)
from repro.workload import (
    BurstyWorkload,
    ClosedLoopKeyedWorkload,
    FixedRateWorkload,
    HotspotWorkload,
    SaturatedWorkload,
    SingleShotWorkload,
    UniformIntervalWorkload,
    ZipfKeyedWorkload,
)

__version__ = "1.0.0"

__all__ = [
    "AioCluster",
    "AioFabric",
    "BinarySearchCore",
    "BurstyWorkload",
    "ClosedLoopKeyedWorkload",
    "Cluster",
    "DirectedSearchCore",
    "FairnessAuditor",
    "FaultTolerantCore",
    "FixedRateWorkload",
    "HotspotWorkload",
    "HybridCore",
    "KeyedMetricsRegistry",
    "LinearSearchCore",
    "MembershipService",
    "MessageCounters",
    "ProtocolConfig",
    "PushCore",
    "ResponsivenessTracker",
    "RingCore",
    "RingOfRings",
    "RingView",
    "TokenFabric",
    "RoundRobinScheduler",
    "SaturatedWorkload",
    "SimMutex",
    "SingleShotWorkload",
    "TotalOrderBroadcast",
    "UniformIntervalWorkload",
    "__version__",
]
