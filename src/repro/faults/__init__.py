"""Failure handling and dynamic membership (paper Section 5).

- :mod:`repro.faults.detector` — who-has census bookkeeping;
- :mod:`repro.faults.regeneration` — :class:`FaultTolerantCore`: time-out
  detection, neighbour election, epoch-guarded token regeneration,
  suspect-skipping rotation, loan reclaim;
- :mod:`repro.faults.membership` — versioned ring views and the
  authoritative membership service for asynchronous join/leave.
"""

from repro.faults.detector import Census
from repro.faults.membership import MembershipService, RingView
from repro.faults.regeneration import FaultTolerantCore

__all__ = ["Census", "FaultTolerantCore", "MembershipService", "RingView"]
