"""Token-loss detection bookkeeping (paper Section 5).

    "If a node x with the token fails, then nothing will happen until some
    other node y needs the token, at which point it will quickly discover
    that the token holder has failed (provided a time-out based detection
    is available)."

:class:`Census` collects the who-has replies a suspicious requester
gathers from the ring and decides (a) whether the token is still alive,
(b) which nodes are unresponsive (suspects), and (c) which surviving node
should mint the replacement — the paper elects the failed holder's
neighbours; operationally that is the first *responder* after the node
with the freshest token sighting, i.e. the successor that would have
received the token next.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

__all__ = ["Census", "PhiAccrualDetector"]

_LN10 = math.log(10.0)


class PhiAccrualDetector:
    """Adaptive accrual failure detection (Hayashibara et al. 2004).

    Instead of a boolean "failed after T seconds", the detector accrues a
    continuous suspicion level phi from the observed inter-arrival times of
    a heartbeat source.  We use the exponential-tail form deployed by
    Cassandra and Akka: with mean inter-arrival ``m``, the probability of
    seeing no arrival for ``t`` seconds is ``exp(-t/m)``, so

        ``phi(t) = -log10 P = t / (m * ln 10)``.

    phi = 1 means "90 % sure it's dead", phi = 8 "99.999999 %".  The
    closed form also inverts cleanly: phi crosses a threshold exactly
    ``threshold * m * ln 10`` after the last arrival, which is what the
    fault-tolerant runtime uses as its **adaptive detection timeout** —
    fast rings suspect in milliseconds, slow rings wait proportionally,
    with no hand-tuned constant in sight.

    The *heartbeat source* need not be a literal heartbeat: the runtime
    feeds one detector per node with **token sightings** (the rotating
    token is its own liveness signal, exactly the paper's demand-driven
    observation) and one per supervised peer with explicit heartbeats.

    Deterministic, windowed, stdlib-only.
    """

    def __init__(self, window: int = 64,
                 min_interval: float = 1e-6) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self.min_interval = min_interval
        self._intervals: Deque[float] = deque(maxlen=window)
        self.last_arrival: Optional[float] = None

    # -- ingestion ----------------------------------------------------------

    def observe(self, now: float) -> None:
        """Record one arrival at time ``now``."""
        if self.last_arrival is not None and now >= self.last_arrival:
            self._intervals.append(
                max(now - self.last_arrival, self.min_interval))
        self.last_arrival = now

    # -- statistics ---------------------------------------------------------

    @property
    def samples(self) -> int:
        """Recorded inter-arrival intervals."""
        return len(self._intervals)

    def mean_interval(self) -> Optional[float]:
        """Windowed mean inter-arrival time (None with < 1 sample)."""
        if not self._intervals:
            return None
        return sum(self._intervals) / len(self._intervals)

    def std_interval(self) -> float:
        """Windowed inter-arrival standard deviation (diagnostics)."""
        if len(self._intervals) < 2:
            return 0.0
        mean = sum(self._intervals) / len(self._intervals)
        var = sum((x - mean) ** 2 for x in self._intervals) / len(self._intervals)
        return math.sqrt(var)

    # -- suspicion ----------------------------------------------------------

    def phi(self, now: float) -> float:
        """Current suspicion level (0.0 while there is no history)."""
        mean = self.mean_interval()
        if mean is None or self.last_arrival is None:
            return 0.0
        elapsed = max(now - self.last_arrival, 0.0)
        return elapsed / (mean * _LN10)

    def suspicious(self, now: float, threshold: float) -> bool:
        """True once phi accrued past ``threshold``."""
        return self.phi(now) >= threshold

    def timeout_after(self, threshold: float) -> Optional[float]:
        """Silence (seconds since the last arrival) at which phi crosses
        ``threshold`` — the adaptive stand-in for a fixed timeout.  None
        while there is no history to adapt to."""
        mean = self.mean_interval()
        if mean is None:
            return None
        return threshold * mean * _LN10


class Census:
    """One round of who-has polling, run by a suspicious requester."""

    def __init__(self, origin: int, probe_seq: int, population: List[int]) -> None:
        self.origin = origin
        self.probe_seq = probe_seq
        #: Everyone polled (ring order), origin excluded.
        self.population = [p for p in population if p != origin]
        self._replies: Dict[int, Tuple[int, bool]] = {}

    def record(self, node: int, last_clock: int, has_token: bool) -> None:
        """Record one reply."""
        self._replies[node] = (last_clock, has_token)

    @property
    def replies(self) -> int:
        """Number of replies received so far."""
        return len(self._replies)

    def complete(self) -> bool:
        """All polled nodes replied."""
        return len(self._replies) == len(self.population)

    def token_alive(self, origin_holds: bool = False) -> bool:
        """Some responder (or the origin itself) claims the token."""
        if origin_holds:
            return True
        return any(has for (_, has) in self._replies.values())

    def suspects(self) -> Set[int]:
        """Polled nodes that did not reply within the census window."""
        return {p for p in self.population if p not in self._replies}

    def freshest(self, origin_clock: int) -> Tuple[int, int]:
        """(node, clock) of the freshest token sighting, origin included."""
        best_node, best_clock = self.origin, origin_clock
        for node, (clock, _) in self._replies.items():
            if clock > best_clock or (clock == best_clock and node < best_node):
                best_node, best_clock = node, clock
        return best_node, best_clock

    def elect_regenerator(self, ring_order: List[int], origin_clock: int) -> Optional[int]:
        """The first *responsive* node after the freshest sighting in ring
        order — the failed holder's surviving successor.  Returns None when
        nobody (not even the origin) is eligible."""
        freshest_node, _ = self.freshest(origin_clock)
        if freshest_node not in ring_order:
            return None
        start = ring_order.index(freshest_node)
        alive = set(self._replies) | {self.origin}
        for step in range(1, len(ring_order) + 1):
            candidate = ring_order[(start + step) % len(ring_order)]
            if candidate in alive:
                return candidate
        return None
