"""Token-loss detection bookkeeping (paper Section 5).

    "If a node x with the token fails, then nothing will happen until some
    other node y needs the token, at which point it will quickly discover
    that the token holder has failed (provided a time-out based detection
    is available)."

:class:`Census` collects the who-has replies a suspicious requester
gathers from the ring and decides (a) whether the token is still alive,
(b) which nodes are unresponsive (suspects), and (c) which surviving node
should mint the replacement — the paper elects the failed holder's
neighbours; operationally that is the first *responder* after the node
with the freshest token sighting, i.e. the successor that would have
received the token next.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

__all__ = ["Census"]


class Census:
    """One round of who-has polling, run by a suspicious requester."""

    def __init__(self, origin: int, probe_seq: int, population: List[int]) -> None:
        self.origin = origin
        self.probe_seq = probe_seq
        #: Everyone polled (ring order), origin excluded.
        self.population = [p for p in population if p != origin]
        self._replies: Dict[int, Tuple[int, bool]] = {}

    def record(self, node: int, last_clock: int, has_token: bool) -> None:
        """Record one reply."""
        self._replies[node] = (last_clock, has_token)

    @property
    def replies(self) -> int:
        """Number of replies received so far."""
        return len(self._replies)

    def complete(self) -> bool:
        """All polled nodes replied."""
        return len(self._replies) == len(self.population)

    def token_alive(self, origin_holds: bool = False) -> bool:
        """Some responder (or the origin itself) claims the token."""
        if origin_holds:
            return True
        return any(has for (_, has) in self._replies.values())

    def suspects(self) -> Set[int]:
        """Polled nodes that did not reply within the census window."""
        return {p for p in self.population if p not in self._replies}

    def freshest(self, origin_clock: int) -> Tuple[int, int]:
        """(node, clock) of the freshest token sighting, origin included."""
        best_node, best_clock = self.origin, origin_clock
        for node, (clock, _) in self._replies.items():
            if clock > best_clock or (clock == best_clock and node < best_node):
                best_node, best_clock = node, clock
        return best_node, best_clock

    def elect_regenerator(self, ring_order: List[int], origin_clock: int) -> Optional[int]:
        """The first *responsive* node after the freshest sighting in ring
        order — the failed holder's surviving successor.  Returns None when
        nobody (not even the origin) is eligible."""
        freshest_node, _ = self.freshest(origin_clock)
        if freshest_node not in ring_order:
            return None
        start = ring_order.index(freshest_node)
        alive = set(self._replies) | {self.origin}
        for step in range(1, len(ring_order) + 1):
            candidate = ring_order[(start + step) % len(ring_order)]
            if candidate in alive:
                return candidate
        return None
