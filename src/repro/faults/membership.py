"""Dynamic ring membership (paper Section 5, future work).

    "It is possible to modify the protocol to handle nodes that
    asynchronously leave and join the group.  The search mechanism needs
    to know those nodes that are halfway, 1/4 way, etc., around the cycle.
    An approximation may be sufficient."

:class:`RingView` is an immutable, versioned ring ordering.  Protocol
cores consult their (possibly stale) view for all geometry — successor,
half-way hop targets, distances — and, exactly as the paper anticipates,
an *approximate* view only degrades search performance, never safety,
because traps, loans and grants are keyed by node id.

:class:`MembershipService` is the authoritative registry: joins and leaves
bump the version and the new view is disseminated to members (in the
asyncio runtime, via cheap :class:`~repro.core.messages.MembershipMsg`
updates; cores adopt any view with a newer version).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.errors import MembershipError

__all__ = ["RingView", "MembershipService"]


class RingView:
    """An immutable ordered ring of node ids with a version number."""

    __slots__ = ("version", "members", "_index")

    def __init__(self, members: Sequence[int], version: int = 0) -> None:
        members = tuple(members)
        if not members:
            raise MembershipError("a ring view needs at least one member")
        if len(set(members)) != len(members):
            raise MembershipError(f"duplicate members in ring view: {members}")
        self.version = version
        self.members = members
        self._index = {node: i for i, node in enumerate(members)}

    # -- geometry ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, node: int) -> bool:
        return node in self._index

    def index(self, node: int) -> int:
        """Ring position of ``node``."""
        try:
            return self._index[node]
        except KeyError:
            raise MembershipError(f"node {node} not in ring view") from None

    def hop(self, node: int, offset: int) -> int:
        """``node⁺ᵒ`` for a signed offset."""
        return self.members[(self.index(node) + offset) % len(self.members)]

    def succ(self, node: int, k: int = 1) -> int:
        """``node⁺ᵏ``."""
        return self.hop(node, k)

    def pred(self, node: int, k: int = 1) -> int:
        """``node⁻ᵏ``."""
        return self.hop(node, -k)

    def across(self, node: int) -> int:
        """The member half-way around the ring from ``node``."""
        return self.hop(node, len(self.members) // 2)

    def distance(self, a: int, b: int) -> int:
        """Clockwise hops from ``a`` to ``b``."""
        return (self.index(b) - self.index(a)) % len(self.members)

    def majority(self) -> int:
        """Smallest strict majority of the current membership — the quorum
        a partition side must reach before regenerating a token."""
        return len(self.members) // 2 + 1

    def fingers(self, node: int) -> List[int]:
        """The logarithmic neighbour set the paper's future-work sketch
        calls for: members 1/2, 1/4, 1/8, … of the way around."""
        out: List[int] = []
        span = len(self.members) // 2
        while span >= 1:
            target = self.hop(node, span)
            if target != node and target not in out:
                out.append(target)
            span //= 2
        return out

    # -- evolution ------------------------------------------------------------------

    def with_joined(self, node: int, after: Optional[int] = None) -> "RingView":
        """A new view with ``node`` inserted (after ``after``, or at the
        end of the ring order)."""
        if node in self._index:
            raise MembershipError(f"node {node} already in ring view")
        members = list(self.members)
        if after is None:
            members.append(node)
        else:
            members.insert(self.index(after) + 1, node)
        return RingView(members, self.version + 1)

    def with_left(self, node: int) -> "RingView":
        """A new view without ``node``."""
        if node not in self._index:
            raise MembershipError(f"node {node} not in ring view")
        if len(self.members) == 1:
            raise MembershipError("cannot remove the last member")
        members = [m for m in self.members if m != node]
        return RingView(members, self.version + 1)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, RingView)
            and self.version == other.version
            and self.members == other.members
        )

    def __hash__(self) -> int:
        return hash((self.version, self.members))

    def __repr__(self) -> str:
        return f"RingView(v{self.version}, {self.members})"


class MembershipService:
    """Authoritative, versioned membership; notifies subscribers on change."""

    def __init__(self, initial_members: Sequence[int]) -> None:
        self._view = RingView(initial_members, version=0)
        self._subscribers: List[Callable[[RingView], None]] = []

    @property
    def view(self) -> RingView:
        """The current authoritative view."""
        return self._view

    def subscribe(self, callback: Callable[[RingView], None]) -> None:
        """Register for view-change notifications (called immediately with
        the current view)."""
        self._subscribers.append(callback)
        callback(self._view)

    def join(self, node: int, sponsor: Optional[int] = None) -> RingView:
        """Insert ``node`` (after ``sponsor`` when given); returns the new
        view."""
        self._view = self._view.with_joined(node, after=sponsor)
        self._notify()
        return self._view

    def leave(self, node: int) -> RingView:
        """Remove ``node``; returns the new view."""
        self._view = self._view.with_left(node)
        self._notify()
        return self._view

    def _notify(self) -> None:
        for callback in self._subscribers:
            callback(self._view)
