"""Arbitrary-state corruption: the fault model of self-stabilization.

Every other fault the repo injects (crash, loss, duplication, partition,
token loss) perturbs a run while keeping each surviving node's *local*
state legal.  Self-stabilization (Dijkstra; Herman's safe-register ring,
arXiv:1101.1680) starts from the opposite assumption: a transient fault
may leave any node in **any** state — two tokens, zero tokens, a hop
clock from the future, a trap queue full of garbage.  The protocol must
converge back to the single-token legitimate states regardless.

:func:`corrupt_core` is that transient fault, reified: a deterministic,
field-by-field perturbation of one node's in-memory protocol state,
parameterized by a corruption *kind* and an integer *argument* so the
same ``(kind, arg)`` pair always produces the same illegal state — fuzz
cases carrying ``corrupt`` faults replay bit-for-bit.  It mutates the
core object directly (no messages, no timers): exactly what a stray
cosmic ray or a restored-from-stale-snapshot process would do.

The injector is deliberately *protocol-agnostic*: it targets the state
fields of the :class:`~repro.core.binary_search.BinarySearchCore` family
(which the fault-tolerant and stabilizing cores extend) and silently
skips fields a given core lacks, so the same schedule can corrupt any
registered core — including non-stabilizing ones, for demonstrating
*why* the stabilizing variant exists.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.messages import GimmeMsg
from repro.errors import ConfigError

__all__ = ["CORRUPTION_KINDS", "corrupt_core"]

#: Every corruption the injector knows.  The fuzz-case schema validates
#: ``corrupt`` faults against this tuple; extend it only with kinds the
#: stabilizing core provably converges from.
CORRUPTION_KINDS = (
    "duplicate_token",   # conjure a token at the victim (k tokens > 1)
    "delete_token",      # erase the victim's token/loan lineage (0 tokens)
    "scramble_clock",    # perturb hop clock and last-visit stamp
    "scramble_epoch",    # shift the victim's epoch fence up or down
    "scramble_stamp",    # corrupt round counter and grant sequencing
    "corrupt_queue",     # garbage the trap store and gimme queue
    "corrupt_served",    # garbage the served-map piggyback carry
)

_KNUTH = 2654435761  # Knuth's multiplicative-hash constant


def _mix(arg: int, salt: int) -> int:
    """Deterministic sub-draw: spread ``arg`` into independent values."""
    return ((arg + salt) * _KNUTH) % (1 << 32)


def corrupt_core(core, what: str, arg: int,
                 n: Optional[int] = None) -> List[str]:
    """Apply corruption ``what`` (seeded by ``arg``) to one node's core.

    Returns a list of human-readable mutation descriptions for tracing;
    empty when the core lacks every field the kind targets (e.g.
    ``scramble_epoch`` on an epoch-less core).  Raises
    :class:`ConfigError` for unknown kinds — callers validate against
    :data:`CORRUPTION_KINDS` first, so hitting this is a schema bug.
    """
    if what not in CORRUPTION_KINDS:
        raise ConfigError(f"unknown corruption kind {what!r}; "
                          f"known kinds: {CORRUPTION_KINDS}")
    ring = n if n is not None else max(getattr(core, "n", 1), 1)
    mutations: List[str] = []

    def note(field: str, old, new) -> None:
        mutations.append(f"{field}: {old!r} -> {new!r}")

    if what == "duplicate_token":
        note("has_token", getattr(core, "has_token", None), True)
        core.has_token = True
        core.lent_to = None
        # A conjured token's clock drifts a little from the live one so
        # the duplicate is not a perfect clone (the harder case).
        skew = _mix(arg, 1) % (ring + 1)
        if skew and hasattr(core, "clock"):
            note("clock", core.clock, core.clock + skew)
            core.clock += skew
            core.last_visit = core.clock

    elif what == "delete_token":
        note("has_token", getattr(core, "has_token", None), False)
        core.has_token = False
        core.lent_to = None
        if hasattr(core, "_loan_pending"):
            core._loan_pending = None
        if hasattr(core, "_serving"):
            core._serving = False
        if hasattr(core, "_parked"):
            core._parked = False

    elif what == "scramble_clock":
        if hasattr(core, "clock"):
            delta = _mix(arg, 2) % (4 * ring + 1) - 2 * ring
            note("clock", core.clock, max(0, core.clock + delta))
            core.clock = max(0, core.clock + delta)
        if hasattr(core, "last_visit"):
            delta = _mix(arg, 3) % (4 * ring + 1) - 2 * ring
            note("last_visit", core.last_visit,
                 max(-1, core.last_visit + delta))
            core.last_visit = max(-1, core.last_visit + delta)

    elif what == "scramble_epoch":
        if not hasattr(core, "epoch"):
            return mutations
        delta = _mix(arg, 4) % (8 * ring + 1) - 4 * ring
        new_epoch = max(0, core.epoch + delta)
        note("epoch", core.epoch, new_epoch)
        core.epoch = new_epoch

    elif what == "scramble_stamp":
        if hasattr(core, "round_no"):
            delta = _mix(arg, 5) % (2 * ring + 1) - ring
            note("round_no", core.round_no, max(0, core.round_no + delta))
            core.round_no = max(0, core.round_no + delta)
        if hasattr(core, "granted_seq"):
            # granted_seq racing ahead of req_seq is the illegal grant
            # ordering the sanitizer would flag at rest.
            bump = _mix(arg, 6) % 3 + 1
            note("granted_seq", core.granted_seq, core.req_seq + bump)
            core.granted_seq = core.req_seq + bump
        if hasattr(core, "outstanding"):
            core.outstanding = bool(_mix(arg, 7) & 1)

    elif what == "corrupt_queue":
        if hasattr(core, "traps"):
            phantom = _mix(arg, 8) % ring
            bogus_seq = 1_000 + _mix(arg, 9) % 100
            core.traps.add(phantom, bogus_seq, -(_mix(arg, 10) % 50) - 1)
            note("traps", "…", f"+phantom trap z={phantom} seq={bogus_seq}")
        if hasattr(core, "_gimme_queue"):
            ghost = _mix(arg, 11) % ring
            core._gimme_queue.append(GimmeMsg(
                requester=ghost, req_seq=900 + _mix(arg, 12) % 100,
                span=ring, visit_stamp=_mix(arg, 13) % (4 * ring),
            ))
            note("_gimme_queue", "…", f"+ghost gimme from {ghost}")
            core._gimme_inflight = bool(_mix(arg, 14) & 1)

    elif what == "corrupt_served":
        if hasattr(core, "_served_carry"):
            z = _mix(arg, 15) % ring
            bogus = ((z, 500 + _mix(arg, 16) % 100),)
            note("_served_carry", core._served_carry, bogus)
            core._served_carry = bogus

    return mutations
