"""Fault-tolerant binary-search protocol with token regeneration
(paper Section 5).

:class:`FaultTolerantCore` extends the adaptive protocol with:

- **time-out detection** — a requester whose wait exceeds
  ``config.regen_timeout`` polls the ring with (cheap) who-has messages;
- **census + election** — replies collected for ``config.census_window``;
  if nobody claims the token, the non-responders become *suspects*, and
  the first responsive successor of the freshest sighting (operationally,
  the failed holder's surviving neighbour) is told to mint a new token;
- **epochs** — every regenerated token carries a higher epoch; messages
  from older epochs are discarded, so a token that merely *seemed* lost
  cannot yield two circulating tokens once any node has seen the new one;
- **suspect-skipping rotation** — forwarding and loans route around
  suspects (the ``x⁻¹``/``x⁺¹`` healing of the paper);
- **loan reclaim** — a lender whose borrower crashed reclaims the token
  after ``config.loan_timeout`` under a fresh epoch.

Detection is deliberately demand-driven, exactly as the paper observes:
with no requester, a lost token goes unnoticed — and harmlessly so.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Optional

from repro.core.binary_search import BinarySearchCore
from repro.core.config import ProtocolConfig
from repro.core.effects import Deliver, Effect, Send, SetTimer
from repro.core.messages import (
    LoanMsg,
    LoanReturnMsg,
    RegenerateMsg,
    TokenMsg,
    WhoHasMsg,
    WhoHasReplyMsg,
)
from repro.faults.detector import Census

__all__ = ["FaultTolerantCore"]

_SUSPECT = "suspect"
_CENSUS = "census"
_LOANBACK = "loanback"


class FaultTolerantCore(BinarySearchCore):
    """Adaptive protocol + failure detection, election, regeneration."""

    protocol_name = "fault_tolerant"

    def __init__(self, node_id: int, config: ProtocolConfig,
                 initial_holder: int = 0) -> None:
        super().__init__(node_id, config, initial_holder)
        self.epoch = 0
        self.suspected: set = set()
        self._census: Optional[Census] = None
        self._probe_seq = 0
        #: Freshest fleet-wide clock seen at the previous census deadline —
        #: the baseline for the progress check (see _on_census_deadline).
        self._fleet_max: Optional[int] = None
        #: Optional adaptive detection hook (the asyncio supervisor wires a
        #: phi-accrual estimate here): returns the suspect-timer delay in
        #: message-delay units, or None to fall back to the configured
        #: fixed ``regen_timeout``.
        self.regen_delay_provider: Optional[Callable[[], Optional[float]]] = None
        #: Optional liveness hook: the set of peers with fresh out-of-band
        #: liveness evidence (the supervisor's heartbeat view).  Consulted
        #: wherever ``suspected`` steers routing, because gossip alone
        #: cannot retire a stale suspicion: the suspects tuple is merged
        #: and re-forwarded inside the same token handler, so while a
        #: token is in flight somewhere, clearing the *set* between
        #: handlers never sticks — the evidence has to win at the point
        #: of use.
        self.alive_provider: Optional[Callable[[], set]] = None

    def _suspect_delay(self) -> float:
        """Delay before this requester suspects the token is lost."""
        if self.regen_delay_provider is not None:
            adaptive = self.regen_delay_provider()
            if adaptive is not None and adaptive > 0:
                return adaptive
        return self.config.regen_timeout

    def _ring_members(self) -> List[int]:
        if self.ring is not None:
            return list(self.ring.members)
        return list(range(self.n))

    def _effective_suspects(self) -> set:
        """``suspected`` minus peers proven alive out-of-band.  Also prunes
        the set itself, so rehabilitated peers stop riding the gossip."""
        if self.alive_provider is not None:
            self.suspected -= self.alive_provider()
        return self.suspected

    # -- epoch & routing hooks ----------------------------------------------------

    def _token_epoch(self) -> int:
        return self.epoch

    def _next_epoch(self, minter: int) -> int:
        """The epoch a regeneration by ``minter`` would create.

        Epochs stride by ``n`` with the minter's id stamped into the low
        digits, so two *racing* regenerations (two census origins electing
        different regenerators off asymmetric reply loss, or a loan reclaim
        racing a census) can never coin the same number: the resulting
        tokens carry ordered epochs and the standard ``msg_epoch <
        self.epoch`` fence retires the loser on first contact.  With a
        shared plain ``+ 1`` both sides would mint the *same* epoch and two
        tokens would circulate unfenced.
        """
        stride = max(self.n, 1)
        return (self.epoch // stride + 1) * stride + minter

    def _token_suspects(self):
        return tuple(sorted(self._effective_suspects()))

    def _rotation_successor(self) -> int:
        suspects = self._effective_suspects()
        for k in range(1, self.ring_size()):
            candidate = self.ring_succ(k)
            if candidate not in suspects:
                return candidate
        return self.node_id

    def _skip_requester(self, requester: int) -> bool:
        return requester in self._effective_suspects()

    def _after_loan_sent(self, requester: int) -> List[Effect]:
        if self.config.loan_timeout <= 0:
            return []
        return [SetTimer((_LOANBACK, requester), self.config.loan_timeout)]

    # -- message handling ---------------------------------------------------------------

    def on_message(self, src: int, msg: object, now: float) -> List[Effect]:
        # Any traffic from ``src`` is direct evidence it is alive — clear
        # it before anything else.  Without this, suspicion gossip is
        # self-sustaining: every token forward re-carries the suspects
        # tuple, every receiver re-merges it in the same handler that
        # forwards, and a *recovered* node stays routed around forever,
        # starving its own requests.  Its probes reaching us break the
        # chain.
        self.suspected.discard(src)
        if isinstance(msg, (TokenMsg, LoanMsg, LoanReturnMsg)):
            msg_epoch = getattr(msg, "epoch", 0)
            if msg_epoch < self.epoch:
                return []  # stale token lineage: discard
            if msg_epoch > self.epoch:
                self.epoch = msg_epoch
                if isinstance(msg, (TokenMsg, LoanMsg)):
                    # Two racing regenerations mint tokens at *ordered*
                    # epochs (see _next_epoch); this message outranks any
                    # lineage we still carry, so retire ours here — the
                    # fence that normally kills the loser on contact,
                    # applied to ourselves.  Without this, the base
                    # handler would see an illegal "second token".
                    self.has_token = False
                    self.lent_to = None
        if isinstance(msg, WhoHasMsg):
            return self._on_who_has(src, msg)
        if isinstance(msg, WhoHasReplyMsg):
            return self._on_who_has_reply(src, msg)
        if isinstance(msg, RegenerateMsg):
            return self._on_regenerate(msg, now)
        if isinstance(msg, TokenMsg):
            self.suspected |= set(msg.suspects)
            self.suspected.discard(self.node_id)
            self.suspected.discard(src)  # evidently alive after all
        return super().on_message(src, msg, now)

    # -- detection ------------------------------------------------------------------------

    def on_request(self, now: float) -> List[Effect]:
        effects = super().on_request(now)
        if self.ready and self.config.regen_timeout > 0:
            effects.append(SetTimer((_SUSPECT, self.req_seq),
                                    self._suspect_delay()))
        return effects

    def on_timer(self, key: Hashable, now: float) -> List[Effect]:
        if isinstance(key, tuple) and key:
            if key[0] == _SUSPECT:
                return self._on_suspect(key[1])
            if key[0] == _CENSUS:
                return self._on_census_deadline(key[1], now)
            if key[0] == _LOANBACK:
                return self._on_loan_timeout(key[1], now)
        return super().on_timer(key, now)

    def _on_suspect(self, req_seq: int) -> List[Effect]:
        if not self.ready or req_seq != self.req_seq:
            return []
        if self.has_token or self._census is not None:
            return []
        self._probe_seq += 1
        population = [x for x in self._ring_members() if x != self.node_id]
        self._census = Census(self.node_id, self._probe_seq, population)
        effects: List[Effect] = [
            Send(x, WhoHasMsg(origin=self.node_id, probe_seq=self._probe_seq))
            for x in population
        ]
        effects.append(SetTimer((_CENSUS, self._probe_seq),
                                self.config.census_window))
        return effects

    def _on_who_has(self, src: int, msg: WhoHasMsg) -> List[Effect]:
        holds = self.has_token or self.lent_to is not None
        return [Send(msg.origin, WhoHasReplyMsg(
            origin=msg.origin, probe_seq=msg.probe_seq,
            last_clock=self.last_visit, has_token=holds,
        ))]

    def _on_who_has_reply(self, src: int, msg: WhoHasReplyMsg) -> List[Effect]:
        census = self._census
        if census is None or msg.probe_seq != census.probe_seq:
            return []
        census.record(src, msg.last_clock, msg.has_token)
        return []

    def _on_census_deadline(self, probe_seq: int, now: float) -> List[Effect]:
        census = self._census
        if census is None or census.probe_seq != probe_seq:
            return []
        self._census = None
        if not self.ready:
            return []
        origin_holds = self.has_token or self.lent_to is not None
        if census.token_alive(origin_holds):
            # The token exists; we were just slow.  Re-arm detection.
            return [SetTimer((_SUSPECT, self.req_seq), self._suspect_delay())]
        _, fleet_max = census.freshest(self.last_visit)
        progressed = self._fleet_max is not None and fleet_max > self._fleet_max
        self._fleet_max = fleet_max
        if progressed:
            # Nobody *claims* the token, yet the fleet's freshest visit
            # clock advanced since our previous census: the token is
            # circulating and simply never at rest when polled (continuous
            # rotation keeps it in flight almost all the time).  Minting
            # here would coin a duplicate whose clock lags the live
            # lineage.  Keep watching instead — at census cadence, not the
            # full suspect delay: we are mid-episode, and if the progress
            # was stale history the next census must come quickly.
            return [SetTimer((_SUSPECT, self.req_seq),
                             self.config.census_window)]
        if self.config.regen_quorum:
            # Partition-resilient mode: only a side that can still hear a
            # majority of the ring may mint.  A minority island *parks* —
            # it keeps probing, and on heal either hears the token or
            # finally reaches quorum.  (Epoch fencing would retire a
            # minority-minted duplicate anyway; parking avoids minting it
            # in the first place.)
            ring_size = len(self._ring_members())
            if 2 * (census.replies + 1) <= ring_size:
                return [SetTimer((_SUSPECT, self.req_seq),
                                 self._suspect_delay())]
        self.suspected |= census.suspects()
        ring_order = self._ring_members()
        regenerator = census.elect_regenerator(ring_order, self.last_visit)
        if regenerator is None:
            return [SetTimer((_SUSPECT, self.req_seq), self._suspect_delay())]
        _, freshest_clock = census.freshest(self.last_visit)
        new_epoch = self._next_epoch(regenerator)
        new_clock = freshest_clock + self.ring_size()
        regen = RegenerateMsg(new_clock=new_clock, epoch=new_epoch,
                              suspects=tuple(sorted(self.suspected)))
        effects: List[Effect] = []
        if regenerator == self.node_id:
            effects.extend(self._mint(regen, now))
        else:
            effects.append(Send(regenerator, regen))
        # Keep watching: regeneration itself might be lost.
        effects.append(SetTimer((_SUSPECT, self.req_seq), self._suspect_delay()))
        return effects

    # -- regeneration -------------------------------------------------------------------------

    def _on_regenerate(self, msg: RegenerateMsg, now: float) -> List[Effect]:
        return self._mint(msg, now)

    def _mint(self, msg: RegenerateMsg, now: float) -> List[Effect]:
        if msg.epoch <= self.epoch:
            return []  # duplicate or raced regeneration: only one epoch wins
        self.epoch = msg.epoch
        self.suspected |= set(msg.suspects)
        self.suspected.discard(self.node_id)
        if self.has_token or self.lent_to is not None:
            return []  # we already carry the lineage forward
        self.has_token = True
        self.clock = msg.new_clock
        self.round_no = msg.new_clock // max(self.ring_size(), 1)
        self.last_visit = msg.new_clock
        effects: List[Effect] = [
            Deliver("regenerated", (self.node_id, self.epoch)),
            Deliver("token_visit", (self.node_id, self.clock)),
        ]
        effects.extend(self._advance(now))
        return effects

    def _on_loan_timeout(self, requester: int, now: float) -> List[Effect]:
        if self.lent_to != requester:
            return []
        # The borrower crashed with our token: reclaim it under a new epoch.
        self.lent_to = None
        self.has_token = True
        self.epoch = self._next_epoch(self.node_id)
        self.suspected.add(requester)
        effects: List[Effect] = [
            Deliver("regenerated", (self.node_id, self.epoch))
        ]
        effects.extend(self._advance(now))
        return effects

    def _on_loan_return(self, msg: LoanReturnMsg, now: float) -> List[Effect]:
        if self.lent_to is None:
            return []  # reclaimed already; the borrower survived after all
        effects = super()._on_loan_return(msg, now)
        return effects
