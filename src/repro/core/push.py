"""Push mode: the token finds its requesters (Section 4.2's dual).

"It is also possible to have nodes keep their requests local and have the
token find which node wants it."  Executable interpretation: an idle
holder parks the token and **advertises** its position through a binary
fan-out tree over the ring (n−1 cheap messages, log N depth — the paper's
observation that a parallel search costs Θ(n) messages).  Ready nodes
never search: knowing the holder from the latest advertisement, they send
a direct request; the holder traps requests FIFO and serves them by loan.

The parked holder is the paper's "virtual root of a token-distribution
tree": response is O(1) hops once the advertisement has spread, but the
message load concentrates at the root — exactly the tree-protocol
trade-off the conclusion contrasts with the ring's load balance.  The A3
ablation benchmark measures both sides of that trade.

While demand persists the token keeps circulating as usual (requests are
also trapped by the rotating token), so the ring's fairness and O(N)
fallback are preserved; a node whose request message is lost is still
served by rotation.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.binary_search import BinarySearchCore
from repro.core.effects import CancelTimer, Effect, Send
from repro.core.messages import AdvertMsg, RequestMsg

__all__ = ["PushCore", "advert_fanout"]

_FWD = "forward"


def advert_fanout(node_id: int, n: int, holder: int, clock: int, span: int) -> List[Send]:
    """Delegate the upper half of the covered ring segment repeatedly:
    the node responsible for ``[x, x+span)`` hands ``[x+k/2, x+k)`` to the
    node at offset ``k/2`` and recurses on the lower half — n−1 messages
    total across all nodes, log₂ n depth."""
    sends: List[Send] = []
    k = span
    while k >= 2:
        half = k // 2
        target = (node_id + half) % n
        sends.append(Send(target, AdvertMsg(holder=holder, clock=clock,
                                            span=k - half)))
        k = half
    return sends


class PushCore(BinarySearchCore):
    """Binary-search core with pull searches replaced by push adverts."""

    protocol_name = "push"

    def __init__(self, node_id: int, config, initial_holder: int = 0) -> None:
        super().__init__(node_id, config, initial_holder)
        self.known_holder: Optional[int] = initial_holder
        self.known_holder_clock = -1
        self._receipts = 0
        self._advertised_clock = -1
        self._requested_holder = -1

    # -- requester side: no search, direct request -------------------------------

    def _launch_search(self) -> List[Effect]:
        if self.n <= 1:
            return []
        if self.outstanding and self.config.single_outstanding:
            return []
        if self.known_holder is None or self.known_holder == self.node_id:
            return []  # rotation will serve us
        self.outstanding = True
        self._requested_holder = self.known_holder
        return [Send(self.known_holder, RequestMsg(
            requester=self.node_id, req_seq=self.req_seq,
            visit_stamp=self.last_visit,
        ))]

    # -- holder side ----------------------------------------------------------------

    def _advance(self, now: float) -> List[Effect]:
        effects = super()._advance(now)
        if self.has_token and self._parked:
            # We just parked: become the virtual root.  Advertise once per
            # parking spot (re-parking at the same clock stays silent).
            if (self._advertised_clock != self.clock
                    and self._receipts % self.config.advert_every == 0):
                self._advertised_clock = self.clock
                effects.extend(advert_fanout(
                    self.node_id, self.n, self.node_id, self.clock, self.n,
                ))
        return effects

    def on_timer(self, key, now: float) -> List[Effect]:
        # A parked virtual root with no demand stays parked: the whole
        # point of push mode is that requests come to the root.
        if (key == _FWD and self.has_token and self._parked
                and not self._demand_seen):
            from repro.core.effects import SetTimer
            return [SetTimer(_FWD, self.config.idle_pause)]
        return super().on_timer(key, now)

    def _on_token(self, msg, now: float) -> List[Effect]:
        self._receipts += 1
        self.known_holder = self.node_id
        self.known_holder_clock = msg.clock
        return super()._on_token(msg, now)

    def _on_request_msg(self, msg: RequestMsg, now: float) -> List[Effect]:
        self._demand_seen = True
        if msg.requester == self.node_id:
            return []
        if self._is_served(msg.requester, msg.req_seq):
            return []
        self.traps.add(msg.requester, msg.req_seq,
                       max(msg.visit_stamp, self.last_visit - self.ring_size()))
        effects: List[Effect] = []
        if self.has_token and not self._serving:
            if self._parked:
                self._parked = False
                effects.append(CancelTimer(_FWD))
            effects.extend(self._advance(now))
        return effects

    def _on_advert(self, msg: AdvertMsg, now: float) -> List[Effect]:
        effects: List[Effect] = []
        if msg.clock >= self.known_holder_clock:
            self.known_holder = msg.holder
            self.known_holder_clock = msg.clock
        effects.extend(advert_fanout(
            self.node_id, self.n, msg.holder, msg.clock, msg.span,
        ))
        resend = (
            self.ready
            and msg.holder != self.node_id
            and (not self.outstanding or msg.holder != self._requested_holder)
        )
        if resend:
            # Fresh advert: the root moved since our last request, so the
            # old request is parked as a trap somewhere behind it.  Ask the
            # new root directly (cheap, idempotent — traps dedupe by seq).
            self.outstanding = True
            self._requested_holder = msg.holder
            effects.append(Send(msg.holder, RequestMsg(
                requester=self.node_id, req_seq=self.req_seq,
                visit_stamp=self.last_visit,
            )))
        return effects

    # -- dispatch ----------------------------------------------------------------------

    def on_message(self, src: int, msg: object, now: float) -> List[Effect]:
        if isinstance(msg, RequestMsg):
            return self._on_request_msg(msg, now)
        if isinstance(msg, AdvertMsg):
            return self._on_advert(msg, now)
        return super().on_message(src, msg, now)
