"""Combined push–pull protocol ("Finally, it is possible to combine both
schemes", Section 4.2).

Pull (binary gimme search) remains the workhorse.  Push engages only when
it is cheap to be right: a holder that *parks* (idle system, adaptive
speed) advertises its position; a ready node holding a fresh advertisement
sends a direct request instead of searching, falling back to the binary
search when its knowledge is stale or absent.  Under load the token never
parks, no adverts flow, and the protocol behaves exactly like
System BinarySearch — the "fluid" virtual-root behaviour the conclusion
describes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.binary_search import BinarySearchCore
from repro.core.effects import CancelTimer, Effect, Send
from repro.core.messages import AdvertMsg, RequestMsg
from repro.core.push import advert_fanout

__all__ = ["HybridCore"]

_FWD = "forward"


class HybridCore(BinarySearchCore):
    """Pull by default; push advertisements while the token is parked."""

    protocol_name = "hybrid"

    def __init__(self, node_id: int, config, initial_holder: int = 0) -> None:
        super().__init__(node_id, config, initial_holder)
        self.known_holder: Optional[int] = None
        self.known_holder_clock = -1
        self._advertised_clock = -1
        self._requested_holder = -1

    # -- requester: direct request when knowledge is fresh, else pull ----------

    def _launch_search(self) -> List[Effect]:
        if self.n <= 1:
            return []
        if self.outstanding and self.config.single_outstanding:
            return []
        fresh = (
            self.known_holder is not None
            and self.known_holder != self.node_id
            and self.known_holder_clock >= self.last_visit
        )
        if fresh:
            self.outstanding = True
            return [Send(self.known_holder, RequestMsg(
                requester=self.node_id, req_seq=self.req_seq,
            ))]
        return super()._launch_search()

    # -- holder: advertise on park ---------------------------------------------------

    def _advance(self, now: float) -> List[Effect]:
        effects = super()._advance(now)
        if self.has_token and self._parked:
            if self._advertised_clock != self.clock:
                self._advertised_clock = self.clock
                effects.extend(advert_fanout(
                    self.node_id, self.n, self.node_id, self.clock, self.n,
                ))
        return effects

    def on_timer(self, key, now: float) -> List[Effect]:
        # While idle the hybrid acts as a parked virtual root (the "fluid"
        # behaviour of the conclusion); demand un-parks it via _advance.
        if (key == _FWD and self.has_token and self._parked
                and not self._demand_seen):
            from repro.core.effects import SetTimer
            return [SetTimer(_FWD, self.config.idle_pause)]
        return super().on_timer(key, now)

    def _on_request_msg(self, msg: RequestMsg, now: float) -> List[Effect]:
        self._demand_seen = True
        if msg.requester == self.node_id:
            return []
        if self._is_served(msg.requester, msg.req_seq):
            return []
        self.traps.add(msg.requester, msg.req_seq,
                       max(msg.visit_stamp, self.last_visit - self.ring_size()))
        effects: List[Effect] = []
        if self.has_token and not self._serving:
            if self._parked:
                self._parked = False
                effects.append(CancelTimer(_FWD))
            effects.extend(self._advance(now))
        return effects

    def _on_advert(self, msg: AdvertMsg, now: float) -> List[Effect]:
        effects: List[Effect] = []
        if msg.clock >= self.known_holder_clock:
            self.known_holder = msg.holder
            self.known_holder_clock = msg.clock
        effects.extend(advert_fanout(
            self.node_id, self.n, msg.holder, msg.clock, msg.span,
        ))
        resend = (
            self.ready
            and msg.holder != self.node_id
            and (not self.outstanding or msg.holder != self._requested_holder)
        )
        if resend:
            # Fresh advert: the root moved since our last request, so the
            # old request is parked as a trap somewhere behind it.  Ask the
            # new root directly (cheap, idempotent — traps dedupe by seq).
            self.outstanding = True
            self._requested_holder = msg.holder
            effects.append(Send(msg.holder, RequestMsg(
                requester=self.node_id, req_seq=self.req_seq,
                visit_stamp=self.last_visit,
            )))
        return effects

    # -- dispatch -----------------------------------------------------------------------

    def on_message(self, src: int, msg: object, now: float) -> List[Effect]:
        if isinstance(msg, RequestMsg):
            return self._on_request_msg(msg, now)
        if isinstance(msg, AdvertMsg):
            return self._on_advert(msg, now)
        return super().on_message(src, msg, now)
