"""Trap storage with the paper's garbage-collection policies (Section 4.4).

A *trap* remembers that some requester wants the token.  Traps are stored
and served in FIFO order — the Theorem 2/3 requirement that makes
responsiveness O(log N) and fairness log N.

Stale traps (the requester was already served through another path) are the
storage/overhead problem the paper's clean-up algorithms address:

- **rotation clean-up** — a trap that survives a full token circulation is
  provably obsolete (the rotating token visited the requester in between),
  so traps expire once the token's visit clock has advanced ``n`` past the
  clock at which the trap was set; additionally the token piggybacks the
  most recent serves so matching traps are dropped early.
- **inverse clean-up** — handled in the core: loans retrace the gimme trail
  and clear traps en route (see :class:`repro.core.binary_search.BinarySearchCore`).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Optional, Tuple

__all__ = ["Trap", "TrapStore"]


class Trap:
    """One pending trap."""

    __slots__ = ("requester", "req_seq", "set_clock", "trail")

    def __init__(self, requester: int, req_seq: int, set_clock: int,
                 trail: Tuple[int, ...] = ()) -> None:
        self.requester = requester
        self.req_seq = req_seq
        self.set_clock = set_clock
        self.trail = trail

    def __repr__(self) -> str:
        return f"Trap(z={self.requester}, seq={self.req_seq})"


class TrapStore:
    """FIFO trap queue with deduplication and staleness GC."""

    def __init__(self) -> None:
        self._queue: Deque[Trap] = deque()
        self._latest_seq: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self):
        return iter(self._queue)

    def add(self, requester: int, req_seq: int, set_clock: int,
            trail: Tuple[int, ...] = ()) -> bool:
        """Add a trap; a newer request from the same node supersedes the
        older trap in place (FIFO position preserved).  Returns True when
        the store changed."""
        known = self._latest_seq.get(requester)
        if known is not None and known >= req_seq:
            return False
        self._latest_seq[requester] = req_seq
        for t in self._queue:
            if t.requester == requester:
                t.req_seq = req_seq
                t.set_clock = set_clock
                t.trail = trail
                return True
        self._queue.append(Trap(requester, req_seq, set_clock, trail))
        return True

    def drop_served(self, served: "Iterable[Tuple[int, int]] | Dict[int, int]") -> int:
        """Drop traps whose (requester, seq) is already served; returns the
        number removed.  ``served`` may be the usual (z, seq) iterable or a
        pre-built ``{z: max_seq}`` mapping (hot-path callers keep one)."""
        queue = self._queue
        if not queue:
            return 0
        if isinstance(served, dict):
            served_map = served
        else:
            served_map = {}
            for z, seq in served:
                served_map[z] = max(served_map.get(z, -1), seq)
        get = served_map.get
        for t in queue:
            if get(t.requester, -1) >= t.req_seq:
                break
        else:
            return 0  # nothing to drop: skip the rebuild
        before = len(queue)
        self._queue = deque(
            t for t in queue if get(t.requester, -1) < t.req_seq
        )
        return before - len(self._queue)

    def expire(self, current_clock: int, n: int) -> int:
        """Rotation GC: drop traps set at least one full circulation ago;
        returns the number removed."""
        queue = self._queue
        if not queue:
            return 0
        stale = current_clock - n
        for t in queue:
            if t.set_clock <= stale:
                break
        else:
            return 0  # nothing expired: skip the rebuild
        before = len(queue)
        self._queue = deque(
            t for t in queue if current_clock - t.set_clock < n
        )
        return before - len(self._queue)

    def pop(self) -> Optional[Trap]:
        """Remove and return the oldest trap (FIFO), or None when empty."""
        if not self._queue:
            return None
        return self._queue.popleft()

    def peek(self) -> Optional[Trap]:
        """Return the oldest trap without removing it."""
        return self._queue[0] if self._queue else None

    def remove_for(self, requester: int) -> int:
        """Drop every trap for ``requester`` (inverse clean-up); returns
        the number removed."""
        if not self._queue:
            return 0
        before = len(self._queue)
        self._queue = deque(t for t in self._queue if t.requester != requester)
        return before - len(self._queue)
