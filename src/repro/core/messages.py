"""Wire messages of the executable token-passing protocols.

Each message is a frozen dataclass.  ``reliable`` encodes the paper's
expensive/cheap duality (Section 1): the token and its loan are
*expensive* (the network never drops them); every search / trap / probe
message is *cheap* — the protocols stay safe if all of them are lost.

Histories are not shipped in full: following the Section 4.4
bounded-history optimization, the token carries a **visit clock** (one
tick per circulation hop) and a round counter, and every node remembers the
clock value of the token's last visit.  The ``⊂_C`` prefix comparison of
rule 6 then becomes an integer comparison of visit stamps (the spec layer
in :mod:`repro.specs` keeps the full-history semantics and is used to
validate this equivalence on small instances).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "Message",
    "TokenMsg",
    "LoanMsg",
    "LoanReturnMsg",
    "GimmeMsg",
    "AskMsg",
    "ProbeMsg",
    "ProbeReplyMsg",
    "AdvertMsg",
    "RequestMsg",
    "WhoHasMsg",
    "WhoHasReplyMsg",
    "RegenerateMsg",
    "HeartbeatMsg",
    "JoinMsg",
    "JoinAckMsg",
    "LeaveMsg",
    "MembershipMsg",
]


@dataclass(frozen=True)
class Message:
    """Base class; subclasses override ``reliable`` as a class attribute."""

    reliable = True


@dataclass(frozen=True)
class TokenMsg(Message):
    """The rotating token (expensive).

    ``clock`` — visit counter, incremented at every circulation hop;
    ``round_no`` — completed circulations (for round-based trap GC);
    ``served`` — requester id → highest served request seq (rotation GC);
    ``membership`` — (version, ring tuple) piggyback for dynamic views.
    """

    clock: int
    round_no: int
    served: Tuple[Tuple[int, int], ...] = ()
    membership: Optional[Tuple[int, Tuple[int, ...]]] = None
    epoch: int = 0
    suspects: Tuple[int, ...] = ()

    reliable = True


@dataclass(frozen=True)
class LoanMsg(Message):
    """Rule 7's decorated token ``ŷ``: must be returned to the lender.

    Under inverse-token trap GC, ``trail`` lists the intermediate nodes the
    loan must traverse (clearing their traps) before reaching ``requester``.
    """

    clock: int
    round_no: int
    lender: int
    requester: int
    req_seq: int
    served: Tuple[Tuple[int, int], ...] = ()
    trail: Tuple[int, ...] = ()
    epoch: int = 0

    reliable = True


@dataclass(frozen=True)
class LoanReturnMsg(Message):
    """Rule 8's return of a loaned token to the lender."""

    clock: int
    round_no: int
    served: Tuple[Tuple[int, int], ...] = ()
    epoch: int = 0

    reliable = True


@dataclass(frozen=True)
class GimmeMsg(Message):
    """Binary-search request (cheap): ``span`` halves at each forward.

    ``visit_stamp`` is the requester's last-seen token clock — the
    bounded-history stand-in for the ``H_z`` snapshot of rule 6.
    ``trail`` records the nodes traversed (for inverse-token trap GC).
    """

    requester: int
    req_seq: int
    span: int
    visit_stamp: int
    trail: Tuple[int, ...] = ()

    reliable = False


@dataclass(frozen=True)
class AskMsg(Message):
    """System Search's linear search message (cheap)."""

    requester: int
    req_seq: int
    visit_stamp: int

    reliable = False


@dataclass(frozen=True)
class AdvertMsg(Message):
    """Push-mode advertisement (cheap): the holder announces the token's
    position via a binary fan-out tree over the ring."""

    holder: int
    clock: int
    span: int

    reliable = False


@dataclass(frozen=True)
class RequestMsg(Message):
    """Push-mode direct request (cheap): a ready node that learned the
    holder's position asks it for the token."""

    requester: int
    req_seq: int
    visit_stamp: int = -1

    reliable = False


@dataclass(frozen=True)
class ProbeMsg(Message):
    """Directed search (Section 4.4): the requester itself probes a node,
    which lays a trap and replies instead of forwarding (cheap)."""

    requester: int
    req_seq: int
    visit_stamp: int

    reliable = False


@dataclass(frozen=True)
class ProbeReplyMsg(Message):
    """Reply to :class:`ProbeMsg` carrying the probed node's visit stamp
    (and whether it holds the token) so the requester can steer the next
    probe (cheap)."""

    prober: int
    req_seq: int
    last_visit: int
    has_token: bool

    reliable = False


@dataclass(frozen=True)
class WhoHasMsg(Message):
    """Failure handling: ask a neighbour whether it has seen the token
    since the given clock (cheap)."""

    origin: int
    probe_seq: int

    reliable = False


@dataclass(frozen=True)
class WhoHasReplyMsg(Message):
    """Reply to :class:`WhoHasMsg` with the replier's view (cheap)."""

    origin: int
    probe_seq: int
    last_clock: int
    has_token: bool

    reliable = False


@dataclass(frozen=True)
class RegenerateMsg(Message):
    """Failure handling: the elected neighbour mints a replacement token
    (expensive — a regenerated token is a real token)."""

    new_clock: int
    epoch: int
    suspects: Tuple[int, ...] = ()

    reliable = True


@dataclass(frozen=True)
class HeartbeatMsg(Message):
    """Runtime liveness beacon (cheap): a supervised node's periodic "I am
    alive" to its ring neighbours, feeding their phi-accrual detectors.
    Consumed by the driver layer; never reaches a protocol core."""

    sender: int
    seq: int
    last_visit: int = -1

    reliable = False


@dataclass(frozen=True)
class JoinMsg(Message):
    """Membership: a node asks a sponsor to insert it into the ring."""

    joiner: int

    reliable = True


@dataclass(frozen=True)
class JoinAckMsg(Message):
    """Membership: the sponsor's reply carrying the agreed ring view."""

    version: int
    ring: Tuple[int, ...]

    reliable = True


@dataclass(frozen=True)
class LeaveMsg(Message):
    """Membership: a node announces its departure to its sponsor."""

    leaver: int

    reliable = True


@dataclass(frozen=True)
class MembershipMsg(Message):
    """Membership: a view update pushed to members (cheap — the token
    piggybacks the authoritative view)."""

    version: int
    ring: Tuple[int, ...]

    reliable = False
