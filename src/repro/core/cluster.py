"""Cluster: wires protocol cores, the network, workloads, and metrics.

This is the main entry point for simulation experiments::

    from repro import Cluster, FixedRateWorkload

    cluster = Cluster.build("binary_search", n=100, seed=1)
    cluster.add_workload(FixedRateWorkload(mean_interval=10.0))
    cluster.run(rounds=1000)
    print(cluster.responsiveness.average_responsiveness())

``Cluster.build`` accepts a protocol name; ``Cluster`` itself accepts a
core factory for custom protocols.  All randomness flows from one seeded
RNG; runs are deterministic.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.core.base import ProtocolCore
from repro.core.config import ProtocolConfig
from repro.errors import ConfigError, SimulationError, TokenSafetyError
from repro.lint.sanitizer import ClusterSanitizer, sanitize_enabled
from repro.metrics.counters import MessageCounters
from repro.metrics.fairness import FairnessAuditor
from repro.metrics.responsiveness import ResponsivenessTracker
from repro.sim.driver import NodeDriver
from repro.sim.kernel import Simulator
from repro.sim.network import DelayModel, Network

__all__ = ["Cluster"]

CoreFactory = Callable[[int, ProtocolConfig], ProtocolCore]


def _registry() -> Dict[str, CoreFactory]:
    # Imported lazily to avoid import cycles between cluster and cores.
    from repro.core.binary_search import BinarySearchCore
    from repro.core.directed_search import DirectedSearchCore
    from repro.core.hybrid import HybridCore
    from repro.core.push import PushCore
    from repro.core.ring import RingCore
    from repro.core.search import LinearSearchCore
    from repro.faults.regeneration import FaultTolerantCore
    from repro.stabilize.core import StabilizingCore

    return {
        "ring": RingCore,
        "linear_search": LinearSearchCore,
        "binary_search": BinarySearchCore,
        "directed_search": DirectedSearchCore,
        "push": PushCore,
        "hybrid": HybridCore,
        "fault_tolerant": FaultTolerantCore,
        "stabilizing": StabilizingCore,
    }


class Cluster:
    """N protocol nodes over a simulated network, with metrics attached."""

    def __init__(
        self,
        core_factory: CoreFactory,
        n: int,
        seed: int = 0,
        config: Optional[ProtocolConfig] = None,
        delay: Optional[DelayModel] = None,
        loss_rate: float = 0.0,
        dup_rate: float = 0.0,
        track_fairness: bool = False,
        sanitize: Optional[bool] = None,
        sim: Optional[Simulator] = None,
    ) -> None:
        if n < 1:
            raise ConfigError(f"n must be >= 1, got {n}")
        self.n = n
        self.rng = random.Random(seed)
        # A shared scheduler (e.g. a fabric's SimView) may be injected;
        # standalone clusters own a private kernel, as ever.
        self.sim = sim if sim is not None else Simulator()
        self.config = config if config is not None else ProtocolConfig()
        self.config.n = n
        self.config.validate()
        self.network = Network(
            self.sim, self.rng, delay=delay,
            loss_rate=loss_rate, dup_rate=dup_rate,
        )
        self.responsiveness = ResponsivenessTracker()
        self.messages = MessageCounters()
        self.network.on_send.append(self.messages.on_send)
        self.fairness = FairnessAuditor() if track_fairness else None
        # The transition sanitizer is on unless REPRO_SANITIZE disables it
        # (or the caller pins `sanitize` explicitly).
        enabled = sanitize_enabled() if sanitize is None else sanitize
        self.sanitizer = ClusterSanitizer() if enabled else None
        self.drivers: Dict[int, NodeDriver] = {}
        self._waiting: Dict[int, int] = {}
        self._workloads: List = []
        self._grant_hooks: List[Callable[[int, int, float], None]] = []
        self._rounds_seen = 0
        self._started = False
        for node_id in range(n):
            core = core_factory(node_id, self.config)
            driver = NodeDriver(self.sim, self.network, core,
                                sanitizer=self.sanitizer)
            driver.subscribe(self._on_app_event)
            self.drivers[node_id] = driver

    @classmethod
    def build(cls, protocol: str, n: int, **kwargs) -> "Cluster":
        """Construct a cluster by protocol name; see module docstring."""
        registry = _registry()
        factory = registry.get(protocol)
        if factory is None:
            raise ConfigError(
                f"unknown protocol {protocol!r}; choose from {sorted(registry)}"
            )
        return cls(factory, n, **kwargs)

    # -- event plumbing -----------------------------------------------------------

    def _on_app_event(self, node: int, kind: str, payload: tuple, now: float) -> None:
        if kind == "granted":
            _, req_seq = payload
            waited_seq = self._waiting.pop(node, None)
            if waited_seq is not None:
                self.responsiveness.on_grant(node, waited_seq, now)
                if self.fairness is not None:
                    self.fairness.on_grant(node, waited_seq, now)
                for hook in self._grant_hooks:
                    hook(node, waited_seq, now)
                for workload in self._workloads:
                    workload.on_grant(node, waited_seq, now)
        elif kind == "token_visit":
            _, clock = payload
            self._rounds_seen = max(self._rounds_seen, clock // max(self.n, 1))
            if self.fairness is not None:
                self.fairness.on_visit(node, now)

    def on_grant(self, hook: Callable[[int, int, float], None]) -> None:
        """Register a callback fired at every satisfied request."""
        self._grant_hooks.append(hook)

    # -- public API ------------------------------------------------------------------

    def add_workload(self, workload) -> None:
        """Attach a workload generator (before or after ``start``)."""
        self._workloads.append(workload)
        workload.bind(self)

    def request(self, node: int) -> None:
        """Make ``node`` ready.  A node already waiting is left as-is (its
        pending request stands)."""
        if not 0 <= node < self.n:
            raise ConfigError(f"node {node} out of range")
        driver = self.drivers[node]
        if driver.crashed or node in self._waiting:
            return
        seq = self.drivers[node].core.req_seq + 1
        self._waiting[node] = seq
        self.responsiveness.on_request(node, seq, self.sim.now)
        if self.fairness is not None:
            self.fairness.on_request(node, seq, self.sim.now)
        driver.request()

    def release(self, node: int) -> None:
        """Release a held grant (hold_until_release mode)."""
        self.drivers[node].release()

    def start(self) -> None:
        """Start every node (idempotent)."""
        if self._started:
            return
        self._started = True
        for driver in self.drivers.values():
            driver.start()

    def run(
        self,
        rounds: Optional[int] = None,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        grants: Optional[int] = None,
    ) -> None:
        """Run until any given bound is hit: token circulations completed
        (``rounds``), virtual time (``until``), executed events, or
        satisfied requests (``grants``)."""
        if rounds is None and until is None and max_events is None and grants is None:
            raise SimulationError("run() needs at least one stopping bound")
        self.start()
        budget = max_events if max_events is not None else 200_000_000
        # Small chunks keep the rounds/grants bounds tight (we only check
        # between chunks); one chunk is roughly a tenth of a circulation.
        chunk = max(64, self.n // 8 * 10)
        sim_run = self.sim.run
        grants_seen = self.responsiveness.grants
        while budget > 0:
            if rounds is not None and self._rounds_seen >= rounds:
                break
            if grants is not None and grants_seen() >= grants:
                break
            step = min(chunk, budget)
            executed = sim_run(until=until, max_events=step)
            budget -= executed
            if executed < step:
                break  # queue drained or `until` reached

    # -- failure / audit helpers --------------------------------------------------------

    def crash(self, node: int) -> None:
        """Crash-stop a node."""
        self.drivers[node].crash()

    def token_census(self) -> int:
        """Count live tokens among non-crashed nodes (held or on loan).
        In-flight tokens are *not* visible here; call at quiescent points
        or accept over-approximation only on the low side."""
        count = 0
        for driver in self.drivers.values():
            if driver.crashed:
                continue
            core = driver.core
            if getattr(core, "has_token", False):
                count += 1
            elif getattr(core, "lent_to", None) is not None:
                count += 1
        return count

    def assert_single_token(self) -> None:
        """Raise :class:`TokenSafetyError` when more than one token is
        observable at rest."""
        census = self.token_census()
        if census > 1:
            raise TokenSafetyError(f"{census} tokens observed at rest")

    @property
    def rounds(self) -> int:
        """Completed token circulations (from the visit clock)."""
        return self._rounds_seen
