"""Sans-IO protocol core interface.

A core is a pure state machine for one node.  Handlers receive the current
virtual time and return a list of :class:`~repro.core.effects.Effect`; they
never touch a clock, a socket, or a scheduler.  The discrete-event driver
(:mod:`repro.sim.driver`) and the asyncio driver (:mod:`repro.aio`)
interpret the effects identically, so one implementation serves tests,
benchmarks, and the real-time runtime.

The shared vocabulary of delivered application events:

- ``Deliver("granted", (node, req_seq))`` — the node's request is being
  served (the paper's "ready node gets the token");
- ``Deliver("released", (node, req_seq))`` — the node finished using the
  token;
- ``Deliver("token_visit", (node, clock))`` — the rotating token arrived
  (used for fairness accounting and round counting);
- ``Deliver("regenerated", (node, epoch))`` — a replacement token was
  minted after a failure.
"""

from __future__ import annotations

from typing import Hashable, List

from repro.core.config import ProtocolConfig
from repro.core.effects import Effect

__all__ = ["ProtocolCore"]

# Imported lazily for typing only; RingView lives in repro.faults.membership.


class ProtocolCore:
    """Base class for per-node protocol state machines."""

    #: Human-readable protocol name, overridden by subclasses.
    protocol_name = "abstract"

    def __init__(self, node_id: int, config: ProtocolConfig) -> None:
        config.validate()
        if not 0 <= node_id < config.n:
            raise ValueError(f"node_id {node_id} out of range for n={config.n}")
        self.node_id = node_id
        self.config = config
        self.n = config.n
        #: Optional dynamic ring view (repro.faults.membership.RingView);
        #: when set, geometry follows the view instead of 0..n-1 arithmetic.
        self.ring = None

    # -- ring geometry -------------------------------------------------------

    def ring_size(self) -> int:
        """Number of nodes on the (possibly dynamic) ring."""
        return len(self.ring) if self.ring is not None else self.n

    def ring_succ(self, k: int = 1) -> int:
        """``self⁺ᵏ`` on the ring."""
        return self.hop(k)

    def ring_pred(self, k: int = 1) -> int:
        """``self⁻ᵏ`` on the ring."""
        return self.hop(-k)

    def hop(self, offset: int) -> int:
        """``self⁺ᵒ`` for a signed offset."""
        if self.ring is not None:
            return self.ring.hop(self.node_id, offset)
        return (self.node_id + offset) % self.n

    def ring_distance(self, dst: int) -> int:
        """Clockwise hops from this node to ``dst``."""
        if self.ring is not None:
            return self.ring.distance(self.node_id, dst)
        return (dst - self.node_id) % self.n

    def ring_first(self) -> int:
        """The distinguished member whose visit marks a new round."""
        if self.ring is not None:
            return self.ring.members[0]
        return 0

    # -- handler interface ----------------------------------------------------

    def on_start(self, now: float) -> List[Effect]:
        """Called once when the node starts; default does nothing."""
        return []

    def on_message(self, src: int, msg: object, now: float) -> List[Effect]:
        """Handle a network message from ``src``."""
        raise NotImplementedError

    def on_timer(self, key: Hashable, now: float) -> List[Effect]:
        """Handle an armed timer firing; default ignores unknown keys."""
        return []

    def on_request(self, now: float) -> List[Effect]:
        """The application at this node wants the token (becomes *ready*)."""
        raise NotImplementedError

    def on_release(self, now: float) -> List[Effect]:
        """The application releases a held grant (hold_until_release mode)."""
        return []
