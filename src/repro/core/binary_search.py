"""System BinarySearch, executable — the paper's contribution.

The token circulates the logical ring exactly as in :class:`RingCore`.
When a node becomes ready it launches a *gimme* search "directly across"
the ring; every node the search touches lays a FIFO trap and forwards the
search half as far, choosing the direction by comparing visit stamps — the
bounded-history realisation of rule 6's ``⊂_C`` comparison (a node whose
last token visit is *older* than the requester's snapshot concludes the
token is behind it, counter-clockwise; otherwise ahead, clockwise).

A holder (or a node the rotating token reaches) with traps serves them in
FIFO order by **loaning** the token (rule 7's decorated ``ŷ``): the
requester uses it and returns it, and the rotation resumes where it was
intercepted (rule 8).

Optimizations from Section 4.4, all config-selectable:

- trap GC ``rotation`` (clock-expiry + recent-serves piggyback) and
  ``inverse`` (loans retrace the gimme trail, clearing traps en route);
- ``single_outstanding`` request throttling;
- ``idle_pause`` adaptive rotation speed — unlike the plain ring, this core
  *does* have a remote-demand signal (incoming gimmes), so the token can
  park when idle and resume at full speed the instant demand appears;
- ``retry_timeout`` — because gimmes are cheap (droppable), an optional
  retry recovers search progress under lossy networks; the rotation is
  always the safety net.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Tuple

from repro.core.base import ProtocolCore
from repro.core.config import GC_INVERSE, GC_ROTATION, ProtocolConfig
from repro.core.effects import CancelTimer, Deliver, Effect, Send, SetTimer
from repro.core.messages import GimmeMsg, LoanMsg, LoanReturnMsg, TokenMsg
from repro.core.traps import TrapStore
from repro.errors import ProtocolError

__all__ = ["BinarySearchCore"]

_FWD = "forward"
_REL = "release"
_RETRY = "retry"


class BinarySearchCore(ProtocolCore):
    """Per-node state machine of the adaptive binary-search protocol."""

    protocol_name = "binary_search"

    def __init__(self, node_id: int, config: ProtocolConfig,
                 initial_holder: int = 0) -> None:
        super().__init__(node_id, config)
        self.has_token = node_id == initial_holder
        self.lent_to: Optional[int] = None
        self.clock = 0
        self.round_no = 0
        self.last_visit = 0 if self.has_token else -1
        self.ready = False
        self.req_seq = 0
        self.granted_seq = -1
        self.outstanding = False
        self.traps = TrapStore()
        self._served_carry: Tuple[Tuple[int, int], ...] = ()
        # Memo of the last _merge_served inputs/output: between grants the
        # token's piggyback and each node's carry are stable, so most merges
        # repeat the previous one verbatim.
        self._ms_in: Optional[Tuple[Tuple[int, int], ...]] = None
        self._ms_base: Optional[Tuple[Tuple[int, int], ...]] = None
        self._ms_out: Tuple[Tuple[int, int], ...] = ()
        # Lazily-rebuilt {z: seq} view of _served_carry (ids are unique in
        # the carry).  Keyed by tuple identity so direct writes to
        # _served_carry (tests, subclasses) invalidate it automatically.
        self._sm_src: Optional[Tuple[Tuple[int, int], ...]] = None
        self._sm_map: dict = {}
        self._parked = False
        self._serving = False
        self._demand_seen = False
        self._loan_pending: Optional[Tuple[int, Tuple[Tuple[int, int], ...]]] = None
        self._gimme_inflight = False
        self._gimme_queue: List[GimmeMsg] = []

    # -- application interface -------------------------------------------------

    def on_request(self, now: float) -> List[Effect]:
        """Become ready; serve locally when holding, else launch the search."""
        self.ready = True
        self.req_seq += 1
        self._demand_seen = True
        if self.has_token and not self._serving:
            effects: List[Effect] = []
            if self._parked:
                self._parked = False
                effects.append(CancelTimer(_FWD))
            effects.extend(self._advance(now))
            return effects
        if self.lent_to is not None:
            return []  # served when the loan returns
        return self._launch_search()

    def on_release(self, now: float) -> List[Effect]:
        """Finish using a held grant (hold_until_release mode)."""
        if not self._serving:
            return []
        self._serving = False
        effects: List[Effect] = [
            Deliver("released", (self.node_id, self.granted_seq))
        ]
        if self._loan_pending is not None:
            # We were serving a loaned token: return it now.
            lender, carry = self._loan_pending
            self._loan_pending = None
            effects.append(Send(lender, LoanReturnMsg(
                clock=self.clock, round_no=self.round_no, served=carry,
                epoch=getattr(self, "epoch", 0))))
            return effects
        effects.extend(self._advance(now))
        return effects

    # -- protocol --------------------------------------------------------------

    def on_start(self, now: float) -> List[Effect]:
        if not self.has_token:
            return []
        return [Deliver("token_visit", (self.node_id, self.clock))] + \
            self._advance(now)

    def on_message(self, src: int, msg: object, now: float) -> List[Effect]:
        # Exact-type dispatch (message classes are final); isinstance
        # fallback keeps hypothetical subclasses working.
        kind = type(msg)
        if kind is TokenMsg:
            return self._on_token(msg, now)
        if kind is GimmeMsg:
            return self._on_gimme(msg, now)
        if kind is LoanMsg:
            return self._on_loan(src, msg, now)
        if kind is LoanReturnMsg:
            return self._on_loan_return(msg, now)
        if isinstance(msg, TokenMsg):
            return self._on_token(msg, now)
        if isinstance(msg, GimmeMsg):
            return self._on_gimme(msg, now)
        if isinstance(msg, LoanMsg):
            return self._on_loan(src, msg, now)
        if isinstance(msg, LoanReturnMsg):
            return self._on_loan_return(msg, now)
        raise ProtocolError(
            f"binary-search node {self.node_id}: unexpected {msg!r}"
        )

    def on_timer(self, key: Hashable, now: float) -> List[Effect]:
        if key == _FWD:
            if not (self.has_token and self._parked):
                return []
            self._parked = False
            return self._forward()
        if key == _REL:
            return self.on_release(now)
        if isinstance(key, tuple) and key and key[0] == _RETRY:
            return self._on_retry(key[1])
        return []

    # -- token rotation ----------------------------------------------------------

    def _on_token(self, msg: TokenMsg, now: float) -> List[Effect]:
        if self.has_token or self.lent_to is not None:
            raise ProtocolError(f"node {self.node_id} received a second token")
        self.has_token = True
        self.clock = msg.clock
        self.round_no = msg.round_no
        self.last_visit = msg.clock
        self._merge_served(msg.served)
        self._gc_traps()
        effects: List[Effect] = [Deliver("token_visit", (self.node_id, self.clock))]
        effects.extend(self._release_gimme_budget(now))
        effects.extend(self._advance(now))
        return effects

    def _advance(self, now: float) -> List[Effect]:
        """Serve self, then FIFO traps (by loan), then rotate or park."""
        if self._serving or not self.has_token:
            return []
        effects: List[Effect] = []
        if self.ready:
            self.ready = False
            self.outstanding = False
            self.granted_seq = self.req_seq
            self._record_served(self.node_id, self.req_seq)
            effects.append(Deliver("granted", (self.node_id, self.req_seq)))
            if self.config.hold_until_release:
                self._serving = True
                return effects
            if self.config.service_time > 0:
                self._serving = True
                effects.append(SetTimer(_REL, self.config.service_time))
                return effects
            effects.append(Deliver("released", (self.node_id, self.req_seq)))
        loan = self._next_loan()
        if loan is not None:
            effects.extend(loan)
            return effects
        if self.config.idle_pause > 0 and not self._demand_seen:
            self._parked = True
            effects.append(SetTimer(_FWD, self.config.idle_pause))
            return effects
        effects.extend(self._forward())
        return effects

    def _next_loan(self) -> Optional[List[Effect]]:
        """Pop the next live trap and loan the token to its requester,
        returning the effects, or None when no live trap remains."""
        while True:
            t = self.traps.pop()
            if t is None:
                return None
            if t.requester == self.node_id:
                continue
            if self._is_served(t.requester, t.req_seq):
                continue
            if self._skip_requester(t.requester):
                continue
            self.has_token = False
            self.lent_to = t.requester
            trail: Tuple[int, ...] = ()
            target = t.requester
            if self.config.trap_gc == GC_INVERSE and t.trail:
                # Retrace the search path backwards, clearing traps en route.
                back = tuple(h for h in reversed(t.trail)
                             if h not in (self.node_id, t.requester))
                if back:
                    target = back[0]
                    trail = back[1:]
            effects = [Send(target, LoanMsg(
                clock=self.clock, round_no=self.round_no,
                lender=self.node_id, requester=t.requester,
                req_seq=t.req_seq, served=self._served_carry, trail=trail,
                epoch=self._token_epoch(),
            ))]
            effects.extend(self._after_loan_sent(t.requester))
            return effects

    def _forward(self) -> List[Effect]:
        if self.ring_size() == 1:
            return []  # a solitary node keeps its token
        self.has_token = False
        self._demand_seen = False
        successor = self._rotation_successor()
        if successor == self.node_id:
            self.has_token = True
            return []  # everyone else is suspected or gone
        next_round = (
            self.round_no + 1 if successor == self.ring_first() else self.round_no
        )
        return [Send(successor, TokenMsg(
            clock=self.clock + 1, round_no=next_round,
            served=self._served_carry, epoch=self._token_epoch(),
            suspects=self._token_suspects(),
        ))]

    # -- extension hooks (fault tolerance / dynamic membership) -----------------

    def _token_epoch(self) -> int:
        """Epoch stamped on outgoing token/loan messages (0 = static)."""
        return 0

    def _token_suspects(self):
        """Suspect set piggybacked on the forwarded token (static: none)."""
        return ()

    def _rotation_successor(self) -> int:
        """Next hop of the circulation; overridden to skip suspects."""
        return self.ring_succ()

    def _skip_requester(self, requester: int) -> bool:
        """Whether to drop traps for this requester (e.g. suspected dead)."""
        return False

    def _after_loan_sent(self, requester: int) -> List[Effect]:
        """Extra effects after a loan departs (e.g. arm a reclaim timer)."""
        return []

    # -- loans ---------------------------------------------------------------------

    def _on_loan(self, src: int, msg: LoanMsg, now: float) -> List[Effect]:
        if msg.requester != self.node_id:
            # Inverse-GC relay hop: clear our trap and pass the loan along.
            self.traps.remove_for(msg.requester)
            nxt = msg.trail[0] if msg.trail else msg.requester
            relayed = LoanMsg(
                clock=msg.clock, round_no=msg.round_no, lender=msg.lender,
                requester=msg.requester, req_seq=msg.req_seq,
                served=msg.served, trail=msg.trail[1:], epoch=msg.epoch,
            )
            return [Send(nxt, relayed)]
        self.last_visit = msg.clock
        self.clock = msg.clock
        self.round_no = msg.round_no
        self._merge_served(msg.served)
        if not self.ready:
            # Stale loan (already served through rotation): bounce it back.
            return [Send(msg.lender, LoanReturnMsg(
                clock=msg.clock, round_no=msg.round_no,
                served=self._served_carry, epoch=msg.epoch))]
        self.ready = False
        self.outstanding = False
        self.granted_seq = self.req_seq
        self._record_served(self.node_id, self.req_seq)
        effects: List[Effect] = [Deliver("granted", (self.node_id, self.req_seq))]
        if self.config.hold_until_release:
            self._serving = True
            self._loan_pending = (msg.lender, self._served_carry)
            return effects
        if self.config.service_time > 0:
            self._serving = True
            self._loan_pending = (msg.lender, self._served_carry)
            effects.append(SetTimer(_REL, self.config.service_time))
            return effects
        effects.append(Deliver("released", (self.node_id, self.req_seq)))
        effects.append(Send(msg.lender, LoanReturnMsg(
            clock=msg.clock, round_no=msg.round_no,
            served=self._served_carry, epoch=msg.epoch)))
        return effects

    def _on_loan_return(self, msg: LoanReturnMsg, now: float) -> List[Effect]:
        if self.lent_to is None:
            raise ProtocolError(
                f"node {self.node_id}: loan return without outstanding loan"
            )
        self.lent_to = None
        self.has_token = True
        self._merge_served(msg.served)
        self._gc_traps()
        effects = self._release_gimme_budget(now)
        effects.extend(self._advance(now))
        return effects

    # -- search ------------------------------------------------------------------

    def _launch_search(self) -> List[Effect]:
        if self.ring_size() <= 1:
            return []
        if self.outstanding and self.config.single_outstanding:
            return []
        self.outstanding = True
        self._gimme_inflight = True
        span = self.ring_size() // 2
        target = self.hop(span)
        effects: List[Effect] = [Send(target, GimmeMsg(
            requester=self.node_id, req_seq=self.req_seq, span=span,
            visit_stamp=self.last_visit, trail=(self.node_id,),
        ))]
        if self.config.retry_timeout > 0:
            effects.append(SetTimer((_RETRY, self.req_seq),
                                    self.config.retry_timeout))
        return effects

    def _on_retry(self, req_seq: int) -> List[Effect]:
        if not self.ready or req_seq != self.req_seq:
            return []
        self.outstanding = False
        return self._launch_search()

    def _on_gimme(self, msg: GimmeMsg, now: float) -> List[Effect]:
        self._demand_seen = True
        if msg.requester == self.node_id:
            return []  # our own search came all the way around
        if self._is_served(msg.requester, msg.req_seq):
            return []  # stale search: its request is already satisfied
        if self.has_token or self.lent_to is not None:
            # The search found the token('s owner): trap FIFO, serve when free.
            self.traps.add(msg.requester, msg.req_seq, msg.visit_stamp, msg.trail)
            effects: List[Effect] = []
            if self.has_token and not self._serving:
                if self._parked:
                    self._parked = False
                    effects.append(CancelTimer(_FWD))
                effects.extend(self._advance(now))
            return effects
        # Traps are stamped with the *requester's* visit stamp: the rotating
        # token reaches the requester within n clock ticks of that stamp, so
        # a trap older than that is provably obsolete (rotation GC).
        self.traps.add(msg.requester, msg.req_seq, msg.visit_stamp, msg.trail)
        half = msg.span // 2
        if half < 1:
            return []  # search exhausted; the trap will catch the token
        if self.config.forward_throttle and self._gimme_inflight:
            # Strong throttle: one in-flight gimme per node; the rest wait
            # for the next token sighting (the trap is already laid, so
            # correctness never depends on the delayed forward).
            self._gimme_queue.append(msg)
            return []
        if self.last_visit < msg.visit_stamp:
            # Rule 6 / Figure 8(a): the requester saw the token after us, so
            # the token is behind us — continue counter-clockwise.
            target = self.hop(-half)
        else:
            # Figure 8(b): we saw the token after the requester (or neither
            # has) — the token is ahead, continue clockwise.
            target = self.hop(half)
        if target in (self.node_id, msg.requester):
            return []
        self._gimme_inflight = True
        return [Send(target, GimmeMsg(
            requester=msg.requester, req_seq=msg.req_seq, span=half,
            visit_stamp=msg.visit_stamp, trail=msg.trail + (self.node_id,),
        ))]

    def _release_gimme_budget(self, now: float) -> List[Effect]:
        """A token sighting resets the forward-throttle budget and releases
        at most one queued gimme (re-run through the normal handler so
        staleness checks and direction are re-evaluated with fresh state)."""
        self._gimme_inflight = False
        if not self._gimme_queue:
            return []
        queued = self._gimme_queue
        self._gimme_queue = []
        effects: List[Effect] = []
        for idx, msg in enumerate(queued):
            if self._is_served(msg.requester, msg.req_seq):
                continue
            effects.extend(self._on_gimme(msg, now))
            if self._gimme_inflight:
                self._gimme_queue.extend(queued[idx + 1:])
                break
        return effects

    # -- served bookkeeping --------------------------------------------------------

    def _record_served(self, z: int, seq: int) -> None:
        if self.config.trap_gc != GC_ROTATION or self.config.served_piggyback == 0:
            return
        entries = [(a, b) for (a, b) in self._served_carry if a != z]
        entries.append((z, seq))
        keep = self.config.served_piggyback
        self._served_carry = tuple(entries[-keep:])

    def _merge_served(self, served: Tuple[Tuple[int, int], ...]) -> None:
        if self.config.trap_gc != GC_ROTATION:
            return
        carry = self._served_carry
        if served == self._ms_in and carry == self._ms_base:
            # Same inputs as last time: reuse the identical result.
            self._served_carry = self._ms_out
            return
        merged = dict(carry)
        for z, seq in served:
            if merged.get(z, -1) < seq:
                merged[z] = seq
        entries = sorted(merged.items())
        keep = self.config.served_piggyback
        if keep and len(entries) > keep:
            entries = entries[-keep:]
        out = tuple(entries)
        self._served_carry = out
        self._ms_in, self._ms_base, self._ms_out = served, carry, out

    def _served_lookup(self) -> dict:
        """The carry as a ``{z: seq}`` dict, rebuilt only when the carry
        tuple was replaced since the last call."""
        carry = self._served_carry
        if carry is not self._sm_src:
            self._sm_src = carry
            self._sm_map = dict(carry)
        return self._sm_map

    def _is_served(self, z: int, seq: int) -> bool:
        return self._served_lookup().get(z, -1) >= seq

    def _gc_traps(self) -> None:
        if self.config.trap_gc == GC_ROTATION:
            self.traps.expire(self.clock, self.ring_size())
            self.traps.drop_served(self._served_lookup())
