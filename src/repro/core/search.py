"""System Search with the Lemma 5 ring restriction, executable.

The *linear*-search ancestor of the binary-search protocol: a ready node
sends an ``ask`` to its ring successor; each node lays a trap and forwards
the ask to *its* successor, so the request traverses the ring node by
node.  A holder with a trap sends the token **directly** to the trapped
requester (the paper's rule 7 sends the token itself, not a loan), and
rotation resumes from the requester's position.

Responsiveness is O(N) (Lemma 5) — the same bound as the plain ring but
with extra search traffic; it exists here as the stepping-stone baseline
between :class:`~repro.core.ring.RingCore` and
:class:`~repro.core.binary_search.BinarySearchCore`, and the benchmarks
show why the binary refinement is the one that matters.
"""

from __future__ import annotations

from typing import Hashable, List, Optional

from repro.core.base import ProtocolCore
from repro.core.config import GC_ROTATION, ProtocolConfig
from repro.core.effects import CancelTimer, Deliver, Effect, Send, SetTimer
from repro.core.messages import AskMsg, TokenMsg
from repro.core.traps import TrapStore
from repro.errors import ProtocolError

__all__ = ["LinearSearchCore"]

_FWD = "forward"
_REL = "release"


class LinearSearchCore(ProtocolCore):
    """Per-node state machine of the ring-restricted System Search."""

    protocol_name = "linear_search"

    def __init__(self, node_id: int, config: ProtocolConfig,
                 initial_holder: int = 0) -> None:
        super().__init__(node_id, config)
        self.has_token = node_id == initial_holder
        self.clock = 0
        self.round_no = 0
        self.last_visit = 0 if self.has_token else -1
        self.ready = False
        self.req_seq = 0
        self.granted_seq = -1
        self.outstanding = False
        self.traps = TrapStore()
        self._parked = False
        self._serving = False
        self._demand_seen = False

    # -- application interface ---------------------------------------------------

    def on_request(self, now: float) -> List[Effect]:
        self.ready = True
        self.req_seq += 1
        self._demand_seen = True
        if self.has_token and not self._serving:
            effects: List[Effect] = []
            if self._parked:
                self._parked = False
                effects.append(CancelTimer(_FWD))
            effects.extend(self._advance(now))
            return effects
        if self.n <= 1 or (self.outstanding and self.config.single_outstanding):
            return []
        self.outstanding = True
        return [Send(self.ring_succ(), AskMsg(
            requester=self.node_id, req_seq=self.req_seq,
            visit_stamp=self.last_visit,
        ))]

    def on_release(self, now: float) -> List[Effect]:
        if not self._serving:
            return []
        self._serving = False
        effects: List[Effect] = [
            Deliver("released", (self.node_id, self.granted_seq))
        ]
        effects.extend(self._advance(now))
        return effects

    # -- protocol ------------------------------------------------------------------

    def on_start(self, now: float) -> List[Effect]:
        if not self.has_token:
            return []
        return [Deliver("token_visit", (self.node_id, self.clock))] + \
            self._advance(now)

    def on_message(self, src: int, msg: object, now: float) -> List[Effect]:
        if isinstance(msg, TokenMsg):
            return self._on_token(msg, now)
        if isinstance(msg, AskMsg):
            return self._on_ask(msg, now)
        raise ProtocolError(
            f"linear-search node {self.node_id}: unexpected {msg!r}"
        )

    def on_timer(self, key: Hashable, now: float) -> List[Effect]:
        if key == _FWD:
            if not (self.has_token and self._parked):
                return []
            self._parked = False
            return self._forward()
        if key == _REL:
            return self.on_release(now)
        return []

    def _on_token(self, msg: TokenMsg, now: float) -> List[Effect]:
        if self.has_token:
            raise ProtocolError(f"node {self.node_id} received a second token")
        self.has_token = True
        self.clock = msg.clock
        self.round_no = msg.round_no
        self.last_visit = msg.clock
        if self.config.trap_gc == GC_ROTATION:
            self.traps.expire(self.clock, self.n)
        effects: List[Effect] = [Deliver("token_visit", (self.node_id, self.clock))]
        effects.extend(self._advance(now))
        return effects

    def _on_ask(self, msg: AskMsg, now: float) -> List[Effect]:
        self._demand_seen = True
        if msg.requester == self.node_id:
            return []  # our ask completed a full circuit
        self.traps.add(msg.requester, msg.req_seq, msg.visit_stamp)
        if self.has_token or self._serving:
            effects: List[Effect] = []
            if self.has_token and not self._serving:
                if self._parked:
                    self._parked = False
                    effects.append(CancelTimer(_FWD))
                effects.extend(self._advance(now))
            return effects
        nxt = self.ring_succ()
        if nxt == msg.requester:
            return []  # the ask is about to complete its circuit
        return [Send(nxt, msg)]

    def _advance(self, now: float) -> List[Effect]:
        if self._serving or not self.has_token:
            return []
        effects: List[Effect] = []
        if self.ready:
            self.ready = False
            self.outstanding = False
            self.granted_seq = self.req_seq
            effects.append(Deliver("granted", (self.node_id, self.req_seq)))
            if self.config.hold_until_release:
                self._serving = True
                return effects
            if self.config.service_time > 0:
                self._serving = True
                effects.append(SetTimer(_REL, self.config.service_time))
                return effects
            effects.append(Deliver("released", (self.node_id, self.req_seq)))
        jump = self._next_jump()
        if jump is not None:
            effects.append(jump)
            return effects
        if self.config.idle_pause > 0 and not self._demand_seen:
            self._parked = True
            effects.append(SetTimer(_FWD, self.config.idle_pause))
            return effects
        effects.extend(self._forward())
        return effects

    def _next_jump(self) -> Optional[Send]:
        """Rule 7: hand the token straight to the oldest trapped requester;
        rotation then continues from there."""
        while True:
            t = self.traps.pop()
            if t is None:
                return None
            if t.requester == self.node_id:
                continue
            self.has_token = False
            # A direct hand-over is not a circulation hop: the clock is not
            # advanced (matching the spec, where rule 7 appends no event).
            return Send(t.requester, TokenMsg(
                clock=self.clock, round_no=self.round_no,
            ))

    def _forward(self) -> List[Effect]:
        if self.n == 1:
            return []
        self.has_token = False
        self._demand_seen = False
        successor = self.ring_succ()
        next_round = self.round_no + 1 if successor == 0 else self.round_no
        return [Send(successor, TokenMsg(clock=self.clock + 1, round_no=next_round))]
