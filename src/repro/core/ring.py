"""The regular ring token-rotation protocol (System Message-Passing with
rule 3').

This is the paper's baseline comparator in Figures 9 and 10: the token
circulates node-to-node; a node serves its own pending request when the
token arrives and passes it on.  Responsiveness is O(N) (Lemma 4).

The ``idle_pause`` knob implements the Section 4.4 adaptive-speed remark —
"the speed of token passing around the cycle can be varied according to
demand": a node holding the token with no local demand parks it for
``idle_pause`` before forwarding (a locally arriving request un-parks it
immediately).  The ring node has no remote-demand signal, so slowing the
rotation trades responsiveness for message savings; the
adaptive-speed ablation benchmark quantifies this.
"""

from __future__ import annotations

from typing import Hashable, List

from repro.core.base import ProtocolCore
from repro.core.config import ProtocolConfig
from repro.core.effects import CancelTimer, Deliver, Effect, Send, SetTimer
from repro.core.messages import TokenMsg
from repro.errors import ProtocolError

__all__ = ["RingCore"]

_FWD = "forward"
_REL = "release"


class RingCore(ProtocolCore):
    """Per-node state machine of the circular-rotation protocol."""

    protocol_name = "ring"

    def __init__(self, node_id: int, config: ProtocolConfig,
                 initial_holder: int = 0) -> None:
        super().__init__(node_id, config)
        self.has_token = node_id == initial_holder
        self.clock = 0
        self.round_no = 0
        self.last_visit = 0 if self.has_token else -1
        self.ready = False
        self.req_seq = 0
        self.granted_seq = -1
        self._parked = False          # token held with the forward timer armed
        self._serving = False         # grant outstanding (hold/service mode)

    # -- requests -------------------------------------------------------------

    def on_request(self, now: float) -> List[Effect]:
        """Become ready; a parked or just-arrived token serves immediately."""
        self.ready = True
        self.req_seq += 1
        if self.has_token and not self._serving:
            effects: List[Effect] = []
            if self._parked:
                self._parked = False
                effects.append(CancelTimer(_FWD))
            effects.extend(self._advance(now))
            return effects
        return []

    def on_release(self, now: float) -> List[Effect]:
        """Finish using the token (hold_until_release mode)."""
        if not self._serving:
            return []
        self._serving = False
        effects: List[Effect] = [
            Deliver("released", (self.node_id, self.granted_seq))
        ]
        effects.extend(self._advance(now))
        return effects

    # -- protocol -------------------------------------------------------------

    def on_start(self, now: float) -> List[Effect]:
        if not self.has_token:
            return []
        return [Deliver("token_visit", (self.node_id, self.clock))] + \
            self._advance(now)

    def on_message(self, src: int, msg: object, now: float) -> List[Effect]:
        if isinstance(msg, TokenMsg):
            return self._on_token(msg, now)
        raise ProtocolError(f"ring node {self.node_id}: unexpected {msg!r}")

    def on_timer(self, key: Hashable, now: float) -> List[Effect]:
        if key == _FWD:
            if not (self.has_token and self._parked):
                return []
            self._parked = False
            return self._forward()
        if key == _REL:
            return self.on_release(now)
        return []

    def _on_token(self, msg: TokenMsg, now: float) -> List[Effect]:
        if self.has_token:
            raise ProtocolError(f"node {self.node_id} received a second token")
        self.has_token = True
        self.clock = msg.clock
        self.round_no = msg.round_no
        self.last_visit = msg.clock
        effects: List[Effect] = [Deliver("token_visit", (self.node_id, self.clock))]
        effects.extend(self._advance(now))
        return effects

    def _advance(self, now: float) -> List[Effect]:
        """Serve a local request if any, then forward (or park) the token."""
        if self._serving:
            return []
        effects: List[Effect] = []
        if self.ready:
            self.ready = False
            self.granted_seq = self.req_seq
            effects.append(Deliver("granted", (self.node_id, self.req_seq)))
            if self.config.hold_until_release:
                self._serving = True
                return effects
            if self.config.service_time > 0:
                self._serving = True
                effects.append(SetTimer(_REL, self.config.service_time))
                return effects
            effects.append(Deliver("released", (self.node_id, self.req_seq)))
        if self.config.idle_pause > 0:
            self._parked = True
            effects.append(SetTimer(_FWD, self.config.idle_pause))
            return effects
        effects.extend(self._forward())
        return effects

    def _forward(self) -> List[Effect]:
        if self.ring_size() == 1:
            return []  # a solitary node keeps its token
        self.has_token = False
        successor = self.ring_succ()
        next_round = (
            self.round_no + 1 if successor == self.ring_first() else self.round_no
        )
        return [Send(successor, TokenMsg(clock=self.clock + 1, round_no=next_round))]
