"""Directed search (Section 4.4), executable.

A variant of System BinarySearch where "search messages do not migrate
through the ring but instead are always returned to the searching node
informing it whether the token was found or not".  The requester steers
the whole binary search itself: it probes a node, the probed node lays a
trap and replies with its visit stamp, and the requester halves the span
and probes again in the direction the reply implies.

This doubles the search traffic (≤ 2·log N messages per request) but lets
the requester stop the search the moment it is served — e.g. when the
rotating token reaches it first — saving the tail of the search.  The
A2 ablation benchmark compares the two disciplines.
"""

from __future__ import annotations

from typing import List

from repro.core.binary_search import BinarySearchCore
from repro.core.effects import Effect, Send
from repro.core.messages import ProbeMsg, ProbeReplyMsg

__all__ = ["DirectedSearchCore"]


class DirectedSearchCore(BinarySearchCore):
    """Binary-search protocol with requester-driven (directed) probing."""

    protocol_name = "directed_search"

    def __init__(self, node_id: int, config, initial_holder: int = 0) -> None:
        super().__init__(node_id, config, initial_holder)
        self._probe_span = 0
        self._probe_target = -1

    # -- requester side --------------------------------------------------------

    def _launch_search(self) -> List[Effect]:
        if self.n <= 1:
            return []
        if self.outstanding and self.config.single_outstanding:
            return []
        self.outstanding = True
        self._probe_span = self.n // 2
        self._probe_target = self.hop(self._probe_span)
        return [self._probe()]

    def _probe(self) -> Send:
        return Send(self._probe_target, ProbeMsg(
            requester=self.node_id, req_seq=self.req_seq,
            visit_stamp=self.last_visit,
        ))

    def _on_probe_reply(self, msg: ProbeReplyMsg) -> List[Effect]:
        if not self.ready or msg.req_seq != self.req_seq:
            return []  # already served: stop the search right here
        if msg.has_token:
            return []  # the probed holder has trapped us; the loan is coming
        half = self._probe_span // 2
        if half < 1:
            return []  # search exhausted; the laid traps will catch the token
        if msg.last_visit < self.last_visit:
            self._probe_target = (self._probe_target - half) % self.n
        else:
            self._probe_target = (self._probe_target + half) % self.n
        self._probe_span = half
        if self._probe_target == self.node_id:
            return []
        return [self._probe()]

    # -- probed side --------------------------------------------------------------

    def _on_probe(self, msg: ProbeMsg, now: float) -> List[Effect]:
        self._demand_seen = True
        if msg.requester == self.node_id:
            return []
        if self._is_served(msg.requester, msg.req_seq):
            return []
        holds = self.has_token or self.lent_to is not None
        self.traps.add(msg.requester, msg.req_seq, msg.visit_stamp)
        effects: List[Effect] = [Send(msg.requester, ProbeReplyMsg(
            prober=self.node_id, req_seq=msg.req_seq,
            last_visit=self.last_visit, has_token=holds,
        ))]
        if self.has_token and not self._serving:
            if self._parked:
                self._parked = False
                from repro.core.effects import CancelTimer
                effects.append(CancelTimer("forward"))
            effects.extend(self._advance(now))
        return effects

    # -- dispatch -------------------------------------------------------------------

    def on_message(self, src: int, msg: object, now: float) -> List[Effect]:
        if isinstance(msg, ProbeMsg):
            return self._on_probe(msg, now)
        if isinstance(msg, ProbeReplyMsg):
            return self._on_probe_reply(msg)
        return super().on_message(src, msg, now)
