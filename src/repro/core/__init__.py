"""Executable token-passing protocols — the paper's contribution.

- :class:`RingCore` — circular rotation (the Figures 9/10 baseline);
- :class:`LinearSearchCore` — System Search, ring-restricted (Lemma 5);
- :class:`BinarySearchCore` — the adaptive ring + binary-search protocol;
- :class:`DirectedSearchCore`, :class:`PushCore`, :class:`HybridCore` —
  the Section 4.2/4.4 variants;
- :class:`Cluster` — wiring + metrics for simulation experiments.
"""

from repro.core.base import ProtocolCore
from repro.core.binary_search import BinarySearchCore
from repro.core.cluster import Cluster
from repro.core.config import GC_INVERSE, GC_NONE, GC_ROTATION, ProtocolConfig
from repro.core.directed_search import DirectedSearchCore
from repro.core.effects import CancelTimer, Deliver, Effect, Send, SetTimer, Trace
from repro.core.hybrid import HybridCore
from repro.core.push import PushCore
from repro.core.ring import RingCore
from repro.core.search import LinearSearchCore
from repro.core.traps import Trap, TrapStore

__all__ = [
    "BinarySearchCore",
    "CancelTimer",
    "Cluster",
    "Deliver",
    "DirectedSearchCore",
    "Effect",
    "GC_INVERSE",
    "GC_NONE",
    "GC_ROTATION",
    "HybridCore",
    "LinearSearchCore",
    "ProtocolConfig",
    "ProtocolCore",
    "PushCore",
    "RingCore",
    "Send",
    "SetTimer",
    "Trace",
    "Trap",
    "TrapStore",
]
