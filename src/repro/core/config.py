"""Protocol configuration.

One dataclass covers every protocol variant; fields irrelevant to a given
core are ignored by it.  Defaults reproduce the paper's simulation set-up
(Section 4.3): unit message delay, zero-cost local events, continuous
token rotation, single outstanding request, rotation-based trap GC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["ProtocolConfig", "GC_NONE", "GC_ROTATION", "GC_INVERSE"]

GC_NONE = "none"
GC_ROTATION = "rotation"
GC_INVERSE = "inverse"

_GC_POLICIES = (GC_NONE, GC_ROTATION, GC_INVERSE)


@dataclass
class ProtocolConfig:
    """Tunable knobs shared by the executable protocol cores.

    - ``trap_gc`` — obsolete-trap garbage collection (Section 4.4):
      ``"none"`` keeps traps until they fire (stale traps cause dummy
      loans); ``"rotation"`` expires traps after the token demonstrably
      completed a circulation past the requester and piggybacks the most
      recent serves on the token; ``"inverse"`` routes loans back along the
      search trail, clearing traps en route.
    - ``served_piggyback`` — how many recent serves the token carries under
      rotation GC (bounded so token messages stay O(1)-ish).
    - ``single_outstanding`` — at most one *own* gimme in flight per node
      (Section 4.4); further requests wait for the first to be satisfied.
    - ``forward_throttle`` — the strong form of the Section 4.4 remark:
      each node keeps at most one gimme (own or forwarded) in flight,
      queueing the rest until the next token sighting — which bounds the
      total gimme traffic by the number of token passes.
    - ``idle_pause`` — adaptive token speed (Section 4.4): the holder waits
      this long before forwarding when it has seen no demand; 0 = the
      paper's continuous full-speed rotation.
    - ``service_time`` — how long a grantee holds the token before
      releasing; 0 matches the paper's zero-cost local events.
    - ``retry_timeout`` — requesters re-issue their (cheap, droppable)
      search after this long without a grant; 0 disables retries and relies
      on the ring rotation as the safety net.
    - ``hold_until_release`` — grants block the token until the application
      explicitly releases (used by the mutex/broadcast apps); the
      simulation experiments use auto-release.
    - ``advert_every`` — push-mode: the holder re-advertises its position
      every this many token receipts (PushCore/HybridCore).
    - ``hybrid_push_threshold`` — HybridCore enables push advertisements
      when the number of distinct requesters seen in the last round is at
      least this.
    - ``regen_timeout`` / ``census_window`` / ``loan_timeout`` — token-loss
      detection and regeneration (Section 5): a requester waiting longer
      than ``regen_timeout`` runs a who-has census, waits ``census_window``
      for replies, and elects a regenerator; a lender reclaims an unreturned
      loan after ``loan_timeout``.  0 disables each mechanism.
    - ``regen_quorum`` — partition-resilient regeneration: a census origin
      may only elect a regenerator when it heard from a strict majority of
      the ring.  A minority partition parks (keeps probing) instead of
      minting a token that epoch fencing would have to retire on heal.
      Off by default to preserve the paper's plain Section 5 behaviour.
    - ``stabilize_watch`` — StabilizingCore's self-stabilization watchdog
      period: every node, holder or not, re-censuses the ring on this
      cadence and mints a fenced replacement token after two consecutive
      censuses that show neither a live token nor progress.  0 disables
      the watchdog (the core still absorbs duplicates and repairs local
      state on every event).
    - ``stabilize_reset`` — allow the reloading-wave-style full reset of a
      node's volatile bookkeeping (queues, traps, memos) when local repair
      finds it inconsistent; off limits repair to field clamping.
    - ``stabilize_bound`` — convergence-time bound the ConvergenceOracle
      enforces after an injected corruption, in virtual seconds.  0 lets
      the harness derive a bound from the ring size and timer settings.
    """

    n: int = 0
    trap_gc: str = GC_ROTATION
    served_piggyback: int = 8
    single_outstanding: bool = True
    forward_throttle: bool = False
    idle_pause: float = 0.0
    service_time: float = 0.0
    retry_timeout: float = 0.0
    hold_until_release: bool = False
    advert_every: int = 1
    hybrid_push_threshold: int = 2
    regen_timeout: float = 0.0
    census_window: float = 5.0
    loan_timeout: float = 0.0
    regen_quorum: bool = False
    stabilize_watch: float = 0.0
    stabilize_reset: bool = True
    stabilize_bound: float = 0.0

    def validate(self) -> "ProtocolConfig":
        """Check field consistency; return self for chaining."""
        if self.n < 1:
            raise ConfigError(f"n must be >= 1, got {self.n}")
        if self.trap_gc not in _GC_POLICIES:
            raise ConfigError(
                f"trap_gc must be one of {_GC_POLICIES}, got {self.trap_gc!r}"
            )
        if self.served_piggyback < 0:
            raise ConfigError("served_piggyback must be >= 0")
        if self.idle_pause < 0:
            raise ConfigError("idle_pause must be >= 0")
        if self.service_time < 0:
            raise ConfigError("service_time must be >= 0")
        if self.retry_timeout < 0:
            raise ConfigError("retry_timeout must be >= 0")
        if self.advert_every < 1:
            raise ConfigError("advert_every must be >= 1")
        if self.regen_timeout < 0:
            raise ConfigError("regen_timeout must be >= 0")
        if self.census_window <= 0:
            raise ConfigError("census_window must be positive")
        if self.loan_timeout < 0:
            raise ConfigError("loan_timeout must be >= 0")
        if self.stabilize_watch < 0:
            raise ConfigError("stabilize_watch must be >= 0")
        if self.stabilize_bound < 0:
            raise ConfigError("stabilize_bound must be >= 0")
        return self
