"""Effects emitted by sans-IO protocol cores.

Protocol cores (:mod:`repro.core.base`) are pure state machines: every
handler returns a list of effects instead of performing IO.  A driver — the
discrete-event one in :mod:`repro.sim.driver` or the asyncio one in
:mod:`repro.aio` — interprets them.  This keeps protocol logic identical
across runtimes and directly unit-testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Tuple

__all__ = ["Effect", "Send", "SetTimer", "CancelTimer", "Deliver", "Trace"]


class Effect:
    """Marker base class for effects."""

    __slots__ = ()


@dataclass(frozen=True)
class Send(Effect):
    """Send ``msg`` to node ``dst``."""

    dst: int
    msg: Any


@dataclass(frozen=True)
class SetTimer(Effect):
    """(Re)arm the timer ``key`` to fire ``delay`` from now.

    Re-arming an already-armed key replaces the previous deadline.
    """

    key: Hashable
    delay: float


@dataclass(frozen=True)
class CancelTimer(Effect):
    """Disarm the timer ``key`` (no-op when not armed)."""

    key: Hashable


@dataclass(frozen=True)
class Deliver(Effect):
    """Deliver an application-level event (e.g. token granted, broadcast
    delivered) to whoever is driving the core."""

    kind: str
    payload: Tuple = ()


@dataclass(frozen=True)
class Trace(Effect):
    """Emit a debug/trace record; drivers may log or ignore it."""

    kind: str
    payload: Tuple = ()
