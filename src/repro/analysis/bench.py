"""Micro-benchmark suite with a persisted, machine-readable baseline.

``repro bench`` runs a small set of named benchmarks (reduced rounds, a
few seconds total) and writes the results to ``BENCH_<stamp>.json`` so
every change to the kernel or protocol cores leaves a perf trajectory to
regress against.  Each record carries a deterministic ``checksum`` (event
or message counts) so a throughput "win" that silently changed the
simulated behaviour is visible in review.

The document schema is versioned (``repro-bench/1``); :func:`validate`
raises :class:`~repro.errors.BenchSchemaError` on drift and is wired into
CI so the artifact format cannot rot unnoticed.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import BenchSchemaError

__all__ = [
    "SCHEMA",
    "collect",
    "compare",
    "validate",
    "write_baseline",
    "write_profile",
    "default_stamp",
]

SCHEMA = "repro-bench/1"

#: Required top-level keys of a baseline document.
_DOC_KEYS = ("schema", "created_utc", "host", "commit", "sanitize", "rounds",
             "results")

#: Required keys of each result record.
_RESULT_KEYS = ("name", "metric", "value", "unit", "wall_s", "checksum")


#: Timed repetitions per throughput bench; the best is reported (same
#: convention as pytest-benchmark's min — least noise, not average noise).
_REPEATS = 3

#: The array-compiled engine runs ~5x faster than the object stack, so a
#: single repeat is cheap — and the shared host this suite runs on jitters
#: by tens of percent between samples, which a larger best-of pool absorbs.
_FAST_REPEATS = 6


def _bench_des_throughput(rounds: int) -> Dict[str, Any]:
    """Simulator events/second on the loaded 64-node binary-search cluster
    (the same configuration as ``test_bench_trs_engine.py``)."""
    from repro.core.cluster import Cluster
    from repro.workload.generators import FixedRateWorkload

    def once() -> Tuple[float, int, int]:
        cluster = Cluster.build("binary_search", n=64, seed=3)
        cluster.add_workload(FixedRateWorkload(mean_interval=5.0))
        start = time.perf_counter()
        cluster.run(rounds=rounds, max_events=2_000_000)
        wall = time.perf_counter() - start
        return wall, cluster.sim.executed_total, cluster.messages.total

    once()  # warmup: import/alloc caches, branch predictors
    wall, events, messages = min(once() for _ in range(_REPEATS))
    return {
        "name": "des_cluster_64",
        "metric": "events_per_second",
        "value": events / wall if wall > 0 else 0.0,
        "unit": "1/s",
        "wall_s": wall,
        "checksum": {"events": events, "messages": messages},
    }


def _bench_fastsim_throughput(rounds: int) -> Dict[str, Any]:
    """Events/second of the array-compiled engine on the *same* loaded
    64-node binary-search cluster as ``des_cluster_64``.

    The checksum (event and message counts) must equal the object
    bench's record for the same rounds — that equality is the whole
    contract of :mod:`repro.fastsim`, and ``--compare`` enforces it
    every time both benches run."""
    from repro.fastsim import FastCluster
    from repro.workload.generators import FixedRateWorkload

    def once() -> Tuple[float, int, int]:
        cluster = FastCluster.build("binary_search", n=64, seed=3)
        cluster.add_workload(FixedRateWorkload(mean_interval=5.0))
        start = time.perf_counter()
        cluster.run(rounds=rounds, max_events=2_000_000)
        wall = time.perf_counter() - start
        return wall, cluster.executed_total, cluster.sent_total

    once()  # warmup: intern/memo/view caches, code objects
    wall, events, messages = min(once() for _ in range(_FAST_REPEATS))
    return {
        "name": "des_cluster_64_fast",
        "metric": "events_per_second",
        "value": events / wall if wall > 0 else 0.0,
        "unit": "1/s",
        "wall_s": wall,
        "checksum": {"events": events, "messages": messages},
    }


def _bench_ring_mega(rounds: int) -> Dict[str, Any]:
    """The 100,000-node sharded ring: four worker processes under
    conservative windows (:mod:`repro.fastsim.shard`).

    The horizon scales with ``rounds`` (40 -> 120k time units, a bit
    over one full circulation) so ``--compare`` reruns reproduce the
    checksum at the baseline's recorded rounds.  Wall time includes the
    fork/pipe choreography on purpose: that overhead *is* the cost of
    the sharded mode, and hiding it would overstate the win."""
    from repro.fastsim.shard import ShardedRingSim, mega_requests

    n, shards = 100_000, 4
    horizon = 3_000.0 * rounds
    requests = mega_requests(n, seed=2001, count=256, horizon=horizon)

    def once():
        sim = ShardedRingSim(n, shards, digest=True, processes=True)
        for at, node in requests:
            sim.request_at(at, node)
        start = time.perf_counter()
        result = sim.run(until=horizon)
        return time.perf_counter() - start, result

    wall, result = min((once() for _ in range(_REPEATS)),
                       key=lambda pair: pair[0])
    return {
        "name": "ring_mega_n100k",
        "metric": "events_per_second",
        "value": result.executed / wall if wall > 0 else 0.0,
        "unit": "1/s",
        "wall_s": wall,
        "checksum": {"events": result.executed, "messages": result.sent,
                     "grants": result.grants,
                     "digest": f"{result.crc_sum:016x}"},
    }


def _bench_fabric_10k(rounds: int) -> Dict[str, Any]:
    """The multi-token fabric at scale: 10,000 binary-search lanes (n = 3
    each — 30,000 protocol cores) multiplexed on one kernel through the
    batched scheduler, driven by a closed-loop Zipf client population in
    the saturation regime (every token hop serves a grant).

    The grants target scales with ``rounds`` (40 -> one million grants) so
    CI's reduced-rounds smoke stays cheap while the committed baseline
    records the full-scale run.  A single timed run, no warmup or repeats:
    at ~80 s for the full target, min-of-N would triple the suite's wall
    for noise reduction the long run already provides by averaging.

    ``value`` is logical events/second — directly comparable against
    ``des_cluster_64`` to bound the fabric's multiplexing overhead (the
    acceptance bar is within 3x of the single-key DES core).  The checksum
    pins counters, microsecond-rounded latency percentiles, and a CRC over
    the per-key grant distribution, so a perf win that shifted *which*
    keys won their grants fails ``--compare``.
    """
    import zlib

    from repro.core.config import ProtocolConfig
    from repro.fabric import TokenFabric
    from repro.workload.keyed import ClosedLoopKeyedWorkload

    n_keys, grants_target = 10_000, rounds * 25_000
    fabric = TokenFabric(seed=2001)
    config = ProtocolConfig(idle_pause=10_000.0)
    for k in range(n_keys):
        fabric.add_key(f"lock/{k:05d}", protocol="binary_search", n=3,
                       config=config)
    fabric.add_workload(ClosedLoopKeyedWorkload(clients=24_000,
                                                think_time=2.0, s=1.2))
    start = time.perf_counter()
    fabric.run(grants=grants_target)
    wall = time.perf_counter() - start
    events, messages = fabric.executed_total, fabric.sent_total
    metrics = fabric.metrics
    lane_crc = 0
    for stat in metrics.stats:
        lane_crc = zlib.crc32(b"%d|" % stat.grants, lane_crc)
    return {
        "name": "fabric_10k",
        "metric": "events_per_second",
        "value": events / wall if wall > 0 else 0.0,
        "unit": "1/s",
        "wall_s": wall,
        "checksum": {
            "keys": n_keys,
            "events": events,
            "messages": messages,
            "grants": metrics.total_grants,
            "requests": metrics.total_requests,
            "p50_us": round(metrics.percentile(50.0) * 1e6),
            "p99_us": round(metrics.percentile(99.0) * 1e6),
            "lane_grants_crc": f"{lane_crc & 0xFFFFFFFF:08x}",
        },
    }


def _bench_fabric_zipf_fast(rounds: int) -> Dict[str, Any]:
    """The array-compiled fabric backend: 2,048 binary-search lanes on
    :class:`~repro.fastsim.cluster.FastCluster`'s fused loop, fed by a
    compiled open-loop Zipf arrival stream (realized inside the timed
    region — arrival compilation *is* part of this backend's cost).

    Lane independence makes this observably identical to the object
    fabric on the same configuration; ``tests/fabric/test_fast.py`` pins
    that equivalence per key, and this bench's digest checksum pins the
    compiled backend's own behaviour release over release.  The horizon
    scales with ``rounds`` (40 -> 1,000 virtual units, ~half a million
    events)."""
    from repro.core.config import ProtocolConfig
    from repro.fabric.fast import FastFabric
    from repro.workload.keyed import ZipfKeyedWorkload

    n_keys, horizon = 2_048, 25.0 * rounds
    config = ProtocolConfig(idle_pause=8.0)

    def build() -> FastFabric:
        fabric = FastFabric(seed=2001)
        for k in range(n_keys):
            fabric.add_key(f"lock/{k:04d}", protocol="binary_search", n=4,
                           config=config, digest=True)
        fabric.add_workload(ZipfKeyedWorkload(mean_interval=0.05, s=1.1,
                                              home_bias=0.7))
        return fabric

    def once(until: float):
        fabric = build()  # FastFabric.run is one-shot: fresh build per run
        start = time.perf_counter()
        fabric.run(until=until)
        return time.perf_counter() - start, fabric

    once(min(100.0, horizon))  # warmup: intern/memo caches, code objects
    wall, fabric = min((once(horizon) for _ in range(_REPEATS)),
                       key=lambda pair: pair[0])
    events, grants = fabric.executed_total, fabric.metrics.total_grants
    return {
        "name": "fabric_zipf_fast",
        "metric": "events_per_second",
        "value": events / wall if wall > 0 else 0.0,
        "unit": "1/s",
        "wall_s": wall,
        "checksum": {"keys": n_keys, "events": events,
                     "messages": fabric.sent_total, "grants": grants,
                     "digest": fabric.checksum()},
    }


def _bench_trs_reduction(rounds: int) -> Dict[str, Any]:
    """TRS steps/second of a safety-checked random reduction (n = 5).

    The rewriter is hoisted out of the timed region and kept alive across
    repeats: compiled matchers and intern tables are weakly keyed, so
    dropping the system between runs would measure cache eviction instead
    of steady-state matching.  Repeated seeded reductions on one rewriter
    are deterministic; the checksum pins the full trace (rule sequence and
    final state), not just the step count.
    """
    import hashlib

    from repro.specs import system_binary_search as bs
    from repro.specs.properties import prefix_property, token_uniqueness

    steps = max(50, rounds)
    rewriter, initial = bs.make_system(5)

    def once():
        start = time.perf_counter()
        reduction = rewriter.random_reduction(initial, steps, seed=7,
                                              weights={"1": 1.2, "2": 3.0,
                                                       "5": 0.5})
        reduction.check_invariant(prefix_property)
        reduction.check_invariant(token_uniqueness)
        return time.perf_counter() - start, reduction

    once()  # warmup: populate intern tables and compiled-matcher caches
    wall, reduction = min((once() for _ in range(_REPEATS)),
                          key=lambda pair: pair[0])
    trace = "|".join(step.rule_name for step in reduction.steps)
    digest = hashlib.md5(
        (trace + "||" + repr(reduction.final)).encode()).hexdigest()[:16]
    return {
        "name": "trs_reduction_n5",
        "metric": "steps_per_second",
        "value": len(reduction) / wall if wall > 0 else 0.0,
        "unit": "1/s",
        "wall_s": wall,
        "checksum": {"steps": len(reduction), "trace_md5": digest},
    }


def _bench_modelcheck_explore(rounds: int) -> Dict[str, Any]:
    """Exhaustive-exploration throughput: transitions/second of a complete
    BFS over System Token (n = 4, rule 1 bounded to one datum per node).

    Exercises the matcher's partial-product cache under heavy component
    sharing — successive states differ in one component, so most fragment
    enumerations should be cache hits."""
    from repro.specs import system_token as token
    from repro.specs.modelcheck import bound_data, explore_graph
    from repro.trs.engine import Rewriter

    base, initial = token.make_system(4)
    rewriter = Rewriter(bound_data(base.ruleset, 1), base.ctx)

    def once():
        start = time.perf_counter()
        graph = explore_graph(rewriter, initial)
        wall = time.perf_counter() - start
        return wall, (len(graph.states), graph.transitions, graph.complete)

    once()  # warmup
    wall, (states, transitions, complete) = min(
        (once() for _ in range(_REPEATS)), key=lambda pair: pair[0])
    return {
        "name": "modelcheck_explore_n4",
        "metric": "transitions_per_second",
        "value": transitions / wall if wall > 0 else 0.0,
        "unit": "1/s",
        "wall_s": wall,
        "checksum": {"states": states, "transitions": transitions,
                     "complete": complete},
    }


def _bench_trs_bag_match(rounds: int) -> Dict[str, Any]:
    """Indexed AC bag matching: four pattern shapes (plain, non-linear
    join, ground-argument filter, cross-functor join) enumerated against a
    15-element ground bag (12 ``f``/2 items + 3 ``g``/1 items)."""
    from repro.trs.matching import match
    from repro.trs.terms import Atom, Bag, Struct, Var

    target = Bag(
        [Struct("f", [Atom(i % 4), Atom(i)]) for i in range(12)]
        + [Struct("g", [Atom(i)]) for i in range(3)])
    rest = Var("R")
    patterns = [
        Bag([Struct("f", [Var("a"), Var("b")])], rest=rest),
        Bag([Struct("f", [Var("a"), Var("b")]),
             Struct("f", [Var("a"), Var("c")])], rest=rest),
        Bag([Struct("f", [Atom(2), Var("b")]),
             Struct("g", [Var("c")])], rest=rest),
        Bag([Struct("f", [Var("a"), Var("b")]),
             Struct("g", [Var("a")])], rest=rest),
    ]
    iters = max(200, rounds * 5)

    def once():
        start = time.perf_counter()
        total = 0
        for _ in range(iters):
            for pattern in patterns:
                total += sum(1 for _ in match(pattern, target))
        return time.perf_counter() - start, total

    once()  # warmup
    wall, total = min((once() for _ in range(_REPEATS)),
                      key=lambda pair: pair[0])
    return {
        "name": "trs_bag_match_n12",
        "metric": "matches_per_second",
        "value": total / wall if wall > 0 else 0.0,
        "unit": "1/s",
        "wall_s": wall,
        "checksum": {"matches_per_iter": total // iters},
    }


def _bench_timer_churn(rounds: int) -> Dict[str, Any]:
    """Kernel schedule/cancel storm: exercises handle-table cancellation
    and cancelled-entry compaction (the A4 retry-timer pattern)."""
    from repro.sim.kernel import Simulator

    timers = max(2_000, rounds * 50)
    start = time.perf_counter()
    sim = Simulator()
    survivors = 0
    for i in range(timers):
        event = sim.schedule(float(i % 97) + 1.0, int)
        if i % 10 != 0:
            event.cancel()  # 90 % cancelled: forces repeated compaction
        else:
            survivors += 1
    fired = sim.run()
    wall = time.perf_counter() - start
    return {
        "name": "kernel_timer_churn",
        "metric": "timers_per_second",
        "value": timers / wall if wall > 0 else 0.0,
        "unit": "1/s",
        "wall_s": wall,
        "checksum": {"scheduled": timers, "fired": fired,
                     "survivors": survivors},
    }


def _bench_figure9_cell(rounds: int) -> Dict[str, Any]:
    """Wall time of one Figure-9 sweep cell (binary search, n = 64)."""
    from repro.analysis.experiments import run_protocol_once

    start = time.perf_counter()
    row = run_protocol_once("binary_search", n=64, mean_interval=10.0,
                            rounds=rounds, seed=2001)
    wall = time.perf_counter() - start
    return {
        "name": "figure9_cell_n64",
        "metric": "wall_seconds",
        "value": wall,
        "unit": "s",
        "wall_s": wall,
        "checksum": {"grants": int(row["grants"]),
                     "messages": int(row["messages_total"])},
    }


def _bench_aio_recovery(rounds: int) -> Dict[str, Any]:
    """MTTR of the supervised asyncio runtime: crash nodes in turn and
    measure crash-to-next-grant on the virtual clock.

    The reported value is *virtual* seconds — bit-exact across hosts (the
    checksum pins it scaled to microseconds) — while ``wall_s`` tracks how
    long the runtime takes to chew through the scenario for real.
    """
    import asyncio

    from repro.aio.cluster import AioCluster
    from repro.aio.reliability import ReliabilityConfig
    from repro.aio.supervisor import ClusterSupervisor, RestartPolicy
    from repro.aio.virtualtime import run_virtual
    from repro.core.config import ProtocolConfig
    from repro.metrics.tracing import RecoveryTracker

    cycles = max(3, min(rounds // 10, 6))
    n, delay = 5, 0.01

    async def scenario() -> Dict[str, Any]:
        cluster = AioCluster(
            "fault_tolerant", n, seed=2001,
            config=ProtocolConfig(
                trap_gc="rotation", single_outstanding=True,
                retry_timeout=25.0, regen_timeout=30.0, census_window=8.0,
                loan_timeout=80.0, regen_quorum=True),
            delay=delay, reliability=ReliabilityConfig())
        supervisor = ClusterSupervisor(cluster, RestartPolicy(
            restart_delay=20.0 * delay, heartbeat_interval=5.0 * delay))
        tracker = RecoveryTracker()
        await cluster.start()
        await supervisor.start()
        loop = asyncio.get_running_loop()
        await asyncio.sleep(1.0)  # cadence history for the detectors
        grants = 0
        for cycle in range(cycles):
            victim = cycle % n
            tracker.fault(("crash", cycle), loop.time())
            await cluster.crash_node(victim)
            requester = (victim + 2) % n
            await cluster.acquire(requester, timeout=30.0)
            tracker.recovered(("crash", cycle), loop.time())
            cluster.release(requester)
            grants += 1
            await asyncio.sleep(1.0)  # let the supervisor repair the victim
        restarts = sum(supervisor.restarts.values())
        await supervisor.stop()
        await cluster.stop()
        return {"mttr": tracker.mttr(), "max_ttr": tracker.max_ttr(),
                "grants": grants, "restarts": restarts}

    start = time.perf_counter()
    outcome = run_virtual(scenario())
    wall = time.perf_counter() - start
    return {
        "name": "aio_recovery_n5",
        "metric": "mttr_virtual_seconds",
        "value": outcome["mttr"],
        "unit": "s(virtual)",
        "wall_s": wall,
        "checksum": {"cycles": cycles,
                     "grants": outcome["grants"],
                     "restarts": outcome["restarts"],
                     "mttr_us": round(outcome["mttr"] * 1e6),
                     "max_ttr_us": round(outcome["max_ttr"] * 1e6)},
    }


def _bench_modelcheck_dpor(rounds: int) -> Dict[str, Any]:
    """Persistent-set DPOR speedup on System BinarySearch (n = 4, data at
    nodes 1-2, single-outstanding requests, 4 ring hops).

    Runs full BFS once to pin the reference state/transition counts, then
    times persistent-mode DPOR; the checksum pins both sides, so either an
    exploration-count drift or a reduction regression fails ``--compare``.
    The metric is the reduced exploration's throughput; ``speedup`` (full
    transitions / reduced executions) rides along in the checksum floor-ed
    to one decimal."""
    from repro.specs import system_binary_search as bs
    from repro.specs.modelcheck import (bound_data, bound_requests,
                                        bound_visits, explore_graph)
    from repro.trs.engine import Rewriter
    from repro.trs.rules import RuleContext
    from repro.verify.dpor import explore_dpor
    from repro.verify.independence import IndependenceRelation

    rules = bs.make_rules(4, restricted=True)
    rules = bound_data(rules, 1, nodes=(1, 2))
    rules = bound_requests(rules, "5")
    rules = bound_visits(rules, 4, "4")
    initial = bs.initial_state(4)
    rewriter = Rewriter(rules, RuleContext())
    relation = IndependenceRelation(rules)
    graph = explore_graph(rewriter, initial)

    def once():
        start = time.perf_counter()
        result = explore_dpor(rewriter, initial, mode="persistent",
                              relation=relation)
        return time.perf_counter() - start, result

    once()  # warmup
    wall, result = min((once() for _ in range(_REPEATS)),
                       key=lambda pair: pair[0])
    speedup = graph.transitions / max(result.executed, 1)
    return {
        "name": "modelcheck_dpor_n4",
        "metric": "reduced_transitions_per_second",
        "value": result.executed / wall if wall > 0 else 0.0,
        "unit": "1/s",
        "wall_s": wall,
        "checksum": {
            "full_states": len(graph.states),
            "full_transitions": graph.transitions,
            "full_complete": graph.complete,
            "dpor_states": result.states,
            "dpor_executed": result.executed,
            "dpor_complete": result.complete,
            "speedup_x10": int(speedup * 10),
        },
    }


def _bench_stabilize_n9(rounds: int) -> Dict[str, Any]:
    """Convergence time of the stabilizing core (n = 9) under k-token and
    scrambled-stamp corruption.

    Alternates ``duplicate_token`` (a second token conjured at a rotating
    victim — the epoch-fenced reduction path) with ``scramble_stamp``
    (round/grant-sequencing garbage — the local-repair path), one episode
    per injection, spaced past the convergence bound.  Virtual-time
    samples are bit-exact across hosts; the checksum pins the episode
    count and microsecond-rounded percentiles, so a convergence-speed
    regression fails ``--compare`` loudly.  The reported value is the p99
    stabilization time in virtual seconds."""
    from repro.stabilize import measure_convergence

    episodes = max(6, min(rounds // 4, 12))
    corruptions = [
        ("duplicate_token" if i % 2 == 0 else "scramble_stamp",
         (i * 4 + 2) % 9, 101 + i * 37)
        for i in range(episodes)
    ]
    start = time.perf_counter()
    doc = measure_convergence(9, corruptions, seed=2001)
    wall = time.perf_counter() - start
    return {
        "name": "stabilize_n9",
        "metric": "stabilization_p99_virtual_seconds",
        "value": doc["stabilization_p99"],
        "unit": "s(virtual)",
        "wall_s": wall,
        "checksum": {
            "episodes": doc["episodes"],
            "injections": doc["injections"],
            "grants": doc["grants"],
            "p50_us": round(doc["stabilization_p50"] * 1e6),
            "p99_us": round(doc["stabilization_p99"] * 1e6),
            "max_us": round(doc["max_stabilization_time"] * 1e6),
        },
    }


_BENCHES: List[Callable[[int], Dict[str, Any]]] = [
    _bench_des_throughput,
    _bench_fastsim_throughput,
    _bench_ring_mega,
    _bench_fabric_10k,
    _bench_fabric_zipf_fast,
    _bench_trs_reduction,
    _bench_modelcheck_explore,
    _bench_modelcheck_dpor,
    _bench_trs_bag_match,
    _bench_timer_churn,
    _bench_figure9_cell,
    _bench_aio_recovery,
    _bench_stabilize_n9,
]


def _git_commit() -> str:
    """Best-effort current commit hash (``unknown`` outside a checkout)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def _memory_probe(bench: Callable[[int], Dict[str, Any]], rounds: int,
                  trace: bool) -> Dict[str, Any]:
    """Run one bench with memory accounting attached to its record.

    Always recorded (cheap, no timing distortion):

    - ``ru_maxrss_kb`` — process peak RSS after the bench.  Kernel
      high-water, monotone across the suite: the first bench to touch a
      peak owns it, later records repeat it.
    - ``objects_delta`` — live Python objects gained across the bench
      (post-GC), which catches caches that keep growing run over run.

    With ``trace`` (the CLI's ``--mem``), ``tracemalloc`` wraps the
    bench and adds ``tracemalloc_peak_kb`` — exact peak *allocated*
    bytes attributable to the bench alone.  Tracing slows allocation
    several-fold, so traced documents carry honest-but-slow ``value``
    fields; never commit one as the perf baseline.
    """
    import gc
    import resource
    import tracemalloc

    gc.collect()
    objects_before = len(gc.get_objects())
    if trace:
        tracemalloc.start()
    record = bench(rounds)
    memory: Dict[str, Any] = {}
    if trace:
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        memory["tracemalloc_peak_kb"] = peak // 1024
    gc.collect()
    memory["ru_maxrss_kb"] = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    memory["objects_delta"] = len(gc.get_objects()) - objects_before
    record["memory"] = memory
    return record


def collect(rounds: int = 40, trace_memory: bool = False) -> Dict[str, Any]:
    """Run the whole suite and return the baseline document."""
    from repro.lint.sanitizer import sanitize_enabled

    results = [_memory_probe(bench, rounds, trace_memory)
               for bench in _BENCHES]
    return {
        "schema": SCHEMA,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "cpus": os.cpu_count() or 1,
        },
        "commit": _git_commit(),
        "sanitize": sanitize_enabled(),
        "rounds": rounds,
        "results": results,
    }


def validate(doc: Dict[str, Any]) -> None:
    """Raise :class:`BenchSchemaError` unless ``doc`` matches the schema."""
    if not isinstance(doc, dict):
        raise BenchSchemaError(f"baseline must be an object, got {type(doc).__name__}")
    missing = [key for key in _DOC_KEYS if key not in doc]
    if missing:
        raise BenchSchemaError(f"baseline missing top-level keys: {missing}")
    if doc["schema"] != SCHEMA:
        raise BenchSchemaError(
            f"schema mismatch: expected {SCHEMA!r}, got {doc['schema']!r}")
    if not isinstance(doc["results"], list) or not doc["results"]:
        raise BenchSchemaError("baseline has no results")
    for record in doc["results"]:
        if not isinstance(record, dict):
            raise BenchSchemaError(f"result is not an object: {record!r}")
        absent = [key for key in _RESULT_KEYS if key not in record]
        if absent:
            raise BenchSchemaError(
                f"result {record.get('name', '?')!r} missing keys: {absent}")
        if not isinstance(record["value"], (int, float)):
            raise BenchSchemaError(
                f"result {record['name']!r} value is not numeric")


def compare(doc: Dict[str, Any], baseline: Dict[str, Any],
            regression_pct: Optional[float] = None) -> Tuple[List[str], bool]:
    """Per-workload comparison of a fresh run against a stored baseline.

    Returns ``(lines, ok)``.  ``ok`` is False when a *shared* workload's
    behaviour drifted — its checksum differs — and, when
    ``regression_pct`` is given, also when a shared workload's metric
    regressed by more than that many percent (lower throughput for rate
    metrics, longer wall time for duration metrics).  Without a
    threshold, deltas are reported in the lines but never affect ``ok``
    — perf varies with the host; the simulated behaviour must not.

    The workload *set* is allowed to drift between releases (benches are
    added and retired): additions and removals are each reported on
    their own line plus a summary, but neither silently intersects the
    comparison away nor fails it.  The one exception: when the two
    documents share **no** workloads, the comparison is vacuous and
    ``ok`` is False — a green result must mean something was compared.
    """
    validate(doc)
    validate(baseline)
    current = {record["name"]: record for record in doc["results"]}
    known = set()
    ok = True
    shared = 0
    removed: List[str] = []
    lines: List[str] = []
    for base in baseline["results"]:
        name = base["name"]
        known.add(name)
        record = current.get(name)
        if record is None:
            removed.append(name)
            lines.append(f"{name}: removed (in baseline, not in this run)")
            continue
        shared += 1
        old, new = base["value"], record["value"]
        pct = (new - old) / old * 100.0 if old else float("inf")
        # For duration metrics ("s" units) bigger is worse; flip the
        # sign so "regressed" always means a negative adjusted delta.
        worse_pct = -pct if record["unit"].startswith("s") else pct
        same = record["checksum"] == base["checksum"]
        if not same:
            ok = False
        regressed = (regression_pct is not None
                     and worse_pct < -abs(regression_pct))
        if regressed:
            ok = False
        verdict = ("checksum OK" if same else
                   f"CHECKSUM MISMATCH: {record['checksum']!r} != "
                   f"{base['checksum']!r}")
        if regressed:
            verdict += (f", REGRESSION beyond {abs(regression_pct):.1f}% "
                        "threshold")
        lines.append(
            f"{name}: {base['metric']} {old:.1f} -> {new:.1f} "
            f"{record['unit']} ({pct:+.1f}%), {verdict}")
    added = [name for name in current if name not in known]
    for name in added:
        lines.append(f"{name}: added (no baseline entry)")
    if added or removed:
        lines.append(f"workload set drift: +{len(added)} added, "
                     f"-{len(removed)} removed, {shared} shared compared")
    if shared == 0:
        ok = False
        lines.append("no shared workloads: nothing was compared")
    return lines, ok


def write_profile(stats_text: str, out_dir: str = ".",
                  stamp: Optional[str] = None) -> str:
    """Persist a profile report as ``PROFILE_<stamp>.txt`` next to the
    baseline of the same stamp; returns the path written."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"PROFILE_{stamp or default_stamp()}.txt")
    with open(path, "w") as handle:
        handle.write(stats_text)
        if not stats_text.endswith("\n"):
            handle.write("\n")
    return path


def default_stamp() -> str:
    """UTC timestamp used in the baseline filename."""
    return time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())


def write_baseline(doc: Dict[str, Any], out_dir: str = ".",
                   stamp: Optional[str] = None) -> str:
    """Validate and persist ``doc`` as ``<out_dir>/BENCH_<stamp>.json``;
    returns the path written."""
    validate(doc)
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{stamp or default_stamp()}.json")
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
