"""Micro-benchmark suite with a persisted, machine-readable baseline.

``repro bench`` runs a small set of named benchmarks (reduced rounds, a
few seconds total) and writes the results to ``BENCH_<stamp>.json`` so
every change to the kernel or protocol cores leaves a perf trajectory to
regress against.  Each record carries a deterministic ``checksum`` (event
or message counts) so a throughput "win" that silently changed the
simulated behaviour is visible in review.

The document schema is versioned (``repro-bench/1``); :func:`validate`
raises :class:`~repro.errors.BenchSchemaError` on drift and is wired into
CI so the artifact format cannot rot unnoticed.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import BenchSchemaError

__all__ = [
    "SCHEMA",
    "collect",
    "validate",
    "write_baseline",
    "default_stamp",
]

SCHEMA = "repro-bench/1"

#: Required top-level keys of a baseline document.
_DOC_KEYS = ("schema", "created_utc", "host", "commit", "sanitize", "rounds",
             "results")

#: Required keys of each result record.
_RESULT_KEYS = ("name", "metric", "value", "unit", "wall_s", "checksum")


#: Timed repetitions per throughput bench; the best is reported (same
#: convention as pytest-benchmark's min — least noise, not average noise).
_REPEATS = 3


def _bench_des_throughput(rounds: int) -> Dict[str, Any]:
    """Simulator events/second on the loaded 64-node binary-search cluster
    (the same configuration as ``test_bench_trs_engine.py``)."""
    from repro.core.cluster import Cluster
    from repro.workload.generators import FixedRateWorkload

    def once() -> Tuple[float, int, int]:
        cluster = Cluster.build("binary_search", n=64, seed=3)
        cluster.add_workload(FixedRateWorkload(mean_interval=5.0))
        start = time.perf_counter()
        cluster.run(rounds=rounds, max_events=2_000_000)
        wall = time.perf_counter() - start
        return wall, cluster.sim.executed_total, cluster.messages.total

    once()  # warmup: import/alloc caches, branch predictors
    wall, events, messages = min(once() for _ in range(_REPEATS))
    return {
        "name": "des_cluster_64",
        "metric": "events_per_second",
        "value": events / wall if wall > 0 else 0.0,
        "unit": "1/s",
        "wall_s": wall,
        "checksum": {"events": events, "messages": messages},
    }


def _bench_trs_reduction(rounds: int) -> Dict[str, Any]:
    """TRS steps/second of a safety-checked random reduction (n = 5)."""
    from repro.specs import system_binary_search as bs
    from repro.specs.properties import prefix_property, token_uniqueness

    steps = max(50, rounds)
    start = time.perf_counter()
    rewriter, initial = bs.make_system(5)
    reduction = rewriter.random_reduction(initial, steps, seed=7,
                                          weights={"1": 1.2, "2": 3.0,
                                                   "5": 0.5})
    reduction.check_invariant(prefix_property)
    reduction.check_invariant(token_uniqueness)
    wall = time.perf_counter() - start
    return {
        "name": "trs_reduction_n5",
        "metric": "steps_per_second",
        "value": len(reduction) / wall if wall > 0 else 0.0,
        "unit": "1/s",
        "wall_s": wall,
        "checksum": {"steps": len(reduction)},
    }


def _bench_timer_churn(rounds: int) -> Dict[str, Any]:
    """Kernel schedule/cancel storm: exercises handle-table cancellation
    and cancelled-entry compaction (the A4 retry-timer pattern)."""
    from repro.sim.kernel import Simulator

    timers = max(2_000, rounds * 50)
    start = time.perf_counter()
    sim = Simulator()
    survivors = 0
    for i in range(timers):
        event = sim.schedule(float(i % 97) + 1.0, int)
        if i % 10 != 0:
            event.cancel()  # 90 % cancelled: forces repeated compaction
        else:
            survivors += 1
    fired = sim.run()
    wall = time.perf_counter() - start
    return {
        "name": "kernel_timer_churn",
        "metric": "timers_per_second",
        "value": timers / wall if wall > 0 else 0.0,
        "unit": "1/s",
        "wall_s": wall,
        "checksum": {"scheduled": timers, "fired": fired,
                     "survivors": survivors},
    }


def _bench_figure9_cell(rounds: int) -> Dict[str, Any]:
    """Wall time of one Figure-9 sweep cell (binary search, n = 64)."""
    from repro.analysis.experiments import run_protocol_once

    start = time.perf_counter()
    row = run_protocol_once("binary_search", n=64, mean_interval=10.0,
                            rounds=rounds, seed=2001)
    wall = time.perf_counter() - start
    return {
        "name": "figure9_cell_n64",
        "metric": "wall_seconds",
        "value": wall,
        "unit": "s",
        "wall_s": wall,
        "checksum": {"grants": int(row["grants"]),
                     "messages": int(row["messages_total"])},
    }


_BENCHES: List[Callable[[int], Dict[str, Any]]] = [
    _bench_des_throughput,
    _bench_trs_reduction,
    _bench_timer_churn,
    _bench_figure9_cell,
]


def _git_commit() -> str:
    """Best-effort current commit hash (``unknown`` outside a checkout)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def collect(rounds: int = 40) -> Dict[str, Any]:
    """Run the whole suite and return the baseline document."""
    from repro.lint.sanitizer import sanitize_enabled

    results = [bench(rounds) for bench in _BENCHES]
    return {
        "schema": SCHEMA,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "cpus": os.cpu_count() or 1,
        },
        "commit": _git_commit(),
        "sanitize": sanitize_enabled(),
        "rounds": rounds,
        "results": results,
    }


def validate(doc: Dict[str, Any]) -> None:
    """Raise :class:`BenchSchemaError` unless ``doc`` matches the schema."""
    if not isinstance(doc, dict):
        raise BenchSchemaError(f"baseline must be an object, got {type(doc).__name__}")
    missing = [key for key in _DOC_KEYS if key not in doc]
    if missing:
        raise BenchSchemaError(f"baseline missing top-level keys: {missing}")
    if doc["schema"] != SCHEMA:
        raise BenchSchemaError(
            f"schema mismatch: expected {SCHEMA!r}, got {doc['schema']!r}")
    if not isinstance(doc["results"], list) or not doc["results"]:
        raise BenchSchemaError("baseline has no results")
    for record in doc["results"]:
        if not isinstance(record, dict):
            raise BenchSchemaError(f"result is not an object: {record!r}")
        absent = [key for key in _RESULT_KEYS if key not in record]
        if absent:
            raise BenchSchemaError(
                f"result {record.get('name', '?')!r} missing keys: {absent}")
        if not isinstance(record["value"], (int, float)):
            raise BenchSchemaError(
                f"result {record['name']!r} value is not numeric")


def default_stamp() -> str:
    """UTC timestamp used in the baseline filename."""
    return time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())


def write_baseline(doc: Dict[str, Any], out_dir: str = ".",
                   stamp: Optional[str] = None) -> str:
    """Validate and persist ``doc`` as ``<out_dir>/BENCH_<stamp>.json``;
    returns the path written."""
    validate(doc)
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{stamp or default_stamp()}.json")
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
