"""Process-pool experiment engine.

Every sweep in this repo — the paper figures, the five ablations,
multi-seed replication — is a grid of *cells*: independent, deterministic
``(experiment fn, parameters)`` runs that share nothing but code.  This
module expands a sweep into :class:`Cell` descriptions, fans the cells out
over worker processes, and merges the per-cell rows back **in cell order**,
so a parallel run is row-for-row identical to a serial run of the same
seeds.

Design rules:

- **Spawn-safe.**  Workers are started with the ``spawn`` method (a fresh
  interpreter importing :mod:`repro`), so the engine behaves identically on
  fork and non-fork platforms and never inherits dirty interpreter state.
  Consequently every cell function must be a module-level (picklable)
  callable and its kwargs picklable values.
- **Deterministic merge.**  Results are reordered to match the submitted
  cell list no matter which worker finishes first; the serial path and the
  parallel path run the very same cell functions.
- **Serial fallback.**  ``jobs=1`` (the default when neither the ``--jobs``
  flag nor ``REPRO_JOBS`` says otherwise) executes in-process with zero
  multiprocessing machinery — handy under debuggers and on tiny sweeps.
- **Loud failures.**  A cell that raises is re-raised in the parent as
  :class:`~repro.errors.ExperimentCellError` carrying the cell key; the
  remaining futures are cancelled instead of silently hanging.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError, ExperimentCellError

__all__ = ["Cell", "resolve_jobs", "run_cells"]


@dataclass
class Cell:
    """One independent unit of a sweep.

    ``key`` names the cell for ordering and error reporting (e.g.
    ``("figure9", 64, "ring")``); ``fn(**kwargs)`` computes its result.
    """

    key: Tuple
    fn: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: explicit ``jobs``, else ``REPRO_JOBS``,
    else 1 (serial).  ``0`` or ``-1`` means "all CPUs"."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ConfigError(f"REPRO_JOBS must be an integer, got {env!r}")
        else:
            jobs = 1
    if jobs in (0, -1):
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1 (or 0/-1 for all CPUs), got {jobs}")
    return jobs


def _invoke(fn: Callable[..., Any], kwargs: Dict[str, Any]) -> Any:
    """Worker-side trampoline (module-level, hence spawn-picklable)."""
    return fn(**kwargs)


def run_cells(
    cells: Sequence[Cell],
    jobs: Optional[int] = None,
) -> List[Any]:
    """Execute every cell and return their results in cell order.

    With ``jobs > 1`` the cells run on a spawn-based process pool; the
    output is nevertheless bitwise identical to the serial run because each
    cell is self-contained and results are merged by submission order.
    """
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(cells) <= 1:
        results = []
        for cell in cells:
            try:
                results.append(cell.fn(**cell.kwargs))
            except Exception as exc:
                raise ExperimentCellError(cell.key, str(exc)) from exc
        return results

    ctx = multiprocessing.get_context("spawn")
    workers = min(jobs, len(cells))
    with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
        futures = [pool.submit(_invoke, cell.fn, cell.kwargs) for cell in cells]
        results = []
        try:
            for cell, future in zip(cells, futures):
                try:
                    results.append(future.result())
                except ExperimentCellError:
                    raise
                except Exception as exc:
                    raise ExperimentCellError(cell.key, str(exc)) from exc
        except BaseException:
            # Fail fast and loud: don't leave queued cells running.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
    return results
