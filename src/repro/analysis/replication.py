"""Multi-seed replication of experiments.

The paper reports single curves; a careful reproduction should show run-to-
run variability.  :func:`replicate` runs any row-producing experiment
function across seeds and aggregates matching rows into mean ± 95 % CI
columns; :func:`significantly_less` is the simple decision helper the
shape assertions use when one protocol must beat another beyond noise.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.runner import Cell, run_cells
from repro.metrics.stats import confidence_interval, mean, stdev

__all__ = ["replicate", "significantly_less"]


def _row_key(row: Dict, key_fields: Sequence[str]) -> Tuple:
    return tuple(row.get(field) for field in key_fields)


def _seed_cell(experiment: Callable[[int], List[Dict]], seed: int) -> List[Dict]:
    """Run one replication seed (module-level so it pickles under spawn)."""
    return experiment(seed)


def replicate(
    experiment: Callable[[int], List[Dict]],
    seeds: Sequence[int],
    key_fields: Sequence[str],
    value_fields: Sequence[str],
    jobs: Optional[int] = None,
) -> List[Dict]:
    """Run ``experiment(seed)`` per seed; aggregate rows sharing the same
    ``key_fields`` into ``<field>_mean`` / ``<field>_ci`` / ``<field>_sd``
    columns over ``value_fields``.

    Rows must align across seeds (same key set per run); a missing key in
    some run raises ``ValueError`` so silent misalignment cannot skew the
    aggregate.

    Seeds are embarrassingly parallel: with ``jobs > 1`` each seed's run is
    a cell on the process pool (``experiment`` must then be picklable — a
    module-level function or ``functools.partial`` of one).  The aggregate
    is identical to the serial result because per-seed rows are merged in
    seed order.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    per_key: Dict[Tuple, Dict[str, List[float]]] = {}
    templates: Dict[Tuple, Dict] = {}
    order: List[Tuple] = []
    expected: set = set()

    per_seed_rows = run_cells(
        [Cell(key=("replicate", seed), fn=_seed_cell,
              kwargs=dict(experiment=experiment, seed=seed))
         for seed in seeds],
        jobs=jobs,
    )
    for idx, (seed, rows) in enumerate(zip(seeds, per_seed_rows)):
        seen = set()
        for row in rows:
            key = _row_key(row, key_fields)
            seen.add(key)
            if key not in per_key:
                if idx != 0:
                    raise ValueError(f"row {key} appeared only from seed {seed}")
                per_key[key] = {field: [] for field in value_fields}
                templates[key] = {field: row[field] for field in key_fields}
                order.append(key)
            for field in value_fields:
                per_key[key][field].append(float(row[field]))
        if idx == 0:
            expected = set(seen)
        elif seen != expected:
            raise ValueError(
                f"seed {seed} produced a different row set than seed {seeds[0]}"
            )

    out: List[Dict] = []
    for key in order:
        aggregated = dict(templates[key])
        aggregated["replications"] = len(seeds)
        for field, values in per_key[key].items():
            low, high = confidence_interval(values)
            aggregated[f"{field}_mean"] = mean(values)
            aggregated[f"{field}_sd"] = stdev(values)
            aggregated[f"{field}_ci"] = (high - low) / 2.0
        out.append(aggregated)
    return out


def significantly_less(
    a_values: Sequence[float], b_values: Sequence[float]
) -> bool:
    """True when mean(a) + CI(a) < mean(b) − CI(b): a beats b beyond the
    95 % normal-approximation noise band."""
    a_low, a_high = confidence_interval(a_values)
    b_low, b_high = confidence_interval(b_values)
    return a_high < b_low
