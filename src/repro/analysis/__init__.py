"""Experiment runners and text-table rendering for the paper's figures
and this repo's ablations."""

from repro.analysis.experiments import (
    run_adaptive_speed_ablation,
    run_directed_ablation,
    run_figure9,
    run_figure10,
    run_gc_ablation,
    run_protocol_once,
    run_push_pull_ablation,
    run_throttle_ablation,
)
from repro.analysis.replication import replicate, significantly_less
from repro.analysis.tables import format_series, format_table, pivot

__all__ = [
    "format_series",
    "format_table",
    "pivot",
    "replicate",
    "run_adaptive_speed_ablation",
    "run_directed_ablation",
    "run_figure9",
    "run_figure10",
    "run_gc_ablation",
    "run_protocol_once",
    "run_push_pull_ablation",
    "run_throttle_ablation",
    "significantly_less",
]
