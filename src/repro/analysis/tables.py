"""Plain-text rendering of experiment results.

The benchmarks print the same series the paper plots; these helpers format
result rows into aligned text tables and simple ASCII series so the
regenerated figures are readable straight from the bench output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["format_table", "format_series", "pivot"]


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(
    rows: Sequence[Dict],
    columns: Sequence[str],
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` (dicts) as an aligned text table of ``columns``."""
    header = [str(c) for c in columns]
    body = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(columns))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def pivot(
    rows: Sequence[Dict],
    index: str,
    series: str,
    value: str,
) -> List[Dict]:
    """Pivot long-form rows into one row per ``index`` with a column per
    ``series`` value — the shape of the paper's figure curves."""
    out: Dict[object, Dict] = {}
    order: List[object] = []
    for row in rows:
        key = row[index]
        if key not in out:
            out[key] = {index: key}
            order.append(key)
        out[key][str(row[series])] = row[value]
    return [out[k] for k in order]


def format_series(
    rows: Sequence[Dict],
    index: str,
    series: str,
    value: str,
    title: Optional[str] = None,
) -> str:
    """Pivot + render: one line per x-value, one column per curve."""
    pivoted = pivot(rows, index, series, value)
    series_names: List[str] = []
    for row in pivoted:
        for key in row:
            if key != index and key not in series_names:
                series_names.append(key)
    return format_table(pivoted, [index] + series_names, title=title)
