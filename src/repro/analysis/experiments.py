"""Experiment runners for the paper's figures and this repo's ablations.

Each runner returns a list of result-row dicts and is shared by the
benchmark suite (which prints the paper-style series) and the examples.
All runners take a seed and are deterministic.

Every sweep is expressed as a grid of independent cells and executed by
:mod:`repro.analysis.runner`: pass ``jobs`` (or set ``REPRO_JOBS``) to fan
the cells out over worker processes.  Parallel output is row-for-row
identical to serial output for the same seeds — cells share nothing, and
the engine merges rows in cell order.

Paper experiments (Section 4.3; the paper has figures only, no tables):

- :func:`run_figure9` — fixed load (mean inter-request interval 10),
  average responsiveness vs. number of processors;
- :func:`run_figure10` — fixed n = 100, average responsiveness vs. load.

Ablations (Section 4.4 design choices):

- :func:`run_gc_ablation` — trap GC policy vs. storage and dummy loans;
- :func:`run_directed_ablation` — delegated vs. directed search messages;
- :func:`run_push_pull_ablation` — pull vs. push vs. hybrid;
- :func:`run_throttle_ablation` — single-outstanding-request throttling;
- :func:`run_adaptive_speed_ablation` — idle-pause vs. message overhead.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.runner import Cell, run_cells
from repro.core.cluster import Cluster
from repro.core.config import GC_INVERSE, GC_NONE, GC_ROTATION, ProtocolConfig
from repro.workload.generators import FixedRateWorkload

__all__ = [
    "run_protocol_once",
    "run_figure9",
    "run_figure10",
    "run_gc_ablation",
    "run_directed_ablation",
    "run_push_pull_ablation",
    "run_throttle_ablation",
    "run_adaptive_speed_ablation",
    "DEFAULT_FIG9_SIZES",
    "DEFAULT_FIG10_INTERVALS",
]

#: Paper set-up: the token visited each node at least 1000 times per run.
PAPER_ROUNDS = 1000

DEFAULT_FIG9_SIZES = (8, 16, 32, 64, 128, 256)
DEFAULT_FIG10_INTERVALS = (1, 2, 5, 10, 20, 50, 100, 200, 500)


def _metric_columns(cluster: Cluster) -> Tuple[Dict[str, float], int]:
    """Row-builder core shared by every runner.

    Returns the common metric columns plus the grants count clamped to 1
    (for per-grant rates), reading each tracker metric exactly once.
    """
    tracker = cluster.responsiveness
    grants = tracker.grants()
    clamped = max(grants, 1)
    columns = {
        "grants": grants,
        "avg_responsiveness": tracker.average_responsiveness(),
        "messages_total": cluster.messages.total,
        "messages_per_grant": cluster.messages.total / clamped,
    }
    return columns, clamped


def run_protocol_once(
    protocol: str,
    n: int,
    mean_interval: float,
    rounds: int,
    seed: int,
    config: Optional[ProtocolConfig] = None,
    workload=None,
) -> Dict[str, float]:
    """One simulation run; returns the metrics row."""
    cluster = Cluster.build(protocol, n=n, seed=seed, config=config)
    if workload is None:
        workload = FixedRateWorkload(mean_interval=mean_interval)
    cluster.add_workload(workload)
    cluster.run(rounds=rounds, max_events=100_000_000)
    tracker = cluster.responsiveness
    columns, _ = _metric_columns(cluster)
    row = {
        "protocol": protocol,
        "n": n,
        "mean_interval": mean_interval,
        "rounds": cluster.rounds,
        "max_responsiveness": tracker.max_responsiveness(),
        "avg_waiting": tracker.average_waiting(),
        "messages_cheap": cluster.messages.cheap,
        "messages_expensive": cluster.messages.expensive,
        "token_passes": cluster.messages.token_passes(),
        "search_messages": cluster.messages.search_messages(),
        "loans": cluster.messages.count("LoanMsg"),
    }
    row.update(columns)
    return row


def run_figure9(
    sizes: Sequence[int] = DEFAULT_FIG9_SIZES,
    mean_interval: float = 10.0,
    rounds: int = PAPER_ROUNDS,
    seed: int = 2001,
    protocols: Sequence[str] = ("ring", "binary_search"),
    jobs: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Figure 9: average responsiveness vs. number of processors under a
    fixed load of one request per ``mean_interval`` time units."""
    cells = [
        Cell(key=("figure9", n, protocol), fn=run_protocol_once,
             kwargs=dict(protocol=protocol, n=n, mean_interval=mean_interval,
                         rounds=rounds, seed=seed))
        for n in sizes
        for protocol in protocols
    ]
    return run_cells(cells, jobs=jobs)


def run_figure10(
    intervals: Sequence[float] = DEFAULT_FIG10_INTERVALS,
    n: int = 100,
    rounds: int = PAPER_ROUNDS,
    seed: int = 2001,
    protocols: Sequence[str] = ("ring", "binary_search"),
    jobs: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Figure 10: average responsiveness vs. load at fixed ``n``; the ring
    approaches n/2 while BinarySearch approaches log n from below."""
    cells = [
        Cell(key=("figure10", float(interval), protocol), fn=run_protocol_once,
             kwargs=dict(protocol=protocol, n=n,
                         mean_interval=float(interval), rounds=rounds,
                         seed=seed))
        for interval in intervals
        for protocol in protocols
    ]
    return run_cells(cells, jobs=jobs)


# -- ablation cells (module-level so they pickle under spawn) -------------------


def _gc_cell(policy: str, n: int, mean_interval: float, rounds: int,
             seed: int) -> Dict[str, float]:
    """One arm of ablation A1 (trap GC policy)."""
    config = ProtocolConfig(trap_gc=policy)
    cluster = Cluster.build("binary_search", n=n, seed=seed, config=config)
    cluster.add_workload(FixedRateWorkload(mean_interval=mean_interval))
    cluster.run(until=float(rounds * n), max_events=100_000_000)
    columns, clamped = _metric_columns(cluster)
    loans = cluster.messages.count("LoanMsg")
    dummy = max(0, loans - columns["grants"])
    row = {
        "protocol": "binary_search",
        "trap_gc": policy,
        "n": n,
        "loans": loans,
        "dummy_loans": dummy,
        "dummy_per_grant": dummy / clamped,
    }
    row.update(columns)
    return row


def _directed_cell(protocol: str, n: int, mean_interval: float, rounds: int,
                   seed: int) -> Dict[str, float]:
    """One arm of ablation A2 (delegated vs. directed search)."""
    row = run_protocol_once(protocol, n=n, mean_interval=mean_interval,
                            rounds=rounds, seed=seed)
    clamped = max(row["grants"], 1)
    row["search_per_grant"] = row["search_messages"] / clamped
    row["log2n"] = math.log2(n)
    return row


def _push_pull_cell(protocol: str, interval: float, n: int, rounds: int,
                    seed: int) -> Dict[str, float]:
    """One arm of ablation A3 (pull vs. push vs. hybrid)."""
    config = ProtocolConfig()
    if protocol in ("push", "hybrid"):
        config.idle_pause = 2.0
    # Fixed virtual-time horizon: a parked (push) token makes no rounds,
    # so rounds-based termination would not be comparable.
    cluster = Cluster.build(protocol, n=n, seed=seed, config=config)
    cluster.add_workload(FixedRateWorkload(mean_interval=float(interval)))
    cluster.run(until=float(rounds * n), max_events=100_000_000)
    columns, _ = _metric_columns(cluster)
    row = {
        "protocol": protocol,
        "n": n,
        "mean_interval": float(interval),
        "messages_cheap": cluster.messages.cheap,
        "messages_expensive": cluster.messages.expensive,
    }
    row.update(columns)
    return row


def _throttle_cell(throttled: bool, n: int, mean_interval: float, rounds: int,
                   seed: int) -> Dict[str, float]:
    """One arm of ablation A4 (gimme throttle)."""
    from repro.core.messages import GimmeMsg

    config = ProtocolConfig(single_outstanding=throttled,
                            forward_throttle=throttled,
                            retry_timeout=10.0)
    cluster = Cluster.build("binary_search", n=n, seed=seed, config=config)
    issued = [0]

    def count_issued(src, dst, msg, issued=issued):
        if isinstance(msg, GimmeMsg) and len(msg.trail) == 1:
            issued[0] += 1

    cluster.network.on_send.append(count_issued)
    cluster.add_workload(FixedRateWorkload(mean_interval=mean_interval))
    cluster.run(until=float(rounds * n), max_events=100_000_000)
    columns, _ = _metric_columns(cluster)
    row = {
        "protocol": "binary_search",
        "single_outstanding": throttled,
        "n": n,
        "issued_gimmes": issued[0],
        "search_messages": cluster.messages.search_messages(),
        "token_passes": cluster.messages.token_passes(),
    }
    row.update(columns)
    return row


def _speed_cell(pause: float, n: int, mean_interval: float, rounds: int,
                seed: int) -> Dict[str, float]:
    """One arm of ablation A5 (adaptive token speed)."""
    config = ProtocolConfig(idle_pause=pause)
    # Run by time, not rounds: parking makes rounds slow by design.
    cluster = Cluster.build("binary_search", n=n, seed=seed, config=config)
    cluster.add_workload(FixedRateWorkload(mean_interval=mean_interval))
    horizon = float(rounds * n)
    cluster.run(until=horizon, max_events=100_000_000)
    columns, _ = _metric_columns(cluster)
    row = {
        "protocol": "binary_search",
        "idle_pause": pause,
        "n": n,
        "mean_interval": mean_interval,
        "messages_per_time": cluster.messages.total / horizon,
    }
    row.update(columns)
    return row


# -- ablation sweeps ------------------------------------------------------------


def run_gc_ablation(
    n: int = 64,
    mean_interval: float = 20.0,
    rounds: int = 300,
    seed: int = 2001,
    jobs: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Ablation A1: trap garbage-collection policies.  ``none`` lets stale
    traps fire dummy loans; ``rotation`` expires them (clock + served
    piggyback); ``inverse`` clears them along the loan's trail.

    All policies run for the same *virtual-time* horizon (``rounds * n``)
    so rates are directly comparable — loan-heavy runs advance the token
    clock more slowly, which would skew a rounds-based comparison."""
    cells = [
        Cell(key=("gc", policy), fn=_gc_cell,
             kwargs=dict(policy=policy, n=n, mean_interval=mean_interval,
                         rounds=rounds, seed=seed))
        for policy in (GC_NONE, GC_ROTATION, GC_INVERSE)
    ]
    return run_cells(cells, jobs=jobs)


def run_directed_ablation(
    sizes: Sequence[int] = (16, 32, 64, 128, 256),
    mean_interval: float = 50.0,
    rounds: int = 200,
    seed: int = 2001,
    jobs: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Ablation A2: delegated (gimme) vs. directed (probe/reply) search.
    Directed search uses up to 2·log N messages per request but can stop
    early when the rotation wins the race."""
    cells = [
        Cell(key=("directed", n, protocol), fn=_directed_cell,
             kwargs=dict(protocol=protocol, n=n, mean_interval=mean_interval,
                         rounds=rounds, seed=seed))
        for n in sizes
        for protocol in ("binary_search", "directed_search")
    ]
    return run_cells(cells, jobs=jobs)


def run_push_pull_ablation(
    n: int = 64,
    intervals: Sequence[float] = (5.0, 20.0, 100.0, 500.0),
    rounds: int = 200,
    seed: int = 2001,
    jobs: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Ablation A3: pull (binary search) vs. push (parked virtual root +
    adverts) vs. the combined scheme, across loads.  Push/hybrid run with
    an idle pause so the token can park and advertise."""
    cells = [
        Cell(key=("push_pull", float(interval), protocol), fn=_push_pull_cell,
             kwargs=dict(protocol=protocol, interval=float(interval), n=n,
                         rounds=rounds, seed=seed))
        for interval in intervals
        for protocol in ("binary_search", "push", "hybrid")
    ]
    return run_cells(cells, jobs=jobs)


def run_throttle_ablation(
    n: int = 64,
    mean_interval: float = 5.0,
    rounds: int = 100,
    seed: int = 2001,
    jobs: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Ablation A4: the Section 4.4 single-outstanding-request throttle.

    Both arms retry while waiting (retry_timeout = 10); the throttled arm
    additionally enforces the strong form of the remark — at most one
    gimme (own or forwarded) in flight per node — which bounds total gimme
    traffic by the number of token passes."""
    cells = [
        Cell(key=("throttle", throttled), fn=_throttle_cell,
             kwargs=dict(throttled=throttled, n=n,
                         mean_interval=mean_interval, rounds=rounds,
                         seed=seed))
        for throttled in (True, False)
    ]
    return run_cells(cells, jobs=jobs)


def run_adaptive_speed_ablation(
    n: int = 64,
    pauses: Sequence[float] = (0.0, 1.0, 5.0, 20.0),
    mean_interval: float = 200.0,
    rounds: int = 100,
    seed: int = 2001,
    jobs: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Ablation A5: adaptive token speed under a light load.  Longer idle
    pauses slash rotation messages; the binary search keeps responsiveness
    logarithmic because a parked token is found where it sleeps."""
    cells = [
        Cell(key=("speed", pause), fn=_speed_cell,
             kwargs=dict(pause=pause, n=n, mean_interval=mean_interval,
                         rounds=rounds, seed=seed))
        for pause in pauses
    ]
    return run_cells(cells, jobs=jobs)
