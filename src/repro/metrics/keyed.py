"""Per-key metrics for the multi-token fabric.

A fabric multiplexes thousands of token instances; per-grant bookkeeping
must therefore be O(1) and allocation-free.  :class:`KeyedMetricsRegistry`
keeps integer-indexed per-key aggregates (grants, responsiveness sums and
maxima) plus one fabric-level :class:`LatencyHistogram` of responsiveness
samples, so fabric-wide p50/p99 come from bucket counts rather than from
sorting millions of samples.

The histogram uses logarithmic buckets (powers of ``2**(1/4)`` — ~19%
relative resolution), which is plenty for tail percentiles and keeps the
whole structure a few hundred ints regardless of sample volume.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List

from repro.errors import ConfigError

__all__ = ["KeyStats", "LatencyHistogram", "KeyedMetricsRegistry"]

# Bucket boundaries: 0-bucket for exact zeros, then log-spaced from 2**-10
# (~1e-3 virtual units) upward.  ~4 buckets per octave, 200 buckets covers
# up to ~2**40 — far beyond any simulated wait.
_BASE = 2.0 ** -10
_RATIO = 2.0 ** 0.25
_BOUNDS: List[float] = [0.0]
_edge = _BASE
for _ in range(200):
    _BOUNDS.append(_edge)
    _edge *= _RATIO
del _edge


class LatencyHistogram:
    """Log-bucketed sample accumulator with percentile queries."""

    __slots__ = ("counts", "total", "sum", "max")

    def __init__(self) -> None:
        self.counts = [0] * (len(_BOUNDS) + 1)
        self.total = 0
        self.sum = 0.0
        self.max = 0.0

    def add(self, sample: float) -> None:
        """Record one sample (O(log buckets))."""
        self.counts[bisect_left(_BOUNDS, sample)] += 1
        self.total += 1
        self.sum += sample
        if sample > self.max:
            self.max = sample

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket holding the ``p``-th percentile.

        Returns 0.0 when empty.  ``p`` is in [0, 100].
        """
        if not 0.0 <= p <= 100.0:
            raise ConfigError(f"percentile must be in [0, 100], got {p}")
        if self.total == 0:
            return 0.0
        rank = max(1, int(self.total * p / 100.0 + 0.999999))
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                if i == 0:
                    return 0.0
                if i >= len(_BOUNDS):
                    return self.max
                # Bucket upper bound, clamped so p99 never exceeds the
                # exact observed maximum.
                return min(_BOUNDS[i], self.max)
        return self.max

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0


class KeyStats:
    """O(1) running aggregates for one key."""

    __slots__ = ("key", "grants", "requests", "resp_sum", "resp_max",
                 "wait_sum", "wait_max")

    def __init__(self, key: str) -> None:
        self.key = key
        self.grants = 0
        self.requests = 0
        self.resp_sum = 0.0
        self.resp_max = 0.0
        self.wait_sum = 0.0
        self.wait_max = 0.0

    @property
    def mean_responsiveness(self) -> float:
        return self.resp_sum / self.grants if self.grants else 0.0

    @property
    def mean_wait(self) -> float:
        return self.wait_sum / self.grants if self.grants else 0.0


class KeyedMetricsRegistry:
    """Grant/responsiveness accounting for N keys, integer-indexed.

    Keys are interned once via :meth:`add_key` (string -> dense int id);
    the per-grant hot path then touches only list slots and the shared
    histogram.  ``responsiveness`` here is the paper's Definition-3 period
    sample the per-lane tracker produces; ``waited`` is the request->grant
    wait.  Either may be fed alone (pass the other as 0.0).
    """

    __slots__ = ("stats", "histogram", "total_grants", "total_requests", "_ids")

    def __init__(self) -> None:
        self.stats: List[KeyStats] = []
        self.histogram = LatencyHistogram()
        self.total_grants = 0
        self.total_requests = 0
        self._ids: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self.stats)

    def add_key(self, key: str) -> int:
        """Intern ``key``; returns its dense integer id."""
        if key in self._ids:
            raise ConfigError(f"duplicate key {key!r}")
        kid = len(self.stats)
        self._ids[key] = kid
        self.stats.append(KeyStats(key))
        return kid

    def key_id(self, key: str) -> int:
        return self._ids[key]

    def key_stats(self, key: str) -> KeyStats:
        return self.stats[self._ids[key]]

    # -- hot path ------------------------------------------------------------

    def on_request(self, kid: int) -> None:
        self.stats[kid].requests += 1
        self.total_requests += 1

    def on_grant(self, kid: int, responsiveness: float, waited: float) -> None:
        stat = self.stats[kid]
        stat.grants += 1
        stat.resp_sum += responsiveness
        stat.wait_sum += waited
        if responsiveness > stat.resp_max:
            stat.resp_max = responsiveness
        if waited > stat.wait_max:
            stat.wait_max = waited
        self.total_grants += 1
        self.histogram.add(responsiveness)

    # -- aggregation ---------------------------------------------------------

    def percentile(self, p: float) -> float:
        """Fabric-level responsiveness percentile (log-bucket resolution)."""
        return self.histogram.percentile(p)

    def hottest(self, top: int = 10) -> List[KeyStats]:
        """The ``top`` keys by grant count (descending)."""
        return sorted(self.stats, key=lambda s: (-s.grants, s.key))[:top]

    def summary(self) -> Dict[str, object]:
        """Fabric-level roll-up (cheap: buckets + running sums only)."""
        hist = self.histogram
        return {
            "keys": len(self.stats),
            "grants": self.total_grants,
            "requests": self.total_requests,
            "responsiveness_mean": hist.mean,
            "responsiveness_p50": hist.percentile(50.0),
            "responsiveness_p99": hist.percentile(99.0),
            "responsiveness_max": hist.max,
        }
