"""Small statistics helpers for experiment reporting."""

from __future__ import annotations

import math
from typing import Sequence, Tuple

__all__ = ["mean", "stdev", "median", "percentile", "confidence_interval", "summarize"]


def mean(xs: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(xs) / len(xs) if xs else 0.0


def stdev(xs: Sequence[float]) -> float:
    """Sample standard deviation (n-1); 0.0 when fewer than two samples."""
    if len(xs) < 2:
        return 0.0
    m = mean(xs)
    return math.sqrt(sum((x - m) ** 2 for x in xs) / (len(xs) - 1))


def median(xs: Sequence[float]) -> float:
    """Median; 0.0 for an empty sequence."""
    return percentile(xs, 50.0)


def percentile(xs: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile ``p`` in [0, 100]."""
    if not xs:
        return 0.0
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(xs)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high or ordered[low] == ordered[high]:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def confidence_interval(xs: Sequence[float], z: float = 1.96) -> Tuple[float, float]:
    """Normal-approximation CI for the mean (default 95%)."""
    if not xs:
        return (0.0, 0.0)
    m = mean(xs)
    half = z * stdev(xs) / math.sqrt(len(xs))
    return (m - half, m + half)


def summarize(xs: Sequence[float]) -> dict:
    """Mean / sd / median / p95 / max / n in one dict."""
    return {
        "n": len(xs),
        "mean": mean(xs),
        "stdev": stdev(xs),
        "median": median(xs),
        "p95": percentile(xs, 95.0),
        "max": max(xs, default=0.0),
    }
