"""Responsiveness measurement (paper Definition 3).

    "The Responsiveness of a system is the maximum time period during
    which at least one node requires the token and until the token is
    given to a ready node."

The tracker maintains the invariant behind that definition: a period opens
when the system transitions from "no node ready" to "some node ready", and
closes (producing one sample) every time *any* ready node is granted the
token; if ready nodes remain, a new period opens immediately.  The paper's
Section 4.3 plots the *average* of these samples; Definition 3 proper is
their maximum — both are exposed.

Per-request waiting time (request → own grant) is tracked separately: the
paper is explicit that responsiveness is *not* average waiting time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = ["ResponsivenessTracker"]


class ResponsivenessTracker:
    """Streams request/grant events into responsiveness & waiting samples."""

    def __init__(self) -> None:
        self._ready_count = 0
        self._period_start: Optional[float] = None
        self._request_times: Dict[Tuple[int, int], float] = {}
        self.responsiveness_samples: List[float] = []
        self.waiting_samples: List[float] = []
        # Running aggregates, maintained on every grant so the result
        # accessors are O(1) instead of re-scanning the sample lists.
        self._resp_sum = 0.0
        self._resp_max = 0.0
        self._wait_sum = 0.0
        self._wait_max = 0.0

    # -- event ingestion ------------------------------------------------------

    def on_request(self, node: int, req_seq: int, now: float) -> None:
        """A node became ready."""
        key = (node, req_seq)
        if key in self._request_times:
            raise SimulationError(f"duplicate request event {key}")
        self._request_times[key] = now
        self._ready_count += 1
        if self._ready_count == 1:
            self._period_start = now

    def on_grant(self, node: int, req_seq: int, now: float) -> None:
        """A ready node was given the token."""
        key = (node, req_seq)
        start = self._request_times.pop(key, None)
        if start is None:
            raise SimulationError(f"grant without request: {key}")
        waited = now - start
        self.waiting_samples.append(waited)
        self._wait_sum += waited
        if waited > self._wait_max:
            self._wait_max = waited
        if self._period_start is None:
            raise SimulationError("grant while no responsiveness period open")
        period = now - self._period_start
        self.responsiveness_samples.append(period)
        self._resp_sum += period
        if period > self._resp_max:
            self._resp_max = period
        self._ready_count -= 1
        self._period_start = now if self._ready_count > 0 else None

    # -- results ----------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Requests not yet granted."""
        return self._ready_count

    def average_responsiveness(self) -> float:
        """Mean of the Definition 3 period samples (Section 4.3's metric)."""
        if not self.responsiveness_samples:
            return 0.0
        return self._resp_sum / len(self.responsiveness_samples)

    def max_responsiveness(self) -> float:
        """Definition 3 proper: the worst period."""
        return self._resp_max

    def average_waiting(self) -> float:
        """Mean request-to-own-grant delay."""
        if not self.waiting_samples:
            return 0.0
        return self._wait_sum / len(self.waiting_samples)

    def max_waiting(self) -> float:
        """Worst request-to-own-grant delay."""
        return self._wait_max

    def grants(self) -> int:
        """Number of satisfied requests."""
        return len(self.responsiveness_samples)
