"""Metrics: responsiveness (Definition 3), message counters, fairness
auditing (Theorem 3), per-key fabric aggregation, and summary statistics."""

from repro.metrics.counters import MessageCounters, WireCounters
from repro.metrics.fairness import FairnessAuditor
from repro.metrics.keyed import KeyedMetricsRegistry, KeyStats, LatencyHistogram
from repro.metrics.responsiveness import ResponsivenessTracker
from repro.metrics.tracing import TraceEvent, TraceRecorder
from repro.metrics.stats import (
    confidence_interval,
    mean,
    median,
    percentile,
    stdev,
    summarize,
)

__all__ = [
    "FairnessAuditor",
    "KeyStats",
    "KeyedMetricsRegistry",
    "LatencyHistogram",
    "MessageCounters",
    "ResponsivenessTracker",
    "TraceEvent",
    "TraceRecorder",
    "WireCounters",
    "confidence_interval",
    "mean",
    "median",
    "percentile",
    "stdev",
    "summarize",
]
