"""Structured tracing of protocol executions.

:class:`TraceRecorder` attaches to a cluster and records a typed event
stream — token hops, loans and returns, searches, grants — from which it
derives the quantities the paper argues about qualitatively:

- **token travel per grant** — hops the token makes between consecutive
  grants (the ring's weakness at light load);
- **search depth distribution** — forwards per gimme chain (Lemma 6's
  O(log N));
- **load balance** — per-node share of message traffic; the conclusion
  contrasts the ring's balance against tree roots' hotspots, and the
  :meth:`load_imbalance` ratio quantifies it (1.0 = perfectly even).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.core.messages import (
    GimmeMsg,
    LoanMsg,
    LoanReturnMsg,
    TokenMsg,
)
from repro.metrics.stats import mean, percentile

__all__ = ["TraceEvent", "TraceRecorder", "RecoveryTracker",
           "StabilizationTracker"]


class TraceEvent(NamedTuple):
    """One recorded protocol event."""

    time: float
    kind: str          # "hop" | "loan" | "loan_return" | "gimme" | "grant"
    src: int
    dst: int
    detail: Tuple = ()


class TraceRecorder:
    """Event-stream recorder + derived statistics for one cluster run."""

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self.events: List[TraceEvent] = []
        self._sends_by_node: Dict[int, int] = {i: 0 for i in range(cluster.n)}
        self._hops_since_grant = 0
        self.travel_per_grant: List[int] = []
        self._search_depth: Dict[Tuple[int, int], int] = {}
        cluster.network.on_send.append(self._on_send)
        cluster.on_grant(self._on_grant)

    # -- ingestion --------------------------------------------------------------

    def _on_send(self, src: int, dst: int, msg: object) -> None:
        now = self.cluster.sim.now
        self._sends_by_node[src] = self._sends_by_node.get(src, 0) + 1
        if isinstance(msg, TokenMsg):
            self.events.append(TraceEvent(now, "hop", src, dst))
            self._hops_since_grant += 1
        elif isinstance(msg, LoanMsg):
            self.events.append(TraceEvent(
                now, "loan", src, dst, (msg.requester, msg.req_seq)))
            self._hops_since_grant += 1
        elif isinstance(msg, LoanReturnMsg):
            self.events.append(TraceEvent(now, "loan_return", src, dst))
            self._hops_since_grant += 1
        elif isinstance(msg, GimmeMsg):
            self.events.append(TraceEvent(
                now, "gimme", src, dst,
                (msg.requester, msg.req_seq, msg.span)))
            key = (msg.requester, msg.req_seq)
            self._search_depth[key] = self._search_depth.get(key, 0) + 1

    def _on_grant(self, node: int, req_seq: int, now: float) -> None:
        self.events.append(TraceEvent(now, "grant", node, node, (req_seq,)))
        self.travel_per_grant.append(self._hops_since_grant)
        self._hops_since_grant = 0

    # -- derived statistics --------------------------------------------------------

    def count(self, kind: str) -> int:
        """Number of recorded events of one kind."""
        return sum(1 for e in self.events if e.kind == kind)

    def mean_travel_per_grant(self) -> float:
        """Average token movements between consecutive grants."""
        return mean(self.travel_per_grant)

    def search_depths(self) -> List[int]:
        """Forwards per gimme chain (one entry per (requester, seq))."""
        return sorted(self._search_depth.values())

    def max_search_depth(self) -> int:
        """Deepest recorded search chain (Lemma 6 bounds this by log N)."""
        depths = self.search_depths()
        return depths[-1] if depths else 0

    def sends_by_node(self) -> Dict[int, int]:
        """Messages sent per node."""
        return dict(self._sends_by_node)

    def load_imbalance(self) -> float:
        """Max-to-mean ratio of per-node sends (1.0 = perfectly balanced;
        a parked virtual root drives this far above the ring's ~1)."""
        values = [v for v in self._sends_by_node.values()]
        avg = mean(values)
        if avg == 0:
            return 1.0
        return max(values) / avg

    def grant_latency_percentile(self, p: float) -> float:
        """Percentile of the cluster's waiting-time samples."""
        return percentile(self.cluster.responsiveness.waiting_samples, p)

    def timeline(self, start: float = 0.0,
                 end: Optional[float] = None) -> List[TraceEvent]:
        """Events within a virtual-time window."""
        if end is None:
            end = float("inf")
        return [e for e in self.events if start <= e.time <= end]

    def tail(self, k: int = 40) -> List[Dict]:
        """The last ``k`` events as plain dicts (violation repro files)."""
        return [
            {"t": e.time, "kind": e.kind, "src": e.src, "dst": e.dst,
             "detail": list(e.detail)}
            for e in self.events[-k:]
        ]

    def summary(self) -> Dict[str, float]:
        """One-dict overview for reports."""
        return {
            "hops": self.count("hop"),
            "loans": self.count("loan"),
            "gimmes": self.count("gimme"),
            "grants": self.count("grant"),
            "mean_travel_per_grant": self.mean_travel_per_grant(),
            "max_search_depth": float(self.max_search_depth()),
            "load_imbalance": self.load_imbalance(),
        }


class RecoveryTracker:
    """Mean-time-to-recovery bookkeeping for the fault-tolerant runtime.

    Pairs each injected fault with the instant service is proven restored
    and keeps the interval.  Keys are caller-chosen (a node id, a request
    label); a repeated :meth:`fault` on an already-open key keeps the
    *first* timestamp — the clock runs from the original outage, not the
    latest aftershock.  Closing a key that was never opened is a no-op,
    so recovery signals can be wired unconditionally.

    Works on any monotonic clock: the DES ``sim.now``, the virtual asyncio
    loop, or wall time — the tracker only ever subtracts.
    """

    def __init__(self) -> None:
        self._open: Dict[object, float] = {}
        #: Closed fault-to-recovery intervals, in clock units.
        self.samples: List[float] = []

    def fault(self, key: object, now: float) -> None:
        """A fault on ``key`` was injected/detected at ``now``."""
        self._open.setdefault(key, now)

    def recovered(self, key: object, now: float) -> None:
        """Service on ``key`` is proven back; closes the open interval."""
        start = self._open.pop(key, None)
        if start is not None:
            self.samples.append(now - start)

    def open_faults(self) -> List[object]:
        """Keys with a fault still outstanding (unrecovered at readout)."""
        return sorted(self._open, key=repr)

    def count(self) -> int:
        return len(self.samples)

    def mttr(self) -> float:
        """Mean time to recovery over the closed intervals."""
        return mean(self.samples)

    def max_ttr(self) -> float:
        """Worst recorded recovery time."""
        return max(self.samples) if self.samples else 0.0

    def ingest_supervisor_events(self, events: List[Dict]) -> None:
        """Fold a :class:`~repro.aio.supervisor.ClusterSupervisor` event
        log into the tracker: ``suspect`` opens a node's outage, ``clear``
        (heartbeats resumed after repair) closes it."""
        for event in events:
            if event["event"] == "suspect":
                self.fault(("node", event["node"]), event["t"])
            elif event["event"] == "clear":
                self.recovered(("node", event["node"]), event["t"])

    def summary(self) -> Dict[str, float]:
        return {
            "recoveries": float(self.count()),
            "mttr": self.mttr(),
            "max_ttr": self.max_ttr(),
            "unrecovered": float(len(self._open)),
        }


class StabilizationTracker:
    """Convergence-time bookkeeping for self-stabilization runs.

    Where :class:`RecoveryTracker` measures *service* restoration after a
    crash, this measures *state* convergence after arbitrary corruption:
    the interval from an injection to the instant the cluster re-entered
    the single-token legitimate predicate and stayed there.  Samples are
    recorded by the convergence oracle when it closes an episode, so a
    sample exists only for episodes that actually converged.
    """

    def __init__(self) -> None:
        #: Closed injection-to-legitimacy intervals, in clock units.
        self.samples: List[float] = []

    def record(self, injected_at: float,
               legit_since: Optional[float]) -> None:
        """Close one episode: corruption at ``injected_at``, permanent
        legitimacy from ``legit_since`` (None = was never illegitimate,
        i.e. the corruption landed in an already-legal component)."""
        if legit_since is None:
            legit_since = injected_at
        self.samples.append(max(0.0, legit_since - injected_at))

    def count(self) -> int:
        return len(self.samples)

    def stabilization_time(self) -> float:
        """Mean convergence time over the closed episodes."""
        return mean(self.samples)

    def max_time(self) -> float:
        """Worst recorded convergence time."""
        return max(self.samples) if self.samples else 0.0

    def percentile(self, p: float) -> float:
        """Percentile of the convergence-time samples."""
        return percentile(self.samples, p)

    def summary(self) -> Dict[str, float]:
        return {
            "episodes": float(self.count()),
            "stabilization_time": self.stabilization_time(),
            "stabilization_p99": self.percentile(99.0),
            "max_stabilization_time": self.max_time(),
        }
