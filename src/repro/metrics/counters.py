"""Message accounting, split along the paper's expensive/cheap axis.

Every derived figure (totals, token passes, search traffic) is maintained
incrementally on :meth:`MessageCounters.on_send` so result-row assembly is
O(1) — no re-scan of the per-type table after a multi-million-message run.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["MessageCounters", "ReliabilityCounters", "WireCounters"]

#: Rotation hops plus loans and returns — every token movement.
_TOKEN_PASS_TYPES = frozenset({"TokenMsg", "LoanMsg", "LoanReturnMsg"})

#: All search/hint traffic (gimme, ask, adverts, probes).
_SEARCH_TYPES = frozenset({
    "GimmeMsg", "AskMsg", "AdvertMsg", "RequestMsg", "ProbeMsg",
    "ProbeReplyMsg",
})


class MessageCounters:
    """Counts sent messages by concrete type and by reliability class."""

    def __init__(self) -> None:
        self.by_type: Dict[str, int] = {}
        self.expensive = 0
        self.cheap = 0
        self._token_passes = 0
        self._search_messages = 0

    def on_send(self, src: int, dst: int, msg: object) -> None:
        """Network ``on_send`` hook."""
        name = type(msg).__name__
        by_type = self.by_type
        by_type[name] = by_type.get(name, 0) + 1
        if getattr(msg, "reliable", True):
            self.expensive += 1
        else:
            self.cheap += 1
        if name in _TOKEN_PASS_TYPES:
            self._token_passes += 1
        elif name in _SEARCH_TYPES:
            self._search_messages += 1

    @property
    def total(self) -> int:
        """All messages sent."""
        return self.expensive + self.cheap

    def count(self, type_name: str) -> int:
        """Messages of one concrete type (by class name)."""
        return self.by_type.get(type_name, 0)

    def token_passes(self) -> int:
        """Rotation hops plus loans and returns — every token movement."""
        return self._token_passes

    def search_messages(self) -> int:
        """All search/hint traffic (gimme, ask, adverts, probes)."""
        return self._search_messages

    def as_dict(self) -> Dict[str, int]:
        """Snapshot for reporting."""
        out = dict(self.by_type)
        out["_expensive"] = self.expensive
        out["_cheap"] = self.cheap
        out["_total"] = self.total
        return out


class ReliabilityCounters:
    """Accounting for the asyncio reliability sublayer
    (:mod:`repro.aio.reliability`).

    - ``data_frames`` — expensive payloads framed for guaranteed delivery;
    - ``retransmits`` — timeout-driven resends (backoff + jitter);
    - ``acks`` — acknowledgements emitted by receivers;
    - ``dedup_drops`` — duplicate frames suppressed before the core;
    - ``give_ups`` — frames surrendered after the bounded retry budget
      (the payload is genuinely lost; regeneration takes over from here).
    """

    __slots__ = ("data_frames", "retransmits", "acks", "dedup_drops",
                 "give_ups")

    def __init__(self) -> None:
        self.data_frames = 0
        self.retransmits = 0
        self.acks = 0
        self.dedup_drops = 0
        self.give_ups = 0

    @property
    def delivery_attempts(self) -> int:
        """First transmissions plus retransmissions."""
        return self.data_frames + self.retransmits

    def as_dict(self) -> Dict[str, int]:
        """Snapshot for reporting."""
        return {
            "data_frames": self.data_frames,
            "retransmits": self.retransmits,
            "acks": self.acks,
            "dedup_drops": self.dedup_drops,
            "give_ups": self.give_ups,
        }


class WireCounters:
    """Accounting for the real-socket transport (:mod:`repro.wire`).

    - ``frames_sent`` / ``frames_received`` — codec frames that crossed a
      TCP connection (after fault injection; a dropped message never
      reaches the wire);
    - ``bytes_sent`` / ``bytes_received`` — encoded frame volume;
    - ``connects`` — successful outbound connection establishments
      (initial dials and reconnects alike);
    - ``connect_failures`` — dial attempts that failed and went back to
      jittered backoff;
    - ``resets`` — established connections that broke mid-stream (any
      frames buffered in the dead socket are genuinely lost on the wire);
    - ``backpressure_drops`` — sends refused because the destination
      link's bounded queue was full (slow or unreachable peer);
    - ``codec_errors`` — inbound frames that violated framing or failed
      to decode; each one closes its connection.
    """

    __slots__ = ("frames_sent", "frames_received", "bytes_sent",
                 "bytes_received", "connects", "connect_failures",
                 "resets", "backpressure_drops", "codec_errors")

    def __init__(self) -> None:
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.connects = 0
        self.connect_failures = 0
        self.resets = 0
        self.backpressure_drops = 0
        self.codec_errors = 0

    def as_dict(self) -> Dict[str, int]:
        """Snapshot for reporting."""
        return {slot: getattr(self, slot) for slot in self.__slots__}
