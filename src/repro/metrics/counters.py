"""Message accounting, split along the paper's expensive/cheap axis."""

from __future__ import annotations

from typing import Dict

__all__ = ["MessageCounters"]


class MessageCounters:
    """Counts sent messages by concrete type and by reliability class."""

    def __init__(self) -> None:
        self.by_type: Dict[str, int] = {}
        self.expensive = 0
        self.cheap = 0

    def on_send(self, src: int, dst: int, msg: object) -> None:
        """Network ``on_send`` hook."""
        name = type(msg).__name__
        self.by_type[name] = self.by_type.get(name, 0) + 1
        if getattr(msg, "reliable", True):
            self.expensive += 1
        else:
            self.cheap += 1

    @property
    def total(self) -> int:
        """All messages sent."""
        return self.expensive + self.cheap

    def count(self, type_name: str) -> int:
        """Messages of one concrete type (by class name)."""
        return self.by_type.get(type_name, 0)

    def token_passes(self) -> int:
        """Rotation hops plus loans and returns — every token movement."""
        return (
            self.count("TokenMsg")
            + self.count("LoanMsg")
            + self.count("LoanReturnMsg")
        )

    def search_messages(self) -> int:
        """All search/hint traffic (gimme, ask, adverts, probes)."""
        return (
            self.count("GimmeMsg")
            + self.count("AskMsg")
            + self.count("AdvertMsg")
            + self.count("RequestMsg")
            + self.count("ProbeMsg")
            + self.count("ProbeReplyMsg")
        )

    def as_dict(self) -> Dict[str, int]:
        """Snapshot for reporting."""
        out = dict(self.by_type)
        out["_expensive"] = self.expensive
        out["_cheap"] = self.cheap
        out["_total"] = self.total
        return out
