"""Fairness auditing (paper Theorem 3).

    "During the time when some node x wants the token and gets it, no one
    node gets the token more than log N times, and there are no more than
    N possessions of the token by other nodes."

The auditor watches request/grant/visit events.  For every in-flight
request it counts (a) grants to each *other* node and (b) token
possessions (circulation visits + grants) by other nodes; when the request
is finally granted it records the maxima.  Tests assert the Theorem 3
bounds (with the protocol's constant slack) against these records.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["FairnessAuditor"]


class _Open:
    __slots__ = ("node", "grants_by_other", "possessions_by_others")

    def __init__(self, node: int) -> None:
        self.node = node
        self.grants_by_other: Dict[int, int] = {}
        self.possessions_by_others = 0


class FairnessAuditor:
    """Records per-request fairness statistics."""

    def __init__(self) -> None:
        self._open: Dict[Tuple[int, int], _Open] = {}
        #: (node, req_seq, max grants to any single other node,
        #:  total possessions by others) per completed request
        self.records: List[Tuple[int, int, int, int]] = []

    def on_request(self, node: int, req_seq: int, now: float) -> None:
        """Open an audit window for this request."""
        self._open[(node, req_seq)] = _Open(node)

    def on_grant(self, node: int, req_seq: int, now: float) -> None:
        """Count this grant against every other open window; close the
        granted request's own window and record its maxima."""
        for key, entry in self._open.items():
            if entry.node != node:
                entry.grants_by_other[node] = entry.grants_by_other.get(node, 0) + 1
                entry.possessions_by_others += 1
        finished = self._open.pop((node, req_seq), None)
        if finished is not None:
            worst = max(finished.grants_by_other.values(), default=0)
            self.records.append(
                (node, req_seq, worst, finished.possessions_by_others)
            )

    def on_visit(self, node: int, now: float) -> None:
        """A circulation visit counts as a possession by that node."""
        for entry in self._open.values():
            if entry.node != node:
                entry.possessions_by_others += 1

    def worst_single_node_grants(self) -> int:
        """Max over requests of grants to any single other node while
        the request waited (Theorem 3's log N bound)."""
        return max((r[2] for r in self.records), default=0)

    def worst_possessions(self) -> int:
        """Max over requests of token possessions by others while the
        request waited (Theorem 3's N bound)."""
        return max((r[3] for r in self.records), default=0)
