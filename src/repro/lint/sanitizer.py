"""Always-on transition sanitizer.

Two runtime guards, one per layer of the repo:

- :class:`SanitizedRewriter` wraps :class:`repro.trs.engine.Rewriter`: every
  (or every ``k``-th) applied rewrite is checked against the paper's safety
  invariants — the prefix property (Definition 2), token uniqueness, and
  history monotonicity (the global history only ever grows by appends).  A
  violation raises a structured :class:`~repro.lint.findings.LintViolation`
  carrying the offending rule, the match binding, and a *minimized* state.

- :class:`ClusterSanitizer` hooks the effect loop of the discrete-event and
  asyncio drivers: after every (``k``-th) handler invocation it audits the
  cluster-level analogues — at most one token per epoch observable at rest
  (held or on loan; regeneration legitimately retires an epoch), per-core
  visit-clock monotonicity, and grant/request sequencing.

Both are governed by the ``REPRO_SANITIZE`` environment switch (default
**on**; set ``REPRO_SANITIZE=0`` to disable) and ``REPRO_SANITIZE_EVERY``
(check every ``k``-th transition; default 1).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.lint.findings import LintViolation
from repro.specs.properties import (
    _FIELDS,
    global_history,
    prefix_property,
    token_uniqueness,
)
from repro.trs.engine import Rewriter
from repro.trs.matching import Binding
from repro.trs.rules import Rule, RuleContext, RuleSet
from repro.trs.terms import Bag, Struct, Term

__all__ = [
    "sanitize_enabled",
    "sanitize_every",
    "minimize_state",
    "SanitizedRewriter",
    "ClusterSanitizer",
]

_FALSY = ("0", "off", "false", "no")


def sanitize_enabled(default: bool = True) -> bool:
    """The ``REPRO_SANITIZE`` switch; unset means ``default`` (on)."""
    value = os.environ.get("REPRO_SANITIZE")
    if value is None:
        return default
    return value.strip().lower() not in _FALSY


def sanitize_every(default: int = 1) -> int:
    """The ``REPRO_SANITIZE_EVERY`` check interval (every k-th transition)."""
    value = os.environ.get("REPRO_SANITIZE_EVERY")
    if value is None:
        return default
    try:
        return max(1, int(value))
    except ValueError:
        return default


# ---------------------------------------------------------------------------
# State minimization
# ---------------------------------------------------------------------------

def minimize_state(state: Term, violated: Callable[[Term], bool]) -> Term:
    """Greedily shrink ``state`` while ``violated`` stays true.

    Repeatedly drops single elements from the state's bag components
    (``Q``/``P``/``I``/``O``/``W`` entries) as long as the violation
    persists, producing the small counterexamples the lint report shows.
    ``violated`` is probed defensively: a predicate that *errors* on a
    shrunk candidate counts as "not violated" (we never minimize into a
    malformed state).
    """
    def still_bad(candidate: Term) -> bool:
        try:
            return bool(violated(candidate))
        except Exception:
            return False

    if not isinstance(state, Struct) or not still_bad(state):
        return state
    changed = True
    while changed:
        changed = False
        for i, component in enumerate(state.args):
            if not isinstance(component, Bag):
                continue
            for item in component.items:
                shrunk = component.remove_one(item)
                candidate = Struct(
                    state.functor,
                    state.args[:i] + (shrunk,) + state.args[i + 1 :],
                )
                if still_bad(candidate):
                    state = candidate
                    changed = True
                    break
            if changed:
                break
    return state


# ---------------------------------------------------------------------------
# TRS-level sanitizer
# ---------------------------------------------------------------------------

def _history_monotone(pre: Term, post: Term) -> bool:
    """The global history only grows by appends across a transition."""
    return global_history(pre).is_prefix_of(global_history(post))


def default_invariants(state: Term) -> List[Tuple[str, Callable[[Term], bool]]]:
    """The paper's safety invariants applicable to ``state``'s system."""
    invariants: List[Tuple[str, Callable[[Term], bool]]] = [
        ("prefix-property", prefix_property)
    ]
    if isinstance(state, Struct) and "T" in _FIELDS.get(state.functor, ()):
        invariants.append(("token-uniqueness", token_uniqueness))
    return invariants


class SanitizedRewriter(Rewriter):
    """A :class:`Rewriter` that audits every ``k``-th applied transition.

    Drop-in replacement: all enumeration/reduction entry points funnel
    through :meth:`apply`, so reductions, random walks, and bounded search
    are all sanitized.  ``invariants`` defaults to the invariant set
    appropriate for the state's system (prefix property everywhere, token
    uniqueness where a token component exists), plus history monotonicity,
    which needs both endpoints and is always checked.
    """

    def __init__(
        self,
        ruleset: RuleSet,
        ctx: Optional[RuleContext] = None,
        invariants: Optional[Iterable[Tuple[str, Callable[[Term], bool]]]] = None,
        every: Optional[int] = None,
        check_monotonicity: bool = True,
    ) -> None:
        super().__init__(ruleset, ctx)
        self._invariants = list(invariants) if invariants is not None else None
        self._every = every if every is not None else sanitize_every()
        self._check_monotonicity = check_monotonicity
        self._transitions = 0
        self.checked = 0

    def apply(self, state: Term, rule: Rule, binding: Binding) -> Optional[Term]:
        result = super().apply(state, rule, binding)
        if result is None:
            return None
        self._transitions += 1
        if self._transitions % self._every == 0:
            self._check(state, result, rule, binding)
        return result

    def _check(self, pre: Term, post: Term, rule: Rule, binding: Binding) -> None:
        self.checked += 1
        invariants = (
            self._invariants
            if self._invariants is not None
            else default_invariants(post)
        )
        for name, invariant in invariants:
            if not invariant(post):
                minimized = minimize_state(post, lambda s: not invariant(s))
                raise LintViolation(
                    invariant=name,
                    rule=rule.name,
                    binding=binding,
                    state=post,
                    minimized=minimized,
                )
        if self._check_monotonicity and not _history_monotone(pre, post):
            raise LintViolation(
                invariant="history-monotonicity",
                rule=rule.name,
                binding=binding,
                state=post,
                detail=(
                    f"global history {global_history(pre)!r} is not a "
                    f"prefix of {global_history(post)!r}"
                ),
            )


# ---------------------------------------------------------------------------
# Cluster-level sanitizer (sans-IO cores under the sim / asyncio drivers)
# ---------------------------------------------------------------------------

class ClusterSanitizer:
    """Audits a set of protocol cores after driver effect application.

    The drivers call :meth:`after_apply` once per handled event.  Because
    the drivers are single-threaded, only the acting core's state can have
    changed, so the sanitizer maintains an O(1)-per-event incremental view
    (who holds a token, per epoch; each core's visit clock) and evaluates
    the invariants every ``k``-th event:

    - **single-token-census** — among non-crashed cores of the *newest*
      epoch, at most one token is observable at rest (held via
      ``has_token`` or on loan via ``lent_to``).  Fault-tolerant
      regeneration retires whole epochs, so a stale lower-epoch token is
      legal until fenced; two tokens in one epoch never are.
    - **clock-monotonicity** — a core's token-visit clock never decreases.
    - **grant-sequencing** — a core never reports a grant newer than its
      latest request (``granted_seq <= req_seq``).

    Violations raise :class:`LintViolation` whose ``rule`` names the
    handler of the event that exposed the fault (``on_message``,
    ``on_timer``, …) and whose ``binding`` records the node and payload.
    """

    def __init__(self, every: Optional[int] = None) -> None:
        self.every = every if every is not None else sanitize_every()
        self._cores: Dict[int, object] = {}
        self._crashed: set = set()
        self._clocks: Dict[int, int] = {}
        #: node -> epoch of its observable token (held or lent), live only
        self._holder_epochs: Dict[int, int] = {}
        #: epoch -> number of observable tokens (inverse of the above)
        self._epoch_counts: Dict[int, int] = {}
        #: node -> (has_token?, lent_to?, epoch?, clock?, req/granted_seq?)
        #: attribute-presence flags, probed once per core: every audited
        #: attribute is assigned in the cores' ``__init__``, so presence
        #: never changes after registration and the hot path can use direct
        #: attribute access instead of ``getattr`` chains.
        self._flags: Dict[int, tuple] = {}
        self._events = 0
        self.checked = 0

    # -- wiring ----------------------------------------------------------------

    def register(self, core) -> None:
        """Track one protocol core (called by the driver at attach time)."""
        self._cores[core.node_id] = core
        self._update_core(core)

    def unregister(self, node_id: int) -> None:
        """Stop tracking a core (dynamic membership: the node left)."""
        self._set_holder(node_id, None)
        self._cores.pop(node_id, None)
        self._clocks.pop(node_id, None)
        self._flags.pop(node_id, None)
        self._crashed.discard(node_id)

    def mark_crashed(self, node_id: int) -> None:
        self._crashed.add(node_id)
        self._set_holder(node_id, None)

    def mark_recovered(self, node_id: int) -> None:
        self._crashed.discard(node_id)
        core = self._cores.get(node_id)
        if core is not None:
            self._update_core(core)

    # -- incremental view --------------------------------------------------------

    def _set_holder(self, node_id: int, epoch: Optional[int]) -> None:
        old = self._holder_epochs.get(node_id)
        if old == epoch:
            return
        if old is not None:
            remaining = self._epoch_counts[old] - 1
            if remaining:
                self._epoch_counts[old] = remaining
            else:
                del self._epoch_counts[old]
        if epoch is None:
            self._holder_epochs.pop(node_id, None)
        else:
            self._holder_epochs[node_id] = epoch
            self._epoch_counts[epoch] = self._epoch_counts.get(epoch, 0) + 1

    def _core_flags(self, core) -> tuple:
        node_id = core.node_id
        flags = self._flags.get(node_id)
        if flags is None:
            flags = (
                hasattr(core, "has_token"),
                hasattr(core, "lent_to"),
                hasattr(core, "epoch"),
                hasattr(core, "clock"),
                hasattr(core, "req_seq") and hasattr(core, "granted_seq"),
            )
            self._flags[node_id] = flags
        return flags

    def _update_core(self, core) -> None:
        node_id = core.node_id
        flags = self._core_flags(core)
        if node_id in self._crashed:
            holds = False
        else:
            holds = (flags[0] and core.has_token) or (
                flags[1] and core.lent_to is not None
            )
        epoch = (core.epoch if flags[2] else 0) if holds else None
        # Fast path: the holder view is unchanged (the overwhelmingly
        # common case — most events do not move the token).
        if self._holder_epochs.get(node_id) != epoch:
            self._set_holder(node_id, epoch)

    # -- the hook ----------------------------------------------------------------

    def after_apply(self, core, origin: str, payload: object, now: float) -> None:
        """Called by a driver after it applied a handler's effects.

        The incremental view is refreshed on *every* event (cheap, O(1) —
        only ``core`` can have changed); the invariants are evaluated on
        every ``k``-th.  Violation reports are assembled only on the raise
        path, so the per-event cost is a few attribute reads and dict
        probes.
        """
        self._events += 1
        self._update_core(core)
        if self._events % self.every != 0:
            return
        self.checked += 1
        self._check_census(origin, core.node_id, payload)
        self._check_core(core, origin, core.node_id, payload)

    def check(
        self,
        origin: str = "<manual>",
        payload: object = None,
        node: Optional[int] = None,
    ) -> None:
        """Rescan every core and run every invariant now; raise on the
        first violation (used at quiescent points and by tests)."""
        self.checked += 1
        for core in self._cores.values():
            self._update_core(core)
        self._check_census(origin, node, payload)
        for node_id, core in self._cores.items():
            if node_id not in self._crashed:
                self._check_core(core, origin, node, payload)

    # -- invariants ---------------------------------------------------------------

    def _check_census(self, origin: str, node: Optional[int],
                      payload: object) -> None:
        counts = self._epoch_counts
        if not counts:
            return
        newest = max(counts)
        if counts[newest] > 1:
            holders = sorted(
                n for n, epoch in self._holder_epochs.items()
                if epoch == newest
            )
            raise LintViolation(
                invariant="single-token-census",
                rule=origin,
                binding={"node": node, "payload": payload},
                state={"epoch": newest, "holders": holders},
                detail=(
                    f"{len(holders)} tokens observable at rest in "
                    f"epoch {newest} (nodes {holders})"
                ),
            )

    def _check_core(self, core, origin: str, node: Optional[int],
                    payload: object) -> None:
        flags = self._core_flags(core)
        if flags[3]:
            clock = core.clock
            if clock is not None:
                node_id = core.node_id
                last = self._clocks.get(node_id)
                if last is not None and clock < last:
                    raise LintViolation(
                        invariant="clock-monotonicity",
                        rule=origin,
                        binding={"node": node, "payload": payload},
                        state={"node": node_id, "clock": clock,
                               "previous": last},
                        detail=(
                            f"node {node_id} visit clock went backwards "
                            f"({last} -> {clock})"
                        ),
                    )
                self._clocks[node_id] = clock
        if flags[4]:
            req_seq = core.req_seq
            granted_seq = core.granted_seq
            if (
                req_seq is not None
                and granted_seq is not None
                and granted_seq > req_seq
            ):
                raise LintViolation(
                    invariant="grant-sequencing",
                    rule=origin,
                    binding={"node": node, "payload": payload},
                    state={"node": core.node_id, "granted_seq": granted_seq,
                           "req_seq": req_seq},
                    detail=(
                        f"node {core.node_id} granted_seq {granted_seq} "
                        f"exceeds req_seq {req_seq}"
                    ),
                )
