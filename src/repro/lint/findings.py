"""Data model of the protocol static analyzer.

Three artifacts:

- :class:`LintFinding` — one defect (or notable fact) found by a static
  pass, identified by a stable code (``unbound-rhs-variable``,
  ``shadowed-rule``, ``guard-widening``, …), a severity, the system and
  rule it concerns, and free-form details.
- :class:`LintReport` — an ordered collection of findings with JSON
  serialization (the machine-readable output of ``repro lint``) and an
  exit-code policy (errors fail, warnings/info do not).
- :class:`LintViolation` — the structured exception the runtime sanitizer
  raises: it names the invariant, the rule (or handler) whose transition
  broke it, the binding (or payload) under which it fired, and a
  *minimized* offending state for human consumption.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import LintError

__all__ = ["Severity", "LintFinding", "LintReport", "LintViolation"]


class Severity:
    """Finding severities, ordered: info < warning < error."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    ORDER = (INFO, WARNING, ERROR)

    @classmethod
    def validate(cls, value: str) -> str:
        if value not in cls.ORDER:
            raise LintError(f"unknown severity {value!r}")
        return value


class LintFinding:
    """One finding of a static pass."""

    __slots__ = ("code", "severity", "system", "rule", "message", "details")

    def __init__(
        self,
        code: str,
        severity: str,
        system: str,
        rule: Optional[str],
        message: str,
        details: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.code = code
        self.severity = Severity.validate(severity)
        self.system = system
        self.rule = rule
        self.message = message
        self.details = dict(details or {})

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable view of the finding."""
        return {
            "code": self.code,
            "severity": self.severity,
            "system": self.system,
            "rule": self.rule,
            "message": self.message,
            "details": {k: repr(v) if not _is_jsonable(v) else v
                        for k, v in self.details.items()},
        }

    def __repr__(self) -> str:
        rule = f" rule {self.rule!r}" if self.rule else ""
        return (f"[{self.severity}] {self.code} ({self.system}{rule}): "
                f"{self.message}")


def _is_jsonable(value: Any) -> bool:
    return isinstance(value, (str, int, float, bool, type(None), list, dict))


class LintReport:
    """All findings of one analyzer run, plus per-pass bookkeeping."""

    def __init__(self) -> None:
        self.findings: List[LintFinding] = []
        self.passes: List[Dict[str, Any]] = []

    def add(self, finding: LintFinding) -> None:
        """Record one finding."""
        self.findings.append(finding)

    def extend(self, findings: List[LintFinding]) -> None:
        """Record several findings."""
        self.findings.extend(findings)

    def record_pass(self, name: str, system: str, **stats: Any) -> None:
        """Record that a pass ran (for the JSON report's audit trail)."""
        entry: Dict[str, Any] = {"pass": name, "system": system}
        entry.update(stats)
        self.passes.append(entry)

    def __iter__(self) -> Iterator[LintFinding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    def by_severity(self, severity: str) -> List[LintFinding]:
        """Findings at exactly the given severity."""
        return [f for f in self.findings if f.severity == severity]

    @property
    def errors(self) -> List[LintFinding]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[LintFinding]:
        return self.by_severity(Severity.WARNING)

    def ok(self, strict: bool = False) -> bool:
        """True when the run should exit zero (no errors; with ``strict``
        also no warnings)."""
        if self.errors:
            return False
        if strict and self.warnings:
            return False
        return True

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable view with deterministic ordering: findings
        and passes are sorted by stable keys, so two reports with the same
        content serialize identically regardless of pass scheduling."""
        findings = sorted(
            self.findings,
            key=lambda f: (f.system, f.code, f.rule or "", f.message))
        passes = sorted(
            self.passes,
            key=lambda p: (str(p.get("pass", "")), str(p.get("system", ""))))
        return {
            "ok": self.ok(),
            "summary": {
                s: len(self.by_severity(s)) for s in Severity.ORDER
            },
            "passes": passes,
            "findings": [f.to_dict() for f in findings],
        }

    def to_json(self, indent: int = 2) -> str:
        """The machine-readable report emitted by ``repro lint --json``.
        Byte-deterministic: ordering is fixed by :meth:`to_dict` and keys
        are sorted."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary_line(self) -> str:
        counts = ", ".join(
            f"{len(self.by_severity(s))} {s}" for s in reversed(Severity.ORDER)
        )
        return f"{len(self.findings)} finding(s): {counts}"


class LintViolation(LintError):
    """A runtime invariant violation caught by the transition sanitizer.

    Structured fields:

    - ``invariant`` — name of the violated invariant
      (``prefix-property``, ``token-uniqueness``, ``history-monotonicity``,
      ``single-token-census``, …);
    - ``rule`` — the TRS rule name (or protocol-core handler) whose
      transition produced the bad state;
    - ``binding`` — the match binding (or handler payload) it fired under;
    - ``state`` — the offending state as produced;
    - ``minimized`` — a shrunk state that still violates the invariant
      (bag elements greedily removed), for readable failure reports.
    """

    def __init__(
        self,
        invariant: str,
        rule: Optional[str] = None,
        binding: Optional[Dict[str, Any]] = None,
        state: Any = None,
        minimized: Any = None,
        detail: str = "",
    ) -> None:
        self.invariant = invariant
        self.rule = rule
        self.binding = dict(binding) if binding else {}
        self.state = state
        self.minimized = minimized if minimized is not None else state
        self.detail = detail
        parts = [f"invariant {invariant!r} violated"]
        if rule is not None:
            parts.append(f"by rule {rule!r}")
        if self.binding:
            shown = ", ".join(f"{k}={v!r}" for k, v in sorted(self.binding.items()))
            parts.append(f"under binding {{{shown}}}")
        if detail:
            parts.append(f"({detail})")
        if self.minimized is not None:
            parts.append(f"; minimized state: {self.minimized!r}")
        super().__init__(" ".join(parts))

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable view (repr-ing term-valued fields)."""
        return {
            "invariant": self.invariant,
            "rule": self.rule,
            "binding": {k: repr(v) for k, v in self.binding.items()},
            "state": repr(self.state),
            "minimized": repr(self.minimized),
            "detail": self.detail,
        }
