"""Protocol static analyzer and transition sanitizer (``repro lint``).

Three layers:

- :mod:`repro.lint.rules` — static lint of TRS rule sets (binding
  hygiene, shadowing, never-enabled guards), probed over sampled
  bounded-reachable states;
- :mod:`repro.lint.refinement` — guard-narrowing verification of the
  paper's refinement chain (restriction differentials and sampled
  simulation checks);
- :mod:`repro.lint.sanitizer` — runtime invariant auditing for the TRS
  engine (:class:`SanitizedRewriter`) and the executable protocol cores
  (:class:`ClusterSanitizer`), on by default via ``REPRO_SANITIZE``.

``repro lint`` (see :mod:`repro.cli`) runs every registered pass and
emits a human or JSON report; see :mod:`repro.lint.registry`.
"""

from repro.lint.findings import LintFinding, LintReport, LintViolation, Severity
from repro.lint.refinement import check_restriction, check_simulation
from repro.lint.registry import run_all, run_dynamic, run_static, targets
from repro.lint.rules import lint_rules, sample_states
from repro.lint.sanitizer import (
    ClusterSanitizer,
    SanitizedRewriter,
    sanitize_enabled,
    sanitize_every,
)

__all__ = [
    "ClusterSanitizer",
    "LintFinding",
    "LintReport",
    "LintViolation",
    "SanitizedRewriter",
    "Severity",
    "check_restriction",
    "check_simulation",
    "lint_rules",
    "run_all",
    "run_dynamic",
    "run_static",
    "sample_states",
    "sanitize_enabled",
    "sanitize_every",
    "targets",
]
