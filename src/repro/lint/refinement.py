"""Static verification of the refinement chain's guard-narrowing discipline.

The paper's Section 4 refines systems exclusively by *constraining* when
rules apply ("these conditions always involve only the local state"), so
each refinement is safety-preserving by construction — provided the
"refinement" really only narrows.  This module checks that mechanically,
in two modes:

- :func:`check_restriction` — for same-state-space refinements (a
  restricted rule set against its unrestricted parent): every rule of the
  refined system maps to a parent rule whose applicability set *contains*
  it.  Symbolic containment of opaque guards is infeasible, so the check
  is a sampled-state differential: on every sampled reachable state, the
  refined rule's successor set must be a subset of its parent's.  The
  verdict classifies each rule as ``narrowed`` (strictly fewer successors
  somewhere), ``unchanged``, or ``added`` (present only in the refinement,
  legal only with a justification — it must stutter under the refinement
  mapping); parent rules left unmapped are reported ``dropped``.
- :func:`check_simulation` — for cross-system refinements (BinarySearch →
  S1 etc.): on every sampled state, every enabled transition's image under
  the refinement mapping must be reachable in the coarse system within
  ``max_depth`` steps (0 steps = stuttering).  This is the per-state
  generalization of :func:`repro.specs.refinement.check_refinement`,
  which verifies single reductions.

A widened guard — a "refinement" admitting a transition its parent forbids
— surfaces as a ``guard-widening`` error naming the rule, the state, and
the unsanctioned successor.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import LintFinding, Severity
from repro.trs.engine import Rewriter
from repro.trs.rules import Rule, RuleContext, RuleSet
from repro.trs.terms import Term

__all__ = ["ADDED", "check_restriction", "check_simulation", "rule_successors"]

#: Sentinel for rule_map entries: the rule exists only in the refinement.
ADDED = "<added>"

#: Cap on enabled instantiations expanded per (rule, state) during the
#: differential check.
MAX_EXPANSIONS = 128


def rule_successors(rule: Rule, state: Term, cap: int = MAX_EXPANSIONS) -> Set[Term]:
    """Every state reachable from ``state`` by one application of ``rule``.

    Fresh contexts per call keep probing effect-free; the spec systems
    derive fresh data deterministically from the state, so successor terms
    compare exactly across rule variants.
    """
    out: Set[Term] = set()
    count = 0
    for binding in rule.instantiations(state, RuleContext()):
        if count >= cap:
            break
        count += 1
        result = rule.apply(state, binding, RuleContext())
        if result is not None:
            out.add(result)
    return out


def check_restriction(
    system: str,
    fine: Sequence[Rule],
    coarse: RuleSet,
    states: Iterable[Term],
    rule_map: Optional[Dict[str, str]] = None,
    mapping: Optional[Callable[[Term], Term]] = None,
    max_error_reports: int = 5,
) -> Tuple[List[LintFinding], Dict[str, str]]:
    """Differentially verify that ``fine`` only narrows ``coarse``.

    ``rule_map`` maps fine rule names to their parent's (default:
    same name; the primed convention ``3' -> 3`` / ``4' -> 4`` is applied
    automatically), or to :data:`ADDED` for rules the refinement
    introduces.  Added rules need ``mapping`` (the refinement mapping) and
    must stutter under it.  Returns ``(findings, classification)`` where
    ``classification[rule] in {"narrowed", "unchanged", "added",
    "dropped"}`` (dropped entries are keyed by the parent rule's name).
    """
    fine_rules = list(fine)
    resolved: Dict[str, str] = {}
    for rule in fine_rules:
        if rule_map and rule.name in rule_map:
            resolved[rule.name] = rule_map[rule.name]
        elif rule.name in coarse:
            resolved[rule.name] = rule.name
        elif rule.name.endswith("'") and rule.name[:-1] in coarse:
            resolved[rule.name] = rule.name[:-1]
        else:
            resolved[rule.name] = ADDED

    findings: List[LintFinding] = []
    narrowed: Set[str] = set()
    errors = 0
    state_list = list(states)

    # Probes are effect-free and deterministic per (rule, state), so the
    # differential can share successor sets whenever a rule is probed
    # against the same state twice (several refined rules mapping to one
    # parent, primed variants, ...).
    succ_cache: Dict[Tuple[int, Term], Set[Term]] = {}

    def successors_of(r: Rule, state: Term) -> Set[Term]:
        key = (id(r), state)
        cached = succ_cache.get(key)
        if cached is None:
            cached = succ_cache[key] = rule_successors(r, state)
        return cached

    for rule in fine_rules:
        parent_name = resolved[rule.name]
        if parent_name is ADDED or parent_name == ADDED:
            findings.extend(_check_added_rule(
                system, rule, state_list, mapping, max_error_reports))
            continue
        parent = coarse[parent_name]
        for state in state_list:
            fine_succ = successors_of(rule, state)
            parent_succ = successors_of(parent, state)
            widened = fine_succ - parent_succ
            if widened:
                errors += 1
                if errors <= max_error_reports:
                    sample = next(iter(widened))
                    findings.append(LintFinding(
                        "guard-widening", Severity.ERROR, system, rule.name,
                        f"rule {rule.name!r} admits a transition its parent "
                        f"rule {parent_name!r} forbids — the refinement "
                        "widens instead of narrowing, so it is not "
                        "safety-preserving",
                        {"parent": parent_name, "state": repr(state),
                         "unsanctioned_successor": repr(sample),
                         "extra_successors": len(widened)},
                    ))
            elif len(fine_succ) < len(parent_succ):
                narrowed.add(rule.name)

    classification: Dict[str, str] = {}
    for rule in fine_rules:
        parent_name = resolved[rule.name]
        if parent_name == ADDED:
            classification[rule.name] = "added"
        elif rule.name in narrowed:
            classification[rule.name] = "narrowed"
        else:
            classification[rule.name] = "unchanged"
    mapped_parents = {p for p in resolved.values() if p != ADDED}
    for parent in coarse.names():
        if parent not in mapped_parents:
            classification[parent] = "dropped"
            findings.append(LintFinding(
                "dropped-rule", Severity.INFO, system, parent,
                f"parent rule {parent!r} has no counterpart in the refined "
                "system (disabling a rule is always safety-preserving)",
            ))
    return findings, classification


def _check_added_rule(
    system: str,
    rule: Rule,
    states: List[Term],
    mapping: Optional[Callable[[Term], Term]],
    max_error_reports: int,
) -> List[LintFinding]:
    """An added rule is justified only when it stutters under the
    refinement mapping — its transitions must be invisible to the parent."""
    if mapping is None:
        return [LintFinding(
            "added-rule-unjustified", Severity.ERROR, system, rule.name,
            f"rule {rule.name!r} exists only in the refined system and no "
            "refinement mapping was supplied to justify it",
        )]
    findings: List[LintFinding] = []
    errors = 0
    for state in states:
        image = mapping(state)
        for succ in rule_successors(rule, state):
            if mapping(succ) != image:
                errors += 1
                if errors <= max_error_reports:
                    findings.append(LintFinding(
                        "added-rule-not-stuttering", Severity.ERROR, system,
                        rule.name,
                        f"added rule {rule.name!r} changes the refinement "
                        "image — it is observable in the parent system and "
                        "needs a simulation argument, not a stutter "
                        "justification",
                        {"state": repr(state), "successor": repr(succ)},
                    ))
    return findings


def check_simulation(
    system: str,
    fine: Rewriter,
    states: Iterable[Term],
    mapping: Callable[[Term], Term],
    coarse: Rewriter,
    max_depth: int = 2,
    max_error_reports: int = 5,
) -> Tuple[List[LintFinding], Dict[str, str]]:
    """Sampled-state simulation check of a cross-system refinement.

    For every sampled state and every enabled transition, the mapped step
    must be a ≤ ``max_depth``-step path of the coarse system (stuttering
    allowed).  Returns ``(findings, classification)`` with each fine rule
    classified ``stuttering``, ``simulated``, or (on failure)
    ``unsimulated``.
    """
    findings: List[LintFinding] = []
    classification: Dict[str, str] = {}
    errors = 0
    # Many fine transitions collapse to the same coarse image pair, and
    # bounded search is the expensive part of this check — memoize the
    # verdict per (pre, post) pair.
    reach_cache: Dict[Tuple[Term, Term], bool] = {}
    for state in states:
        image_pre = mapping(state)
        for rule_name, succ in fine.successors(state):
            image_post = mapping(succ)
            if image_pre == image_post:
                classification.setdefault(rule_name, "stuttering")
                continue
            reachable = reach_cache.get((image_pre, image_post))
            if reachable is None:
                reachable = reach_cache[(image_pre, image_post)] = \
                    coarse.can_reach(image_pre, image_post, max_depth)
            if reachable:
                classification[rule_name] = "simulated"
                continue
            classification[rule_name] = "unsimulated"
            errors += 1
            if errors <= max_error_reports:
                findings.append(LintFinding(
                    "refinement-unsimulated", Severity.ERROR, system,
                    rule_name,
                    f"a {rule_name!r} transition maps outside the coarse "
                    f"system's {max_depth}-step reach — the refinement "
                    "argument does not cover it",
                    {"state": repr(state), "successor": repr(succ),
                     "image_pre": repr(image_pre),
                     "image_post": repr(image_post)},
                ))
    return findings, classification
