"""Registry of lintable systems and the full ``repro lint`` pass schedule.

One :class:`LintTarget` per specification system (the paper's refinement
chain S → S1 → Token → MP → Search → BinarySearch), each carrying:

- how to build its rule set and a *bounded* variant for state sampling
  (the bounds are the Section-4 guard narrowings of
  :mod:`repro.specs.modelcheck`, so every sampled state is genuine);
- an ``expected_idle`` allowlist — rules that are provably never enabled
  under the documented bounds, with the justification recorded in the
  report instead of a ``never-enabled`` warning;
- the restriction pair to differentially verify (restricted rule set vs.
  its own unrestricted parent — same state space), and
- the cross-system simulation target (the ``*_to_s1`` / ``s1_to_s``
  refinement mappings of :mod:`repro.specs.refinement`).

:func:`run_static` executes rule lint + restriction + simulation passes
for every target; :func:`run_dynamic` drives each executable protocol
core under a :class:`~repro.lint.sanitizer.ClusterSanitizer` for a short
sanitized simulation.  Both append to a shared
:class:`~repro.lint.findings.LintReport` — the backing store of the
``repro lint`` CLI.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.lint.findings import LintFinding, LintReport, Severity
from repro.lint.refinement import check_restriction, check_simulation
from repro.lint.rules import lint_rules, overlap_pairs, sample_states
from repro.specs import (
    system_binary_search,
    system_message_passing,
    system_s,
    system_s1,
    system_search,
    system_token,
)
from repro.specs.modelcheck import bound_data, bound_requests, bound_visits
from repro.specs.refinement import (
    binary_search_to_s1,
    mp_to_s1,
    s1_to_s,
    search_to_s1,
    token_to_s1,
)
from repro.trs.engine import Rewriter
from repro.trs.rules import RuleContext, RuleSet
from repro.trs.terms import Term

__all__ = ["LintTarget", "targets", "run_static", "run_dynamic", "run_all"]

#: Executable sans-IO protocols exercised by the dynamic sanitizer pass.
DYNAMIC_PROTOCOLS = (
    "ring",
    "linear_search",
    "binary_search",
    "directed_search",
    "push",
    "hybrid",
    "fault_tolerant",
)


class LintTarget:
    """One system registered for static analysis."""

    def __init__(
        self,
        name: str,
        rules: Callable[[], RuleSet],
        initial: Callable[[], Term],
        bounded: Callable[[], RuleSet],
        expected_idle: Optional[Dict[str, str]] = None,
        restriction: Optional[Callable[[], RuleSet]] = None,
        simulation: Optional[Dict] = None,
    ) -> None:
        self.name = name
        self.rules = rules
        self.initial = initial
        self.bounded = bounded
        self.expected_idle = dict(expected_idle or {})
        #: builds the *coarse* (unrestricted) parent of ``rules`` for the
        #: same-state-space guard-narrowing differential; None when the
        #: registered rule set has no restricted/unrestricted split.
        self.restriction = restriction
        #: ``{"mapping": fn, "coarse": RuleSet-builder, "depth": int}`` for
        #: the cross-system simulation check; None for the chain's root.
        self.simulation = dict(simulation) if simulation else None


def targets() -> List[LintTarget]:
    """The six systems of the refinement chain, lint-configured."""
    return [
        LintTarget(
            "S",
            rules=lambda: system_s.make_rules(restricted=True),
            initial=lambda: system_s.initial_state(2),
            bounded=lambda: bound_data(system_s.make_rules(restricted=True), 2),
            restriction=lambda: system_s.make_rules(restricted=False),
        ),
        LintTarget(
            "S1",
            rules=lambda: system_s1.make_rules(restricted=True),
            initial=lambda: system_s1.initial_state(2),
            bounded=lambda: bound_data(system_s1.make_rules(restricted=True), 2),
            restriction=lambda: system_s1.make_rules(restricted=False),
            simulation={
                "mapping": s1_to_s,
                "coarse": lambda: system_s.make_rules(restricted=False),
                "depth": 1,
            },
        ),
        LintTarget(
            "Token",
            rules=lambda: system_token.make_rules(2, ring=True),
            initial=lambda: system_token.initial_state(2),
            bounded=lambda: bound_data(system_token.make_rules(2, ring=True), 2),
            restriction=lambda: system_token.make_rules(2, ring=False),
            simulation={
                "mapping": token_to_s1,
                "coarse": lambda: system_s1.make_rules(restricted=False),
                "depth": 2,
            },
        ),
        LintTarget(
            "MP",
            rules=lambda: system_message_passing.make_rules(2, ring=True),
            initial=lambda: system_message_passing.initial_state(2),
            bounded=lambda: bound_data(
                system_message_passing.make_rules(2, ring=True), 1),
            restriction=lambda: system_message_passing.make_rules(2, ring=False),
            simulation={
                "mapping": mp_to_s1,
                "coarse": lambda: system_s1.make_rules(restricted=False),
                "depth": 2,
            },
        ),
        LintTarget(
            "Search",
            rules=lambda: system_search.make_rules(3, restricted=True),
            initial=lambda: system_search.initial_state(3),
            bounded=lambda: bound_requests(
                bound_data(system_search.make_rules(3, restricted=True),
                           1, nodes=(1,)),
                "5"),
            restriction=lambda: system_search.make_rules(3, restricted=False),
            simulation={
                "mapping": search_to_s1,
                "coarse": lambda: system_s1.make_rules(restricted=False),
                "depth": 2,
            },
        ),
        LintTarget(
            # n = 5 so forwarding (rule 6) is live: the initial span n//2
            # must survive one halving, which needs n >= 4.
            "BinarySearch",
            rules=lambda: system_binary_search.make_rules(5, restricted=True),
            initial=lambda: system_binary_search.initial_state(5),
            bounded=lambda: bound_visits(
                bound_requests(
                    bound_data(
                        system_binary_search.make_rules(5, restricted=True),
                        1, nodes=(2,)),
                    "5"),
                5, "4"),
            expected_idle={
                "6s": "under the span scheme a gimme's target offsets are "
                      "n/2 ± n/4 ± …, never 0 mod n, so a node cannot "
                      "receive its own request (x = z is unreachable)",
            },
            restriction=lambda: system_binary_search.make_rules(
                5, restricted=False),
            simulation={
                "mapping": binary_search_to_s1,
                "coarse": lambda: system_s1.make_rules(restricted=False),
                "depth": 2,
            },
        ),
    ]


def _filter_expected_idle(
    findings: List[LintFinding],
    expected: Dict[str, str],
    report: LintReport,
    system: str,
) -> List[LintFinding]:
    kept = []
    for finding in findings:
        if finding.code == "never-enabled" and finding.rule in expected:
            report.record_pass(
                "expected-idle", system,
                rule=finding.rule, justification=expected[finding.rule])
            continue
        kept.append(finding)
    return kept


def _run_independence(
    report: LintReport,
    system: str,
    rules: RuleSet,
    states: List[Term],
) -> None:
    """Independence-analysis pass: build the rule-pair independence
    relation, flag rules whose opaque callables make the static footprint
    an under-approximation (INFO — the verifier discharges the ambiguity
    dynamically via diamond validation), and record the relation summary.
    """
    from repro.errors import VerifyError
    from repro.lint.findings import Severity as _Sev
    from repro.verify.independence import IndependenceRelation

    try:
        relation = IndependenceRelation(rules, probe_states=states[:8])
    except VerifyError as exc:
        report.add(LintFinding(
            "footprint-extraction-failed", _Sev.ERROR, system, None,
            str(exc)))
        return
    for rule_name, reasons in relation.ambiguous_rules().items():
        probed = sorted(relation.callable_reads.get(rule_name, ()))
        report.add(LintFinding(
            "ambiguous-footprint", _Sev.INFO, system, rule_name,
            f"opaque {', '.join(reasons)} may read components beyond the "
            f"matched patterns; independence claims involving this rule "
            f"are discharged by diamond validation, not trusted statically",
            details={"reasons": list(reasons),
                     "probed_component_reads": probed}))
    summary = relation.summary()
    report.record_pass(
        "independence", system,
        pairs=summary["pairs"],
        independent=summary["independent"],
        conditional=summary["conditional"],
        ambiguous_rules=summary["ambiguous_rules"])


def run_static(
    report: LintReport,
    max_states: int = 300,
    only: Optional[List[str]] = None,
) -> None:
    """Rule lint + restriction differential + simulation check, per target."""
    for target in targets():
        if only and target.name not in only:
            continue
        states = sample_states(
            target.bounded(), target.initial(), max_states=max_states)
        rules = target.rules()
        findings = lint_rules(target.name, rules, states)
        findings = _filter_expected_idle(
            findings, target.expected_idle, report, target.name)
        report.extend(findings)
        report.record_pass(
            "rule-lint", target.name,
            rules=len(list(rules)), sampled_states=len(states),
            overlapping_pairs=len(overlap_pairs(rules)))

        _run_independence(report, target.name, rules, states)

        if target.restriction is not None:
            coarse = target.restriction()
            mapping = target.simulation["mapping"] if target.simulation else None
            rest_findings, classification = check_restriction(
                target.name, list(rules), coarse, states, mapping=mapping)
            report.extend(rest_findings)
            report.record_pass(
                "restriction", target.name,
                classification=classification)

        if target.simulation is not None:
            sim = target.simulation
            fine = Rewriter(target.bounded(), RuleContext())
            coarse_rw = Rewriter(sim["coarse"](), RuleContext())
            # The simulation walk is quadratic in sample size; a modest
            # prefix of the BFS order covers every rule.
            sim_states = states[: max(40, max_states // 4)]
            sim_findings, classification = check_simulation(
                target.name, fine, sim_states, sim["mapping"], coarse_rw,
                max_depth=sim["depth"])
            report.extend(sim_findings)
            report.record_pass(
                "simulation", target.name,
                sampled_states=len(sim_states),
                classification=classification)


def run_dynamic(
    report: LintReport,
    protocols=DYNAMIC_PROTOCOLS,
    n: int = 5,
    rounds: int = 3,
) -> None:
    """Sanitized short simulation of every executable protocol core."""
    from repro.core.cluster import Cluster
    from repro.lint.findings import LintViolation
    from repro.workload.generators import FixedRateWorkload

    for protocol in protocols:
        cluster = Cluster.build(protocol, n=n, seed=7, sanitize=True)
        cluster.add_workload(FixedRateWorkload(mean_interval=8.0))
        try:
            cluster.run(rounds=rounds, max_events=50_000)
        except LintViolation as violation:
            report.add(LintFinding(
                "sanitizer-violation", Severity.ERROR, protocol,
                violation.rule, str(violation),
                violation.to_dict()))
            continue
        report.record_pass(
            "sanitized-sim", protocol,
            events_checked=cluster.sanitizer.checked if cluster.sanitizer else 0,
            rounds=cluster.rounds,
            grants=cluster.responsiveness.grants())


def run_all(
    max_states: int = 300,
    include_dynamic: bool = True,
    only: Optional[List[str]] = None,
) -> LintReport:
    """The full analyzer: every static pass, then the dynamic pass."""
    report = LintReport()
    run_static(report, max_states=max_states, only=only)
    if include_dynamic and not only:
        run_dynamic(report)
    return report
