"""Static lint of TRS rule sets.

Checks, per rule set (codes are stable identifiers for the JSON report):

- ``duplicate-rule-name`` (error) — two rules share a name (RuleSet
  construction enforces this; the linter re-checks plain sequences).
- ``unbound-rhs-variable`` (error) — applying the rule leaves an RHS
  variable unbound or produces a non-ground state: the where-clause or
  choice point fails to deliver what the RHS needs.  The static part of
  this check lives in the :class:`~repro.trs.rules.Rule` constructor (no
  where/choices at all); the linter closes the remaining hole — a
  where-clause that *exists* but doesn't bind — by probing every rule
  instantiation over a sample of reachable states.
- ``shadowed-rule`` (error) — an earlier rule is *unconditional* (no
  guard, no where-clause, no choice point: it fires on every match and
  never vetoes) and its LHS subsumes a later rule's LHS.  Under the
  deterministic first-applicable strategy the later rule can never fire.
- ``unused-lhs-binding`` (warning) — a variable bound by the LHS is never
  substituted into the RHS nor read by the guard/where/choices (observed
  via instrumented bindings during probing).  Dead binders are harmless
  but usually indicate a mis-written pattern; bind with ``Wildcard``
  instead.
- ``never-enabled`` (warning) — the rule produced zero instantiations
  across the entire state sample: its guard is unsatisfiable under the
  documented exploration bounds, or its LHS is unreachable.

Probing is *sampled static analysis*: guards, where-clauses, and choice
points are opaque Python callables, so where symbolic reasoning is
infeasible the linter runs them over bounded-reachable states (which are
genuine states of the unbounded system — the bounds are guard narrowings).
"""

from __future__ import annotations

from itertools import islice
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.errors import RuleError
from repro.lint.findings import LintFinding, Severity
from repro.trs.matching import match
from repro.trs.rules import Rule, RuleContext, RuleSet
from repro.trs.terms import Term

__all__ = ["lint_rules", "sample_states"]

#: Cap on the number of bindings probed per (rule, state) and on the
#: number of choice expansions consumed per binding — lint cost control.
MAX_PROBES_PER_STATE = 16
MAX_CHOICES = 64


class _RecordingBinding(dict):
    """A binding dict that records which keys a callable reads.

    Bulk reads (iteration, ``values``, ``items``) count as reading every
    key — e.g. ``next_nonce`` scans all bound values, which legitimately
    uses every binder.
    """

    def __init__(self, data: Dict[str, Term], accessed: Set[str]) -> None:
        super().__init__(data)
        self._accessed = accessed

    def __getitem__(self, key):
        self._accessed.add(key)
        return super().__getitem__(key)

    def get(self, key, default=None):
        self._accessed.add(key)
        return super().get(key, default)

    def _touch_all(self):
        self._accessed.update(super().keys())

    def __iter__(self):
        self._touch_all()
        return super().__iter__()

    def values(self):
        self._touch_all()
        return super().values()

    def items(self):
        self._touch_all()
        return super().items()

    def copy(self):
        return _RecordingBinding(dict(self), self._accessed)


def sample_states(
    ruleset: RuleSet,
    initial: Term,
    max_states: int = 2_000,
    ctx: Optional[RuleContext] = None,
) -> List[Term]:
    """Breadth-first sample of states reachable from ``initial``.

    Pass a *bounded* rule set (see :mod:`repro.specs.modelcheck`) so the
    sample terminates; its states are genuine states of the full system.
    """
    from repro.trs.engine import Rewriter

    rewriter = Rewriter(ruleset, ctx or RuleContext())
    seen = {initial}
    order = [initial]
    frontier = [initial]
    cursor = 0  # list + cursor: pop(0) is O(n) per dequeue
    while cursor < len(frontier) and len(seen) < max_states:
        state = frontier[cursor]
        cursor += 1
        for _, succ in rewriter.successors(state):
            if succ not in seen:
                seen.add(succ)
                order.append(succ)
                frontier.append(succ)
                if len(seen) >= max_states:
                    break
    return order


def lint_rules(
    system: str,
    rules: Union[RuleSet, Sequence[Rule]],
    states: Iterable[Term] = (),
) -> List[LintFinding]:
    """Run every static check on ``rules``; returns the findings.

    ``states`` feeds the sampled probes (unbound-RHS, unused-binding,
    never-enabled); without states only the purely structural checks run.
    """
    rule_list = list(rules)
    findings: List[LintFinding] = []
    findings.extend(_check_duplicate_names(system, rule_list))
    findings.extend(_check_shadowing(system, rule_list))
    findings.extend(_probe(system, rule_list, list(states)))
    return findings


# -- structural checks ------------------------------------------------------


def _check_duplicate_names(system: str, rules: List[Rule]) -> List[LintFinding]:
    seen: Dict[str, int] = {}
    findings = []
    for idx, rule in enumerate(rules):
        if rule.name in seen:
            findings.append(LintFinding(
                "duplicate-rule-name", Severity.ERROR, system, rule.name,
                f"rule name {rule.name!r} already used at position "
                f"{seen[rule.name]}",
                {"first_position": seen[rule.name], "position": idx},
            ))
        else:
            seen[rule.name] = idx
    return findings


def _check_shadowing(system: str, rules: List[Rule]) -> List[LintFinding]:
    findings = []
    for i, earlier in enumerate(rules):
        if not earlier.is_unconditional:
            continue
        for later in rules[i + 1 :]:
            if earlier.subsumes(later):
                findings.append(LintFinding(
                    "shadowed-rule", Severity.ERROR, system, later.name,
                    f"rule {later.name!r} is shadowed by the earlier "
                    f"unconditional rule {earlier.name!r}: its LHS is "
                    "subsumed, so under the first-applicable strategy it "
                    "can never fire",
                    {"shadowed_by": earlier.name},
                ))
    return findings


def overlap_pairs(rules: Sequence[Rule]) -> List[tuple]:
    """All unordered pairs of rules whose LHS patterns can both match some
    state (reported as pass statistics, not findings — overlap is the norm
    in these systems, where guards discriminate)."""
    rule_list = list(rules)
    pairs = []
    for i, a in enumerate(rule_list):
        for b in rule_list[i + 1 :]:
            if a.overlaps(b):
                pairs.append((a.name, b.name))
    return pairs


# -- sampled probes ---------------------------------------------------------


def _probe(
    system: str, rules: List[Rule], states: List[Term]
) -> List[LintFinding]:
    if not states:
        return []
    findings: List[LintFinding] = []
    enabled_count: Dict[str, int] = {r.name: 0 for r in rules}
    accessed: Dict[str, Set[str]] = {r.name: set() for r in rules}
    matched: Dict[str, bool] = {r.name: False for r in rules}
    apply_errors: Dict[str, LintFinding] = {}

    for state in states:
        for rule in rules:
            if rule.name in apply_errors:
                continue
            probes = 0
            for binding in match(rule.lhs, state):
                if probes >= MAX_PROBES_PER_STATE:
                    break
                probes += 1
                matched[rule.name] = True
                error = _probe_binding(
                    system, rule, state, binding,
                    accessed[rule.name], enabled_count,
                )
                if error is not None:
                    apply_errors[rule.name] = error
                    break

    findings.extend(apply_errors.values())
    for rule in rules:
        if enabled_count[rule.name] == 0 and rule.name not in apply_errors:
            reason = (
                "guard/choices never admitted an instantiation"
                if matched[rule.name]
                else "LHS never matched"
            )
            findings.append(LintFinding(
                "never-enabled", Severity.WARNING, system, rule.name,
                f"rule {rule.name!r} was never enabled across "
                f"{len(states)} sampled states ({reason}): its guard may "
                "be statically unsatisfiable under the documented bounds",
                {"sampled_states": len(states)},
            ))
    findings.extend(_unused_findings(system, rules, enabled_count, accessed))
    return findings


def _probe_binding(
    system: str,
    rule: Rule,
    state: Term,
    binding: Dict[str, Term],
    accessed: Set[str],
    enabled_count: Dict[str, int],
) -> Optional[LintFinding]:
    """Expand choices, evaluate the guard, and trial-apply one match.

    Returns an ``unbound-rhs-variable`` / ``rule-apply-error`` finding on
    failure, None otherwise.  All callables run against instrumented
    bindings so reads are recorded, and with throwaway contexts so probing
    is effect-free.
    """
    ctx = RuleContext()
    if rule.choices is None:
        expansions = [dict(binding)]
    else:
        expansions = []
        recorded = _RecordingBinding(binding, accessed)
        for extra in islice(rule.choices(recorded, ctx), MAX_CHOICES):
            merged = dict(binding)
            merged.update(extra)
            expansions.append(merged)
    for expanded in expansions:
        if rule.guard is not None:
            if not rule.guard(_RecordingBinding(expanded, accessed), ctx):
                continue
        enabled_count[rule.name] += 1
        if rule.where is not None:
            # Record the where-clause's reads on a shadow run...
            rule.where(_RecordingBinding(expanded, accessed), RuleContext())
        try:
            # ...then apply for real to validate groundness/binding.
            rule.apply(state, expanded, RuleContext())
        except RuleError as err:
            code = (
                "unbound-rhs-variable"
                if "unbound" in str(err) or "non-ground" in str(err)
                else "rule-apply-error"
            )
            return LintFinding(
                code, Severity.ERROR, system, rule.name,
                str(err),
                {"binding": {k: repr(v) for k, v in sorted(expanded.items())},
                 "state": repr(state)},
            )
    return None


def _unused_findings(
    system: str,
    rules: List[Rule],
    enabled_count: Dict[str, int],
    accessed: Dict[str, Set[str]],
) -> List[LintFinding]:
    findings = []
    for rule in rules:
        if enabled_count[rule.name] == 0:
            continue  # never ran its callables; nothing to conclude
        unused = sorted(
            rule.lhs_variables - rule.rhs_variables - accessed[rule.name]
        )
        if unused:
            findings.append(LintFinding(
                "unused-lhs-binding", Severity.WARNING, system, rule.name,
                f"LHS binds {unused} but neither the RHS nor the "
                "guard/where/choices ever use them; bind with Wildcard "
                "instead",
                {"unused": unused},
            ))
    return findings
