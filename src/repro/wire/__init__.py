"""Real-socket wire layer: TCP transport, lock service, load generation.

``repro.wire`` takes the asyncio runtime onto actual sockets.  The
:class:`WireTransport` implements the in-memory
:class:`~repro.aio.transport.AioTransport` contract over loopback TCP
(length-prefixed versioned frames, one multiplexed connection per peer,
bounded write queues, reconnect with jittered backoff), so ARQ
reliability, phi-accrual supervision, and the invariant oracle attach
without modification.  On top of it, :class:`LockServiceServer` exposes
acquire/release/status as a network API and :class:`LockClient` /
:class:`LoadGenerator` drive it with open/closed-loop workloads.
"""

from repro.wire.client import LoadGenerator, LoadReport, LockClient
from repro.wire.codec import (
    MAX_FRAME,
    WIRE_VERSION,
    decode_body,
    encode_frame,
    read_frame,
    register_message,
    registered_messages,
)
from repro.wire.server import LockServiceServer
from repro.wire.service import (
    AcquireReply,
    AcquireRequest,
    ReleaseReply,
    ReleaseRequest,
    StatusReply,
    StatusRequest,
)
from repro.wire.smoke import run_wire_smoke
from repro.wire.transport import WireConfig, WireTransport

__all__ = [
    "MAX_FRAME",
    "WIRE_VERSION",
    "decode_body",
    "encode_frame",
    "read_frame",
    "register_message",
    "registered_messages",
    "WireConfig",
    "WireTransport",
    "LockServiceServer",
    "LockClient",
    "LoadGenerator",
    "LoadReport",
    "AcquireRequest",
    "AcquireReply",
    "ReleaseRequest",
    "ReleaseReply",
    "StatusRequest",
    "StatusReply",
    "run_wire_smoke",
]
