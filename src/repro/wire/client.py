"""Lock-service client and load generator.

:class:`LockClient` is one connection to a :class:`LockServiceServer`:
requests are assigned monotonically increasing ``req_id``s, a background
reader task correlates replies back to their awaiting futures, so one
connection can pipeline any number of concurrent requests.

:class:`LoadGenerator` drives a service the way the simulation workloads
drive a cluster:

- **closed loop** — ``clients`` concurrent sessions, each cycling
  acquire -> hold (``think_time``) -> release until the shared op budget
  is spent: the wall-clock form of
  :class:`~repro.workload.generators.SaturatedWorkload`;
- **open loop** — Poisson arrivals precomputed by
  :func:`~repro.workload.generators.open_loop_arrivals` (the wall-clock
  form of :class:`~repro.workload.generators.FixedRateWorkload`), each
  arrival an independent acquire/release pair fired at its scheduled
  offset regardless of how earlier ones are faring.

All latency accounting lands in a log-bucketed
:class:`~repro.metrics.keyed.LatencyHistogram` (p50/p99 without sample
lists) and is summarized in a :class:`LoadReport`.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigError, WireError
from repro.metrics.keyed import LatencyHistogram
from repro.wire.codec import MAX_FRAME, encode_frame, read_frame
from repro.wire.service import (
    AcquireReply,
    AcquireRequest,
    ReleaseReply,
    ReleaseRequest,
    StatusReply,
    StatusRequest,
)
from repro.workload.generators import open_loop_arrivals

__all__ = ["LockClient", "LoadReport", "LoadGenerator"]


class LockClient:
    """One pipelined connection to the lock service."""

    def __init__(self, host: str, port: int,
                 max_frame: int = MAX_FRAME) -> None:
        self.host = host
        self.port = port
        self.max_frame = max_frame
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_req = 0

    async def connect(self) -> "LockClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_replies(), name=f"lock-client-{self.port}")
        return self

    async def aclose(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        self._fail_pending(WireError("client closed"))

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    async def _read_replies(self) -> None:
        assert self._reader is not None
        try:
            while True:
                _, _, msg = await read_frame(self._reader, self.max_frame)
                req_id = getattr(msg, "req_id", None)
                if not isinstance(req_id, int):
                    continue  # not a service reply; ignore
                future = self._pending.pop(req_id, None)
                if future is not None and not future.done():
                    future.set_result(msg)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            self._fail_pending(WireError("server closed the connection"))
        except Exception as exc:  # codec violation: the stream is dead
            self._fail_pending(exc)

    async def _call(self, msg: object, req_id: int) -> object:
        if self._writer is None:
            raise WireError("client is not connected")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[req_id] = future
        self._writer.write(encode_frame(-1, -1, msg))
        await self._writer.drain()
        return await future

    def _req_id(self) -> int:
        self._next_req += 1
        return self._next_req

    async def acquire(self, node: int = -1,
                      timeout: float = 0.0) -> AcquireReply:
        """Acquire the lock (on ``node``, or server-chosen when -1)."""
        req_id = self._req_id()
        reply = await self._call(
            AcquireRequest(req_id=req_id, node=node, timeout=timeout), req_id)
        if not isinstance(reply, AcquireReply):
            raise WireError(f"unexpected reply {type(reply).__name__}")
        return reply

    async def release(self, node: int) -> ReleaseReply:
        """Release a held grant on ``node``."""
        req_id = self._req_id()
        reply = await self._call(
            ReleaseRequest(req_id=req_id, node=node), req_id)
        if not isinstance(reply, ReleaseReply):
            raise WireError(f"unexpected reply {type(reply).__name__}")
        return reply

    async def status(self) -> StatusReply:
        """Fetch the service's health snapshot."""
        req_id = self._req_id()
        reply = await self._call(StatusRequest(req_id=req_id), req_id)
        if not isinstance(reply, StatusReply):
            raise WireError(f"unexpected reply {type(reply).__name__}")
        return reply


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    mode: str
    ops: int
    grants: int = 0
    failures: int = 0
    errors: int = 0
    duration: float = 0.0
    wait_p50: float = 0.0
    wait_p99: float = 0.0
    wait_mean: float = 0.0
    wait_max: float = 0.0
    error_samples: List[str] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Granted operations per second."""
        return self.grants / self.duration if self.duration > 0 else 0.0

    def as_dict(self) -> Dict:
        return {
            "mode": self.mode,
            "ops": self.ops,
            "grants": self.grants,
            "failures": self.failures,
            "errors": self.errors,
            "duration_s": round(self.duration, 6),
            "throughput_ops_s": round(self.throughput, 3),
            "wait_p50_ms": round(self.wait_p50 * 1e3, 3),
            "wait_p99_ms": round(self.wait_p99 * 1e3, 3),
            "wait_mean_ms": round(self.wait_mean * 1e3, 3),
            "wait_max_ms": round(self.wait_max * 1e3, 3),
            "error_samples": list(self.error_samples[:5]),
        }


class LoadGenerator:
    """Open/closed-loop arrival processes against a live lock service."""

    def __init__(self, host: str, port: int, seed: int = 0,
                 acquire_timeout: float = 30.0) -> None:
        if acquire_timeout <= 0:
            raise ConfigError(
                f"acquire_timeout must be positive, got {acquire_timeout}")
        self.host = host
        self.port = port
        self.seed = seed
        self.acquire_timeout = acquire_timeout
        self.histogram = LatencyHistogram()

    def _observe(self, report: LoadReport, reply: AcquireReply) -> None:
        if reply.ok:
            report.grants += 1
            self.histogram.add(reply.waited)
        else:
            report.failures += 1
            if reply.error and len(report.error_samples) < 5:
                report.error_samples.append(reply.error)

    def _finish(self, report: LoadReport, started: float) -> LoadReport:
        report.duration = asyncio.get_running_loop().time() - started
        hist = self.histogram
        report.wait_p50 = hist.percentile(50.0)
        report.wait_p99 = hist.percentile(99.0)
        report.wait_mean = hist.mean
        report.wait_max = hist.max
        return report

    # -- closed loop -------------------------------------------------------------

    async def run_closed_loop(self, clients: int, ops: int,
                              think_time: float = 0.0,
                              hold_time: float = 0.0) -> LoadReport:
        """``clients`` sessions, each acquire -> hold -> release, sharing
        an op budget of ``ops`` total acquire attempts."""
        if clients < 1:
            raise ConfigError(f"clients must be >= 1, got {clients}")
        if ops < 1:
            raise ConfigError(f"ops must be >= 1, got {ops}")
        report = LoadReport(mode="closed", ops=ops)
        budget = iter(range(ops))
        loop = asyncio.get_running_loop()
        started = loop.time()

        async def _client(index: int) -> None:
            client = LockClient(self.host, self.port)
            await client.connect()
            try:
                for _ in budget:
                    try:
                        reply = await client.acquire(
                            timeout=self.acquire_timeout)
                        self._observe(report, reply)
                        if not reply.ok:
                            continue
                        if hold_time > 0:
                            await asyncio.sleep(hold_time)
                        await client.release(reply.node)
                        if think_time > 0:
                            await asyncio.sleep(think_time)
                    except WireError as exc:
                        report.errors += 1
                        if len(report.error_samples) < 5:
                            report.error_samples.append(str(exc))
                        return  # the connection is gone; retire the client
            finally:
                await client.aclose()

        await asyncio.gather(*(
            _client(index) for index in range(min(clients, ops))))
        return self._finish(report, started)

    # -- open loop ---------------------------------------------------------------

    async def run_open_loop(self, mean_interval: float, ops: int,
                            n: int, hold_time: float = 0.0) -> LoadReport:
        """Poisson arrivals at 1/``mean_interval`` ops/s across ``n``
        service nodes; each arrival is an independent acquire/release.
        ``n=0`` leaves node choice to the server for every arrival."""
        if n < 0:
            raise ConfigError(f"n must be >= 0, got {n}")
        report = LoadReport(mode="open", ops=ops)
        arrivals = open_loop_arrivals(
            mean_interval, ops, max(n, 1), random.Random(self.seed))
        if n == 0:
            arrivals = [(at, -1) for at, _ in arrivals]
        client = await LockClient(self.host, self.port).connect()
        loop = asyncio.get_running_loop()
        started = loop.time()

        async def _arrival(at: float, node: int) -> None:
            await asyncio.sleep(max(0.0, at - (loop.time() - started)))
            try:
                reply = await client.acquire(
                    node=node, timeout=self.acquire_timeout)
                self._observe(report, reply)
                if reply.ok:
                    if hold_time > 0:
                        await asyncio.sleep(hold_time)
                    await client.release(reply.node)
            except WireError as exc:
                report.errors += 1
                if len(report.error_samples) < 5:
                    report.error_samples.append(str(exc))

        try:
            await asyncio.gather(*(
                _arrival(at, node) for at, node in arrivals))
        finally:
            await client.aclose()
        return self._finish(report, started)
