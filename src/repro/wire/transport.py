"""Real asyncio TCP transport behind the :class:`AioTransport` interface.

:class:`WireTransport` keeps the exact contract every runtime layer is
built against — ``attach``/``detach``, ``send``, crash/partition fault
injection, the ``on_send``/``on_deliver``/``on_drop`` hook surface — but
moves the data path onto real loopback sockets:

- every attached node gets its own listening TCP server (its "address" is
  a real ``(host, port)`` endpoint, allocated by the kernel);
- outbound traffic to one destination rides **one multiplexed TCP
  connection** shared by every local sender (frames carry their logical
  ``src``/``dst``, so one socket carries all lanes to that peer);
- each link has a **bounded send queue**; the writer coroutine applies
  real TCP backpressure via ``drain()`` and a full queue refuses the send
  (``on_drop`` reason ``"backpressure"``) instead of buffering without
  bound;
- a broken or unreachable connection is redialed with **exponential
  backoff plus seeded jitter**; frames enqueued meanwhile wait, frames
  half-written into the dead socket are genuinely lost on the wire.

Fault injection is inherited from :class:`AioTransport` and applied at
the socket boundary: a lost or partition-dropped message never reaches a
socket, a parked expensive message is written the moment the link heals,
and a crashed destination discards frames after they cross the wire —
the same observable semantics the in-memory transport gives the ARQ,
supervision, and oracle layers, which therefore attach unchanged.

The artificial ``delay`` is still honoured (it is what scales protocol
timers; see ``AioNodeDriver._timer_scale``): a frame is handed to its
link ``delay`` seconds after ``send``, then crosses the real socket.
With ``delay=0`` the wire's own latency is all there is — but timers
then run at microsecond scale, so real deployments keep a small
artificial delay as the protocol's time base.
"""

from __future__ import annotations

import asyncio
import random
from typing import Dict, Optional, Tuple

from repro.aio.transport import AioTransport
from repro.errors import CodecError, FrameError, WireError
from repro.metrics.counters import WireCounters
from repro.wire.codec import MAX_FRAME, encode_frame, read_frame

__all__ = ["WireConfig", "WireTransport"]


class WireConfig:
    """Socket-layer knobs for :class:`WireTransport`."""

    __slots__ = ("host", "max_queue", "max_frame", "reconnect_base",
                 "reconnect_max", "jitter")

    def __init__(self, host: str = "127.0.0.1", max_queue: int = 1024,
                 max_frame: int = MAX_FRAME, reconnect_base: float = 0.02,
                 reconnect_max: float = 1.0, jitter: float = 0.5) -> None:
        if max_queue < 1:
            raise WireError(f"max_queue must be >= 1, got {max_queue}")
        if reconnect_base <= 0 or reconnect_max < reconnect_base:
            raise WireError(
                f"need 0 < reconnect_base <= reconnect_max, got "
                f"{reconnect_base}/{reconnect_max}")
        self.host = host
        self.max_queue = max_queue
        self.max_frame = max_frame
        self.reconnect_base = reconnect_base
        self.reconnect_max = reconnect_max
        self.jitter = jitter


class _PeerLink:
    """One outbound multiplexed connection: bounded queue + writer task."""

    __slots__ = ("transport", "dst", "queue", "task", "writer")

    def __init__(self, transport: "WireTransport", dst: int) -> None:
        self.transport = transport
        self.dst = dst
        self.queue: asyncio.Queue = asyncio.Queue(
            maxsize=transport.wire_config.max_queue)
        self.writer: Optional[asyncio.StreamWriter] = None
        self.task = asyncio.get_running_loop().create_task(
            self._run(), name=f"wire-link-{dst}")

    def offer(self, frame: bytes, src: int, msg: object) -> bool:
        """Enqueue one encoded frame; False when the bounded queue is full."""
        try:
            self.queue.put_nowait((frame, src, msg))
        except asyncio.QueueFull:
            return False
        return True

    async def _dial(self) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        """Connect to the destination's server, backing off with jitter
        until it is reachable (its port may not even be bound yet)."""
        transport = self.transport
        cfg = transport.wire_config
        backoff = cfg.reconnect_base
        while True:
            port = transport.port_of(self.dst)
            if port is not None:
                try:
                    pair = await asyncio.open_connection(cfg.host, port)
                    transport.counters.connects += 1
                    return pair
                except OSError:
                    transport.counters.connect_failures += 1
            await asyncio.sleep(
                backoff * (1.0 + cfg.jitter * transport.rng.random()))
            backoff = min(backoff * 2.0, cfg.reconnect_max)

    async def _run(self) -> None:
        counters = self.transport.counters
        while True:
            frame, src, msg = await self.queue.get()
            if self.writer is None:
                _, self.writer = await self._dial()
            try:
                self.writer.write(frame)
                await self.writer.drain()
                counters.frames_sent += 1
                counters.bytes_sent += len(frame)
            except (ConnectionError, OSError):
                # The frame (and anything the kernel still buffered) is
                # lost on the wire; the next queued frame redials.
                counters.resets += 1
                self._close_writer()

    def _close_writer(self) -> None:
        if self.writer is not None:
            self.writer.close()
            self.writer = None

    def reset(self) -> None:
        """Forcibly sever the live connection (fault injection)."""
        self._close_writer()

    async def aclose(self) -> None:
        self.task.cancel()
        try:
            await self.task
        except asyncio.CancelledError:
            pass
        self._close_writer()


class WireTransport(AioTransport):
    """The :class:`AioTransport` contract over real TCP loopback sockets."""

    def __init__(
        self,
        delay: float = 0.001,
        loss_rate: float = 0.0,
        dup_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        wire_config: Optional[WireConfig] = None,
        counters: Optional[WireCounters] = None,
    ) -> None:
        super().__init__(delay=delay, loss_rate=loss_rate,
                         dup_rate=dup_rate, rng=rng)
        self.wire_config = wire_config if wire_config is not None else WireConfig()
        self.counters = counters if counters is not None else WireCounters()
        #: Last framing/codec violation seen on an inbound connection
        #: (the connection was closed; this is the post-mortem).
        self.last_wire_error: Optional[WireError] = None
        self._servers: Dict[int, "asyncio.Server"] = {}
        self._ports: Dict[int, int] = {}
        self._links: Dict[int, _PeerLink] = {}
        self._binding: set = set()
        self._inbound: set = set()
        self._running = False

    # -- lifecycle ---------------------------------------------------------------

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`aclose`."""
        return self._running

    async def start(self) -> None:
        """Bind one listening server per attached node (idempotent)."""
        if self._running:
            return
        self._running = True
        for node_id in list(self._inboxes):
            await self._bind(node_id)

    async def aclose(self) -> None:
        """Close every link and server; the transport cannot be restarted."""
        self._running = False
        for link in list(self._links.values()):
            await link.aclose()
        self._links.clear()
        for server in self._servers.values():
            server.close()
            await server.wait_closed()
        self._servers.clear()
        self._ports.clear()
        # Closing the inbound writers lets every _serve loop finish on its
        # own (reader hits EOF) instead of dying cancelled at loop
        # teardown, which asyncio's stream glue logs noisily.
        for writer in list(self._inbound):
            writer.close()
        await asyncio.sleep(0)

    def attach(self, node_id: int) -> asyncio.Queue:
        inbox = super().attach(node_id)
        if self._running and node_id not in self._servers:
            # Late joiner on a live transport: bind its server as a task.
            # Frames addressed to it meanwhile sit in link queues redialing.
            asyncio.get_running_loop().create_task(self._bind(node_id))
        return inbox

    async def _bind(self, node_id: int) -> None:
        if (node_id in self._servers or node_id in self._binding
                or not self._running):
            return
        self._binding.add(node_id)
        try:
            server = await asyncio.start_server(
                lambda r, w, _nid=node_id: self._serve(_nid, r, w),
                self.wire_config.host, 0)
        finally:
            self._binding.discard(node_id)
        if not self._running:
            server.close()
            return
        # A node keeps its server (and port) across detach/re-attach:
        # restarts do not move its address, so peers simply reconnect.
        self._servers[node_id] = server
        self._ports[node_id] = server.sockets[0].getsockname()[1]

    def port_of(self, node_id: int) -> Optional[int]:
        """The real TCP port ``node_id`` listens on (None before bind)."""
        return self._ports.get(node_id)

    def address_of(self, node_id: int) -> Optional[Tuple[str, int]]:
        """The real ``(host, port)`` endpoint of an attached node."""
        port = self._ports.get(node_id)
        if port is None:
            return None
        return (self.wire_config.host, port)

    # -- fault injection (socket layer) -------------------------------------------

    def reset_connections(self, dst: Optional[int] = None) -> None:
        """Sever live outbound TCP connections (to ``dst``, or all): the
        chaos-style "connection reset" fault.  Frames buffered in a dead
        socket are lost; the links redial with backoff on the next send."""
        for node, link in self._links.items():
            if dst is None or node == dst:
                link.reset()

    # -- data path -----------------------------------------------------------------

    def _schedule(self, src: int, dst: int, msg: object) -> None:
        # Fault injection already ran in the inherited send(); from here
        # the message is committed to the wire after the artificial delay.
        loop = asyncio.get_running_loop()
        if self.delay > 0:
            loop.call_later(self.delay, self._transmit, src, dst, msg)
        else:
            self._transmit(src, dst, msg)

    def _transmit(self, src: int, dst: int, msg: object) -> None:
        if not self._running:
            self._drop(src, dst, msg, "detached")
            return
        frame = encode_frame(src, dst, msg)
        link = self._links.get(dst)
        if link is None:
            link = self._links[dst] = _PeerLink(self, dst)
        if not link.offer(frame, src, msg):
            self.counters.backpressure_drops += 1
            self._drop(src, dst, msg, "backpressure")

    async def _serve(self, node_id: int, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        """One inbound connection: decode frames, hand them to the
        inherited delivery path (crash/detach checks, hooks, inbox)."""
        counters = self.counters

        def _count(nbytes: int) -> None:
            counters.bytes_received += nbytes

        self._inbound.add(writer)
        try:
            while True:
                src, dst, msg = await read_frame(
                    reader, self.wire_config.max_frame, on_bytes=_count)
                counters.frames_received += 1
                self._deliver(src, dst, msg)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass  # peer went away (cleanly or mid-frame): just close
        except asyncio.CancelledError:
            # Loop teardown cancelled us mid-read; finishing normally keeps
            # asyncio's stream connection-callback from logging the cancel.
            pass
        except (FrameError, CodecError) as exc:
            # A violating frame poisons the whole stream: close the
            # connection with the typed error recorded, never hang.
            counters.codec_errors += 1
            self.last_wire_error = exc
        finally:
            self._inbound.discard(writer)
            writer.close()
