"""End-to-end wire runs: the smoke/soak harness behind ``repro wire-smoke``.

One call stands up the entire real-socket stack in-process — a
:class:`~repro.wire.transport.WireTransport` (every node on its own TCP
listener), an :class:`~repro.aio.cluster.AioCluster` with the
fault-tolerant runtime (ARQ reliability, supervision, phi-accrual
detection) attached **unchanged**, the
:class:`~repro.aio.oracle.AioInvariantOracle` observing every logical
send, a :class:`~repro.wire.server.LockServiceServer` on its own port,
and a closed-loop :class:`~repro.wire.client.LoadGenerator` hammering it
over loopback TCP.  Optionally a chaos-style fault schedule (crash /
partition / heal / connection reset, all at the socket layer) runs
concurrently with the load.

The report is a JSON-able dict (schema ``repro-wire-smoke/v1``): ``ok``
demands every op granted, zero oracle violations, zero client errors,
and p99 acquire wait within budget.  CI runs a 3-node/2k-op smoke; the
soak tier runs 5 nodes and 10k+ ops.
"""

from __future__ import annotations

import asyncio
import json
import platform
import time
from typing import Any, Dict, List, Optional

from repro.aio.cluster import AioCluster
from repro.aio.oracle import AioInvariantOracle, CorruptionTolerantOracle
from repro.aio.reliability import ReliabilityConfig
from repro.aio.supervisor import ClusterSupervisor, RestartPolicy
from repro.core.config import ProtocolConfig
from repro.errors import ConfigError
from repro.wire.client import LoadGenerator
from repro.wire.server import LockServiceServer
from repro.wire.transport import WireTransport

__all__ = ["SCHEMA", "FAULT_OPS", "service_config", "run_wire_smoke"]

SCHEMA = "repro-wire-smoke/v1"

FAULT_OPS = ("crash", "partition", "heal", "heal_all", "reset", "corrupt")


def service_config(protocol: str) -> ProtocolConfig:
    """The protocol stack a wire service runs.  For ``fault_tolerant``
    (and the stabilizing core on top of it) this mirrors the chaos
    harness: rotation trap GC, quorum-gated regeneration, timers in
    message-delay units that the driver scales by the transport delay."""
    if protocol in ("fault_tolerant", "stabilizing"):
        config = ProtocolConfig(
            trap_gc="rotation",
            single_outstanding=True,
            retry_timeout=25.0,
            regen_timeout=30.0,
            census_window=8.0,
            loan_timeout=80.0,
            regen_quorum=True,
        )
        if protocol == "stabilizing":
            config.stabilize_watch = 50.0
        return config
    return ProtocolConfig()


def _validate_faults(faults: List[Dict], n: int,
                     protocol: str = "fault_tolerant") -> None:
    from repro.faults.corruption import CORRUPTION_KINDS

    for fault in faults:
        op = fault.get("op")
        if op not in FAULT_OPS:
            raise ConfigError(f"unknown wire fault op {fault!r}")
        if op == "crash" and not 0 <= fault.get("a", -1) < n:
            raise ConfigError(f"crash targets unknown node {fault!r}")
        if op == "corrupt":
            if protocol != "stabilizing":
                raise ConfigError(
                    "corrupt wire faults need protocol='stabilizing' "
                    f"(got {protocol!r})")
            if fault.get("what") not in CORRUPTION_KINDS:
                raise ConfigError(
                    f"unknown corruption kind in wire fault {fault!r}")
            if not 0 <= fault.get("a", -1) < n:
                raise ConfigError(
                    f"corrupt targets unknown node {fault!r}")


async def _run(
    n: int,
    ops: int,
    clients: int,
    protocol: str,
    seed: int,
    delay: float,
    loss_rate: float,
    think_time: float,
    hold_time: float,
    reliability: bool,
    supervise: bool,
    acquire_timeout: float,
    p99_budget: float,
    faults: List[Dict],
) -> Dict[str, Any]:
    import random

    corrupting = any(f["op"] == "corrupt" for f in faults)
    transport = WireTransport(
        delay=delay, loss_rate=loss_rate,
        rng=random.Random(seed ^ 0x5EED))
    cluster = AioCluster(
        protocol, n, seed=seed,
        config=service_config(protocol),
        transport=transport,
        reliability=ReliabilityConfig() if reliability else None,
        # Injected illegal states would (rightly) trip the at-rest
        # sanitizer; a corruption run's verdict is convergence instead.
        sanitize=False if corrupting else None,
    )
    oracle_cls = CorruptionTolerantOracle if corrupting else AioInvariantOracle
    oracle = oracle_cls(cluster, protocol=protocol)
    oracle.attach()
    supervisor: Optional[ClusterSupervisor] = None
    if supervise:
        supervisor = ClusterSupervisor(cluster, RestartPolicy(
            restart_delay=20.0 * max(delay, 1e-3),
            heartbeat_interval=5.0 * max(delay, 1e-3),
            phi_threshold=8.0,
        ))
    server = LockServiceServer(cluster)
    await server.start()
    if supervisor is not None:
        await supervisor.start()

    async def _apply_fault(fault: Dict) -> None:
        await asyncio.sleep(float(fault.get("t", 0.0)))
        op = fault["op"]
        if op == "crash":
            await cluster.crash_node(fault["a"])
        elif op == "partition":
            transport.split(fault["group_a"], fault["group_b"])
        elif op == "heal":
            transport.heal(fault["a"], fault["b"])
        elif op == "heal_all":
            transport.heal_all()
        elif op == "reset":
            transport.reset_connections(fault.get("a"))
        elif op == "corrupt":
            from repro.faults.corruption import corrupt_core

            corrupt_core(cluster.drivers[fault["a"]].core,
                         fault["what"], int(fault.get("arg", 0)), n=n)

    generator = LoadGenerator("127.0.0.1", server.port, seed=seed,
                              acquire_timeout=acquire_timeout)
    fault_tasks = [asyncio.get_running_loop().create_task(_apply_fault(f))
                   for f in faults]
    try:
        load = await generator.run_closed_loop(
            clients, ops, think_time=think_time, hold_time=hold_time)
    finally:
        for task in fault_tasks:
            task.cancel()
        # Let in-flight protocol traffic settle before tearing down, so
        # the oracle judges a quiescent network.
        await asyncio.sleep(20.0 * max(delay, 1e-3))
        if supervisor is not None:
            await supervisor.stop()
        await server.stop()

    violation: Optional[Dict[str, str]] = None
    if oracle.violation is not None:
        exc = oracle.violation
        violation = {"invariant": exc.invariant, "detail": exc.detail}

    converged: Optional[bool] = None
    if corrupting:
        # Convergence fold: at most one token at rest at teardown (the
        # census is blind to in-flight copies, so only > 1 is a breach);
        # liveness is already proven by every op having been granted.
        census = sum(
            1 for driver in cluster.drivers.values()
            if getattr(driver.core, "has_token", False)
            or getattr(driver.core, "lent_to", None) is not None)
        converged = census <= 1

    p99_ok = load.wait_p99 <= p99_budget
    ok = (violation is None and load.errors == 0 and load.failures == 0
          and load.grants == ops and p99_ok and converged is not False)
    report: Dict[str, Any] = {
        "schema": SCHEMA,
        "ok": ok,
        "protocol": protocol,
        "n": n,
        "ops": ops,
        "clients": clients,
        "seed": seed,
        "delay": delay,
        "loss_rate": loss_rate,
        "reliability": reliability,
        "supervised": supervise,
        "faults": list(faults),
        "load": load.as_dict(),
        "p99_budget_s": p99_budget,
        "p99_ok": p99_ok,
        "converged": converged,
        "oracle_violation": violation,
        "server": {
            "grants": server.grants,
            "releases": server.releases,
            "failures": server.failures,
        },
        "wire": transport.counters.as_dict(),
        "transport": {
            "sent": transport.sent_count,
            "delivered": transport.delivered_count,
            "dropped": transport.dropped_count,
        },
        "host": platform.node(),
        "unix_time": int(time.time()),
    }
    if cluster.reliability_counters is not None:
        report["arq"] = cluster.reliability_counters.as_dict()
    if supervisor is not None:
        report["restarts"] = sum(supervisor.restarts.values())
    return report


def run_wire_smoke(
    n: int = 3,
    ops: int = 2000,
    clients: int = 6,
    protocol: str = "fault_tolerant",
    seed: int = 0,
    delay: float = 0.001,
    loss_rate: float = 0.0,
    think_time: float = 0.0,
    hold_time: float = 0.0,
    reliability: bool = True,
    supervise: bool = True,
    acquire_timeout: float = 30.0,
    p99_budget: float = 2.0,
    faults: Optional[List[Dict]] = None,
) -> Dict[str, Any]:
    """Run the full real-socket stack once; returns the report dict.

    Real wall-clock asyncio (sockets cannot run on the virtual clock), so
    numbers vary run to run — the *assertions* (every op granted, zero
    oracle violations, p99 within budget) are what must hold."""
    if n < 2:
        raise ConfigError(f"wire smoke needs n >= 2, got {n}")
    if ops < 1:
        raise ConfigError(f"ops must be >= 1, got {ops}")
    fault_list = list(faults) if faults else []
    _validate_faults(fault_list, n, protocol)
    return asyncio.run(_run(
        n=n, ops=ops, clients=clients, protocol=protocol, seed=seed,
        delay=delay, loss_rate=loss_rate, think_time=think_time,
        hold_time=hold_time, reliability=reliability, supervise=supervise,
        acquire_timeout=acquire_timeout, p99_budget=p99_budget,
        faults=fault_list,
    ))


def save_report(report: Dict[str, Any], path: str) -> None:
    """Write a report as deterministic JSON (counterexample artifacts)."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
