"""Versioned length-prefixed frame codec for the real-socket transport.

Every message that crosses a TCP connection — protocol traffic between
nodes, ARQ frames, lock-service requests and replies — is one *frame*:

    +----------------+---------+------------------------------------+
    | length (4B !I) | version | UTF-8 JSON body                    |
    +----------------+---------+------------------------------------+

``length`` counts everything after the prefix (version byte included).
The body is ``{"s": src, "d": dst, "m": <message>}`` where a message is
``{"t": "<TypeName>", "f": {field: value, ...}}``.  Field values are the
JSON image of the dataclass fields; tuples are serialized as JSON arrays
and restored on decode (no message field is a ``list``, so the mapping is
unambiguous), and a field that is itself a registered message — the ARQ
:class:`~repro.aio.reliability.DataFrame` carrying a token payload — is
encoded recursively under a ``{"!": ...}`` wrapper.

Deliberately JSON, deliberately not pickle: the decoder can only ever
construct message classes that were explicitly registered, so a hostile
peer cannot instantiate arbitrary objects.

Failure taxonomy (all close the connection — a length-prefixed stream
has no reliable resynchronization point):

- :class:`~repro.errors.FrameError` — framing violation: a length prefix
  beyond ``max_frame``, a zero-length body, or an unsupported version;
- :class:`~repro.errors.CodecError` — body violation: malformed UTF-8 or
  JSON, a missing envelope key, an unregistered type tag, or field
  values the message class rejects;
- ``asyncio.IncompleteReadError`` — the peer closed mid-frame (surfaced
  by :func:`read_frame`; treated as a connection reset, not a protocol
  error).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import struct
from typing import Any, Callable, Dict, Optional, Tuple, Type

from repro.errors import CodecError, FrameError

__all__ = [
    "WIRE_VERSION",
    "MAX_FRAME",
    "register_message",
    "registered_messages",
    "encode_frame",
    "decode_body",
    "read_frame",
]

WIRE_VERSION = 1

#: Default ceiling on the post-prefix frame size.  Protocol messages are
#: tens to hundreds of bytes; anything near this bound is an attack or a
#: desynchronized stream.
MAX_FRAME = 1 << 20

_LEN = struct.Struct("!I")

_BY_NAME: Dict[str, Tuple[Type, Tuple[str, ...]]] = {}
_BY_CLASS: Dict[Type, Tuple[str, Tuple[str, ...]]] = {}


def register_message(cls: Type) -> Type:
    """Register a frozen dataclass for wire transport (idempotent).

    The class name is the wire tag, so renaming a message class is a wire
    protocol change.  Returns ``cls`` so it can be used as a decorator."""
    if not dataclasses.is_dataclass(cls):
        raise CodecError(f"{cls!r} is not a dataclass; cannot register")
    name = cls.__name__
    fields = tuple(f.name for f in dataclasses.fields(cls))
    known = _BY_NAME.get(name)
    if known is not None and known[0] is not cls:
        raise CodecError(f"message tag {name!r} already registered by {known[0]!r}")
    _BY_NAME[name] = (cls, fields)
    _BY_CLASS[cls] = (name, fields)
    return cls


def registered_messages() -> Dict[str, Type]:
    """Tag -> class view of the registry (diagnostics, tests)."""
    return {name: cls for name, (cls, _) in _BY_NAME.items()}


def _register_builtins() -> None:
    from repro.aio.reliability import AckFrame, DataFrame
    from repro.core import messages

    for name in messages.__all__:
        cls = getattr(messages, name)
        if dataclasses.is_dataclass(cls):
            register_message(cls)
    register_message(DataFrame)
    register_message(AckFrame)


def _encode_value(value: Any) -> Any:
    if type(value) in _BY_CLASS:
        return {"!": _encode_message(value)}
    if isinstance(value, tuple):
        return [_encode_value(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise CodecError(
        f"unencodable field value {value!r} ({type(value).__name__})")


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "!" not in value:
            raise CodecError(f"unexpected object field {value!r}")
        return _decode_message(value["!"])
    if isinstance(value, list):
        return tuple(_decode_value(item) for item in value)
    return value


def _encode_message(msg: object) -> Dict[str, Any]:
    entry = _BY_CLASS.get(type(msg))
    if entry is None:
        raise CodecError(
            f"unregistered message type {type(msg).__name__!r}; "
            f"register_message() it before sending over the wire")
    name, fields = entry
    return {"t": name,
            "f": {f: _encode_value(getattr(msg, f)) for f in fields}}


def _decode_message(doc: Any) -> object:
    if not isinstance(doc, dict):
        raise CodecError(f"message document must be an object, got {doc!r}")
    name = doc.get("t")
    entry = _BY_NAME.get(name) if isinstance(name, str) else None
    if entry is None:
        raise CodecError(f"unknown message type tag {name!r}")
    cls, fields = entry
    raw = doc.get("f")
    if not isinstance(raw, dict):
        raise CodecError(f"message {name!r} has no field object")
    try:
        return cls(**{key: _decode_value(value) for key, value in raw.items()})
    except TypeError as exc:
        raise CodecError(f"bad fields for {name!r}: {exc}") from None


def encode_frame(src: int, dst: int, msg: object) -> bytes:
    """One complete frame: length prefix, version byte, JSON body."""
    body = json.dumps(
        {"s": src, "d": dst, "m": _encode_message(msg)},
        separators=(",", ":"),
    ).encode("utf-8")
    payload = bytes((WIRE_VERSION,)) + body
    if len(payload) > MAX_FRAME:
        raise FrameError(
            f"encoded frame is {len(payload)} bytes (max {MAX_FRAME})")
    return _LEN.pack(len(payload)) + payload


def decode_body(payload: bytes) -> Tuple[int, int, object]:
    """Decode one frame body (everything after the length prefix) into
    ``(src, dst, message)``."""
    if not payload:
        raise FrameError("zero-length frame body")
    version = payload[0]
    if version != WIRE_VERSION:
        raise FrameError(
            f"unsupported wire version {version} (speak {WIRE_VERSION})")
    try:
        doc = json.loads(payload[1:].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"malformed frame body: {exc}") from None
    if not isinstance(doc, dict):
        raise CodecError(f"frame body must be an object, got {doc!r}")
    try:
        src, dst, msg_doc = doc["s"], doc["d"], doc["m"]
    except KeyError as exc:
        raise CodecError(f"frame body missing envelope key {exc}") from None
    if not isinstance(src, int) or not isinstance(dst, int):
        raise CodecError(f"frame endpoints must be ints, got {src!r}->{dst!r}")
    return src, dst, _decode_message(msg_doc)


async def read_frame(
    reader: asyncio.StreamReader,
    max_frame: int = MAX_FRAME,
    on_bytes: Optional[Callable[[int], None]] = None,
) -> Tuple[int, int, object]:
    """Read exactly one frame from a stream.

    Raises :class:`~repro.errors.FrameError` on an oversized or
    undersized length prefix, :class:`~repro.errors.CodecError` on a body
    that does not decode, and ``asyncio.IncompleteReadError`` when the
    peer closes mid-frame.  Never returns partial data and never blocks
    past the bytes one frame needs — a garbage prefix fails immediately
    instead of waiting for gigabytes that will never arrive."""
    prefix = await reader.readexactly(_LEN.size)
    (length,) = _LEN.unpack(prefix)
    if length == 0:
        raise FrameError("zero-length frame")
    if length > max_frame:
        raise FrameError(f"frame of {length} bytes exceeds max {max_frame}")
    payload = await reader.readexactly(length)
    if on_bytes is not None:
        on_bytes(_LEN.size + length)
    return decode_body(payload)


_register_builtins()
