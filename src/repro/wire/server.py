"""The lock service: acquire/release/status over real TCP.

:class:`LockServiceServer` fronts an :class:`~repro.aio.cluster.AioCluster`
with a network API.  Each client connection speaks the frame codec;
requests are dispatched concurrently (a connection may pipeline), replies
are correlated by ``req_id``.  Routing is deliberately thin — the server
adds no queueing of its own: an acquire simply awaits
``cluster.acquire(node)``, so fairness, searches, and fault recovery are
entirely the protocol's, observed end-to-end by whatever oracle is
attached to the cluster.

Session hygiene: the server tracks which grants each connection holds
and releases them when the connection dies — a crashed client must not
wedge the token under a grant nobody will ever release.  A frame that
violates the codec closes the connection (typed error recorded on
:attr:`last_wire_error`), exactly like the node-to-node transport.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional

from repro.aio.cluster import AioCluster
from repro.errors import CodecError, FrameError, MembershipError, WireError
from repro.metrics.keyed import LatencyHistogram
from repro.wire.codec import MAX_FRAME, encode_frame, read_frame
from repro.wire.service import (
    AcquireReply,
    AcquireRequest,
    ReleaseReply,
    ReleaseRequest,
    StatusReply,
    StatusRequest,
)

__all__ = ["LockServiceServer"]


class _Session:
    """Per-connection state: held grants and a serialized write path."""

    __slots__ = ("writer", "lock", "held", "tasks")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.lock = asyncio.Lock()
        self.held: Dict[int, int] = {}          # node -> grants held
        self.tasks: List[asyncio.Task] = []


class LockServiceServer:
    """Thin acquire/release/status façade over a running cluster."""

    def __init__(self, cluster: AioCluster, host: str = "127.0.0.1",
                 port: int = 0, max_frame: int = MAX_FRAME) -> None:
        self.cluster = cluster
        self.host = host
        self.port = port
        self.max_frame = max_frame
        self.grants = 0
        self.releases = 0
        self.failures = 0
        self.wait_histogram = LatencyHistogram()
        self.last_wire_error: Optional[WireError] = None
        self._server: Optional["asyncio.Server"] = None
        self._sessions: List[_Session] = []
        self._rr = 0
        self._started_at = 0.0

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Start the cluster (and its transport) and begin listening."""
        await self.cluster.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = asyncio.get_running_loop().time()

    async def stop(self) -> None:
        """Stop listening, drop every session, and stop the cluster."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for session in list(self._sessions):
            for task in session.tasks:
                task.cancel()
            session.writer.close()
        self._sessions.clear()
        await self.cluster.stop()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- connection handling -----------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        session = _Session(writer)
        self._sessions.append(session)
        try:
            while True:
                _, _, msg = await read_frame(reader, self.max_frame)
                task = asyncio.get_running_loop().create_task(
                    self._dispatch(session, msg))
                session.tasks.append(task)
                task.add_done_callback(session.tasks.remove)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass  # client went away
        except (FrameError, CodecError) as exc:
            self.last_wire_error = exc
        finally:
            if session in self._sessions:
                self._sessions.remove(session)
            for task in list(session.tasks):
                task.cancel()
            self._release_held(session)
            writer.close()

    def _release_held(self, session: _Session) -> None:
        """A dead client's grants go back to the cluster."""
        for node, count in list(session.held.items()):
            for _ in range(count):
                try:
                    self.cluster.release(node)
                except MembershipError:
                    break  # the node itself left or crashed
        session.held.clear()

    async def _reply(self, session: _Session, msg: object) -> None:
        frame = encode_frame(-1, -1, msg)
        async with session.lock:
            if session.writer.is_closing():
                return
            session.writer.write(frame)
            await session.writer.drain()

    def _pick_node(self, requested: int) -> int:
        if requested >= 0:
            if requested not in self.cluster.drivers:
                raise MembershipError(f"node {requested} is not a member")
            return requested
        members = sorted(self.cluster.drivers)
        node = members[self._rr % len(members)]
        self._rr += 1
        return node

    async def _dispatch(self, session: _Session, msg: object) -> None:
        if isinstance(msg, AcquireRequest):
            await self._do_acquire(session, msg)
        elif isinstance(msg, ReleaseRequest):
            await self._do_release(session, msg)
        elif isinstance(msg, StatusRequest):
            await self._do_status(session, msg)
        else:
            # A registered-but-unexpected message type is a codec-level
            # violation of the service contract; drop the session.
            self.last_wire_error = CodecError(
                f"unexpected service message {type(msg).__name__}")
            session.writer.close()

    async def _do_acquire(self, session: _Session,
                          req: AcquireRequest) -> None:
        loop = asyncio.get_running_loop()
        start = loop.time()
        try:
            node = self._pick_node(req.node)
            timeout = req.timeout if req.timeout > 0 else None
            await self.cluster.acquire(node, timeout=timeout)
        except asyncio.TimeoutError:
            self.failures += 1
            await self._reply(session, AcquireReply(
                req_id=req.req_id, ok=False, node=req.node,
                waited=loop.time() - start, error="timeout"))
            return
        except MembershipError as exc:
            self.failures += 1
            await self._reply(session, AcquireReply(
                req_id=req.req_id, ok=False, node=req.node, error=str(exc)))
            return
        waited = loop.time() - start
        if session not in self._sessions:
            # The client died while its acquire waited; its session is
            # already torn down, so hand the grant straight back.
            try:
                self.cluster.release(node)
            except MembershipError:
                pass
            return
        self.grants += 1
        self.wait_histogram.add(waited)
        session.held[node] = session.held.get(node, 0) + 1
        await self._reply(session, AcquireReply(
            req_id=req.req_id, ok=True, node=node, waited=waited))

    async def _do_release(self, session: _Session,
                          req: ReleaseRequest) -> None:
        held = session.held.get(req.node, 0)
        if held <= 0:
            self.failures += 1
            await self._reply(session, ReleaseReply(
                req_id=req.req_id, ok=False,
                error=f"connection holds no grant on node {req.node}"))
            return
        if held == 1:
            del session.held[req.node]
        else:
            session.held[req.node] = held - 1
        try:
            self.cluster.release(req.node)
        except MembershipError as exc:
            self.failures += 1
            await self._reply(session, ReleaseReply(
                req_id=req.req_id, ok=False, error=str(exc)))
            return
        self.releases += 1
        await self._reply(session, ReleaseReply(req_id=req.req_id, ok=True))

    async def _do_status(self, session: _Session,
                         req: StatusRequest) -> None:
        cluster = self.cluster
        pending = tuple(
            (node, cluster.pending_acquires(node))
            for node in sorted(cluster.drivers)
            if cluster.pending_acquires(node)
        )
        await self._reply(session, StatusReply(
            req_id=req.req_id, ok=True,
            n=len(cluster.drivers),
            protocol=cluster.protocol,
            grants=self.grants,
            pending=pending,
            crashed=tuple(cluster.crashed_nodes()),
            uptime=asyncio.get_running_loop().time() - self._started_at,
        ))
