"""Lock-service request/reply messages (the network API surface).

The token-passing substrate is ultimately a *service* contract: clients
acquire, hold, and release a mutual-exclusion lock, and ask the service
how it is doing.  These frozen dataclasses are that contract on the wire
— they ride the same versioned frame codec as the protocol traffic, and
every request carries a client-chosen ``req_id`` echoed by its reply so
one connection can pipeline requests.

``node`` selects which cluster member the request lands on; ``-1`` lets
the server pick (round-robin), which is what a load balancer in front of
a real deployment would do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.wire.codec import register_message

__all__ = [
    "AcquireRequest",
    "AcquireReply",
    "ReleaseRequest",
    "ReleaseReply",
    "StatusRequest",
    "StatusReply",
]


@register_message
@dataclass(frozen=True)
class AcquireRequest:
    """Acquire the lock.  ``timeout`` of 0 waits forever; a positive
    timeout turns a starving acquire into a clean ``ok=False`` reply."""

    req_id: int
    node: int = -1
    timeout: float = 0.0

    reliable = True


@register_message
@dataclass(frozen=True)
class AcquireReply:
    """Grant (``ok=True``: the client now holds ``node``'s lock until it
    releases) or failure (``ok=False`` with ``error``)."""

    req_id: int
    ok: bool
    node: int = -1
    waited: float = 0.0
    error: str = ""

    reliable = True


@register_message
@dataclass(frozen=True)
class ReleaseRequest:
    """Release the lock previously granted on ``node``."""

    req_id: int
    node: int

    reliable = True


@register_message
@dataclass(frozen=True)
class ReleaseReply:
    req_id: int
    ok: bool
    error: str = ""

    reliable = True


@register_message
@dataclass(frozen=True)
class StatusRequest:
    req_id: int

    reliable = True


@register_message
@dataclass(frozen=True)
class StatusReply:
    """Service health: cluster size, grants served, per-node queue depth
    (as ``(node, waiters)`` pairs for nodes with waiters), crashed
    members, and server uptime in seconds."""

    req_id: int
    ok: bool
    n: int = 0
    protocol: str = ""
    grants: int = 0
    pending: Tuple[Tuple[int, int], ...] = ()
    crashed: Tuple[int, ...] = ()
    uptime: float = 0.0

    reliable = True
