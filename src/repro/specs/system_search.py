"""System Search — nondeterministic token search (paper Figure 6).

State: ``Srch(Q, P, T, I, O, W)``.  ``W`` is the bag of traps
``trap(x, z)`` — node ``x`` remembers that ``z`` wants the token.

Rules 1–4 are System Message-Passing's rules (3 = receive, 4 = send, in the
paper's Figure 6 numbering).  The new rules:

- **Rule 5** — a node generates interest: it sets a trap for itself and
  sends a search message ``ask(x)`` to some other node.
- **Rule 6** — a node receiving ``ask(z)`` sets a local trap for ``z`` and
  forwards the search to some other node.
- **Rule 7** — a holder with a trap removes the trap and sends the token to
  the trapped requester.

The Lemma 5 restriction (``restricted=True``) disables rule 4 (arbitrary
pass), adds rule 4' (ring pass), and pins rules 5/6 to cyclic neighbours so
requests traverse the ring — giving O(N) responsiveness.  To keep
reductions finite the restricted rule 6 also lets a requester absorb its
own returning search message instead of forwarding it forever; every
restricted behaviour remains a behaviour of the unrestricted system.
"""

from __future__ import annotations

from typing import Optional

from repro.specs.common import (
    next_nonce,
    BOT,
    datum,
    initial_p,
    initial_q,
    proc,
    succ,
    token_msg,
)
from repro.trs.engine import Rewriter
from repro.trs.rules import Rule, RuleContext, RuleSet
from repro.trs.terms import Bag, Seq, Struct, Term, Var, Wildcard

__all__ = ["STATE", "initial_state", "make_rules", "make_system"]

STATE = "Srch"


def _q(x: Term, d: Term) -> Struct:
    return Struct("q", (x, d))


def _p(x: Term, h: Term) -> Struct:
    return Struct("p", (x, h))


def _out(x: Term, y: Term, m: Term) -> Struct:
    return Struct("out", (x, y, m))


def _in(x: Term, y: Term, m: Term) -> Struct:
    return Struct("in", (x, y, m))


def _token(h: Term) -> Struct:
    return Struct("token", (h,))


def _ask(z: Term) -> Struct:
    return Struct("ask", (z,))


def _trap(x: Term, z: Term) -> Struct:
    return Struct("trap", (x, z))


def _state(q, p, t, i, o, w) -> Struct:
    return Struct(STATE, (q, p, t, i, o, w))


def initial_state(n: int, holder: int = 0) -> Struct:
    """All requests and histories empty; token at ``holder``; no traps."""
    return _state(initial_q(n), initial_p(n), proc(holder), Bag(), Bag(), Bag())


def rule_1() -> Rule:
    """Rule 1: queue a fresh datum at some node."""
    def where(binding, ctx: RuleContext):
        x = binding["x"].value
        return {"d2": binding["d"].append(datum(x, next_nonce(binding, x)))}

    lhs = _state(
        Bag([_q(Var("x"), Var("d"))], rest=Var("Q")),
        Var("P"), Var("T"), Var("I"), Var("O"), Var("W"),
    )
    rhs = _state(
        Bag([_q(Var("x"), Var("d2"))], rest=Var("Q")),
        Var("P"), Var("T"), Var("I"), Var("O"), Var("W"),
    )
    return Rule("1", lhs, rhs, where=where)


def rule_2() -> Rule:
    """Rule 2: transmit an in-flight message."""
    lhs = _state(
        Var("Q"), Var("P"), Var("T"), Var("I"),
        Bag([_out(Var("x"), Var("y"), Var("m"))], rest=Var("O")), Var("W"),
    )
    rhs = _state(
        Var("Q"), Var("P"), Var("T"),
        Bag([_in(Var("y"), Var("x"), Var("m"))], rest=Var("I")),
        Var("O"), Var("W"),
    )
    return Rule("2", lhs, rhs)


def rule_3() -> Rule:
    """Rule 3: receive the token and become the holder."""
    lhs = _state(
        Var("Q"),
        Bag([_p(Var("x"), Wildcard())], rest=Var("P")),
        BOT,
        Bag([_in(Var("x"), Wildcard(), _token(Var("H")))], rest=Var("I")),
        Var("O"), Var("W"),
    )
    rhs = _state(
        Var("Q"),
        Bag([_p(Var("x"), Var("H"))], rest=Var("P")),
        Var("x"), Var("I"), Var("O"), Var("W"),
    )
    return Rule("3", lhs, rhs)


def rule_4(n: int, ring: bool) -> Rule:
    """Rule 4 (4' when ``ring``): the holder broadcasts and passes the token."""
    def where(binding, ctx):
        h2 = binding["H"].extend(binding["d"].items)
        return {"H2": h2, "tok": token_msg(h2)}

    def choices(binding, ctx):
        x = binding["x"].value
        if ring:
            yield {"y": proc(succ(x, n))}
        else:
            for y in range(n):
                yield {"y": proc(y)}

    lhs = _state(
        Bag([_q(Var("x"), Var("d"))], rest=Var("Q")),
        Bag([_p(Var("x"), Var("H"))], rest=Var("P")),
        Var("x"), Var("I"), Var("O"), Var("W"),
    )
    rhs = _state(
        Bag([_q(Var("x"), Seq())], rest=Var("Q")),
        Bag([_p(Var("x"), Var("H2"))], rest=Var("P")),
        BOT, Var("I"),
        Bag([_out(Var("x"), Var("y"), Var("tok"))], rest=Var("O")),
        Var("W"),
    )
    name = "4'" if ring else "4"
    return Rule(name, lhs, rhs, where=where, choices=choices)


def rule_5(n: int, restricted: bool) -> Rule:
    """Rule 5: generate interest — set own trap, send ``ask`` onward.

    Restricted: only when the node actually has pending data, no own trap
    is already set (single outstanding request, Section 4.4), and the
    message goes to the cyclic neighbour.
    """
    def choices(binding, ctx):
        x = binding["x"].value
        if restricted:
            yield {"y": proc(succ(x, n))}
        else:
            for y in range(n):
                if y != x:
                    yield {"y": proc(y)}

    guard = None
    if restricted:
        def guard(binding, ctx):
            x = binding["x"]
            if len(binding["d"]) == 0:
                return False
            own = _trap(x, x)
            return own not in binding["W"]

    lhs = _state(
        Bag([_q(Var("x"), Var("d"))], rest=Var("Q")),
        Var("P"), Var("T"), Var("I"), Var("O"), Var("W"),
    )
    rhs = _state(
        Bag([_q(Var("x"), Var("d"))], rest=Var("Q")),
        Var("P"), Var("T"), Var("I"),
        Bag([_out(Var("x"), Var("y"), _ask(Var("x")))], rest=Var("O")),
        Bag([_trap(Var("x"), Var("x"))], rest=Var("W")),
    )
    return Rule("5", lhs, rhs, guard=guard, choices=choices)


def rule_6(n: int, restricted: bool) -> Rule:
    """Rule 6: on receiving ``ask(z)``, set a local trap and forward.

    Restricted: forward to the cyclic neighbour, and a requester absorbs
    its own returning search (no forward, no duplicate trap) so each search
    makes at most one circuit.
    """
    def choices(binding, ctx):
        x = binding["x"].value
        z = binding["z"].value
        if restricted:
            if x == z:
                return
            yield {"u": proc(succ(x, n))}
        else:
            for u in range(n):
                if u != x:
                    yield {"u": proc(u)}

    lhs = _state(
        Var("Q"), Var("P"), Var("T"),
        Bag([_in(Var("x"), Wildcard(), _ask(Var("z")))], rest=Var("I")),
        Var("O"), Var("W"),
    )
    rhs = _state(
        Var("Q"), Var("P"), Var("T"), Var("I"),
        Bag([_out(Var("x"), Var("u"), _ask(Var("z")))], rest=Var("O")),
        Bag([_trap(Var("x"), Var("z"))], rest=Var("W")),
    )
    rule = Rule("6", lhs, rhs, choices=choices)
    if restricted:
        absorb_rhs = _state(
            Var("Q"), Var("P"), Var("T"), Var("I"), Var("O"), Var("W")
        )

        def absorb_guard(binding, ctx):
            return binding["x"] == binding["z"]

        return rule, Rule("6a", lhs, absorb_rhs, guard=absorb_guard)
    return rule


def rule_7() -> Rule:
    """Rule 7: a holder with a trap sends the token to the trapped node."""
    lhs = _state(
        Var("Q"),
        Bag([_p(Var("x"), Var("H"))], rest=Var("P")),
        Var("x"), Var("I"), Var("O"),
        Bag([_trap(Var("x"), Var("y"))], rest=Var("W")),
    )
    rhs = _state(
        Var("Q"),
        Bag([_p(Var("x"), Var("H"))], rest=Var("P")),
        BOT, Var("I"),
        Bag([_out(Var("x"), Var("y"), _token(Var("H")))], rest=Var("O")),
        Var("W"),
    )
    def guard(binding, ctx):
        # A holder's own trap is satisfied locally: sending the token to
        # oneself is pointless, so rule 7 targets other nodes; rule 7s
        # clears the self-trap.
        return binding["x"] != binding["y"]

    return Rule("7", lhs, rhs, guard=guard)


def rule_7s() -> Rule:
    """Rule 7s: a holder clears its own trap (request satisfied locally)."""
    lhs = _state(
        Var("Q"), Var("P"), Var("x"), Var("I"), Var("O"),
        Bag([_trap(Var("x"), Var("x"))], rest=Var("W")),
    )
    rhs = _state(Var("Q"), Var("P"), Var("x"), Var("I"), Var("O"), Var("W"))
    return Rule("7s", lhs, rhs)


def make_rules(n: int, restricted: bool = False) -> RuleSet:
    """System Search's rules; ``restricted`` applies the Lemma 5 discipline
    (no arbitrary pass, ring-ordered search, ring token rotation)."""
    rules = [rule_1(), rule_2(), rule_3()]
    if restricted:
        rules.append(rule_4(n, ring=True))
        rules.append(rule_5(n, restricted=True))
        fwd, absorb = rule_6(n, restricted=True)
        rules.extend([fwd, absorb])
    else:
        rules.append(rule_4(n, ring=False))
        rules.append(rule_5(n, restricted=False))
        rules.append(rule_6(n, restricted=False))
    rules.append(rule_7())
    rules.append(rule_7s())
    return RuleSet(rules)


def make_system(
    n: int, restricted: bool = False, holder: int = 0, ctx: Optional[RuleContext] = None
):
    """Return ``(rewriter, initial_state)`` for System Search."""
    return Rewriter(make_rules(n, restricted), ctx), initial_state(n, holder)
