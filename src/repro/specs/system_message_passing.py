"""System Message-Passing — a distributed protocol (paper Figure 5).

State: ``MP(Q, P, T, I, O)``.  The global history is no longer a state
component: it travels inside the token message.  ``O`` holds in-flight
output messages ``out(x, y, m)`` ("x sending m to y"); ``I`` holds received
messages ``in(x, y, m)`` ("x has received m from y"); ``T`` is the holder
or ``⊥`` while the token is in transit.

- **Rule 1** — queue a fresh datum.
- **Rule 2** — transmission: move ``out(x, y, m)`` to ``in(y, x, m)``.
- **Rule 3** — the holder broadcasts (appending pending data to the token's
  history), sets ``T = ⊥`` and sends the token to some node ``y``.
- **Rule 4** — a node receives the token, adopts its history as the local
  prefix history, and becomes the holder.
- **Rule 3'** — the circular-rotation restriction of rule 3:
  ``y = x⁺¹`` (used for the Lemma 4 O(N)-responsiveness guarantee).

Lemma 3: System Message-Passing satisfies the prefix property (drained-state
mapping; executable version in :mod:`repro.specs.refinement` maps to
System S1 with the maximal history as ``H``).
"""

from __future__ import annotations

from typing import Optional

from repro.specs.common import (
    next_nonce,
    BOT,
    datum,
    initial_p,
    initial_q,
    proc,
    succ,
    token_msg,
)
from repro.trs.engine import Rewriter
from repro.trs.rules import Rule, RuleContext, RuleSet
from repro.trs.terms import Bag, Seq, Struct, Term, Var, Wildcard

__all__ = ["STATE", "initial_state", "make_rules", "make_system"]

STATE = "MP"


def _q(x: Term, d: Term) -> Struct:
    return Struct("q", (x, d))


def _p(x: Term, h: Term) -> Struct:
    return Struct("p", (x, h))


def _out(x: Term, y: Term, m: Term) -> Struct:
    return Struct("out", (x, y, m))


def _in(x: Term, y: Term, m: Term) -> Struct:
    return Struct("in", (x, y, m))


def _token(h: Term) -> Struct:
    return Struct("token", (h,))


def _state(q: Term, p: Term, t: Term, i: Term, o: Term) -> Struct:
    return Struct(STATE, (q, p, t, i, o))


def initial_state(n: int, holder: int = 0) -> Struct:
    """``(||_x (x, phi_x), ||_x (x, ∅), holder, ∅, ∅)``."""
    return _state(initial_q(n), initial_p(n), proc(holder), Bag(), Bag())


def rule_1() -> Rule:
    """Rule 1: queue a fresh datum at some node."""
    def where(binding, ctx: RuleContext):
        x = binding["x"].value
        return {"d2": binding["d"].append(datum(x, next_nonce(binding, x)))}

    lhs = _state(
        Bag([_q(Var("x"), Var("d"))], rest=Var("Q")),
        Var("P"), Var("T"), Var("I"), Var("O"),
    )
    rhs = _state(
        Bag([_q(Var("x"), Var("d2"))], rest=Var("Q")),
        Var("P"), Var("T"), Var("I"), Var("O"),
    )
    return Rule("1", lhs, rhs, where=where)


def rule_2() -> Rule:
    """Rule 2: transmit — an output message becomes the peer's input."""
    lhs = _state(
        Var("Q"), Var("P"), Var("T"), Var("I"),
        Bag([_out(Var("x"), Var("y"), Var("m"))], rest=Var("O")),
    )
    rhs = _state(
        Var("Q"), Var("P"), Var("T"),
        Bag([_in(Var("y"), Var("x"), Var("m"))], rest=Var("I")),
        Var("O"),
    )
    return Rule("2", lhs, rhs)


def rule_3(n: int, ring: bool) -> Rule:
    """Rule 3 (or 3' with ``ring=True``): the holder broadcasts and sends
    the token onward; ``T`` becomes ``⊥`` while the token is in flight."""
    def where(binding, ctx):
        h2 = binding["H"].extend(binding["d"].items)
        return {"H2": h2, "tok": _token_ground(h2)}

    def _token_ground(h2):
        return token_msg(h2)

    def choices(binding, ctx):
        x = binding["x"].value
        if ring:
            yield {"y": proc(succ(x, n))}
        else:
            for y in range(n):
                yield {"y": proc(y)}

    lhs = _state(
        Bag([_q(Var("x"), Var("d"))], rest=Var("Q")),
        Bag([_p(Var("x"), Var("H"))], rest=Var("P")),
        Var("x"), Var("I"), Var("O"),
    )
    rhs = _state(
        Bag([_q(Var("x"), Seq())], rest=Var("Q")),
        Bag([_p(Var("x"), Var("H2"))], rest=Var("P")),
        BOT, Var("I"),
        Bag([_out(Var("x"), Var("y"), Var("tok"))], rest=Var("O")),
    )
    name = "3'" if ring else "3"
    return Rule(name, lhs, rhs, where=where, choices=choices)


def rule_4() -> Rule:
    """Rule 4: receive the token; adopt its history; become the holder."""
    lhs = _state(
        Var("Q"),
        Bag([_p(Var("x"), Wildcard())], rest=Var("P")),
        BOT,
        Bag([_in(Var("x"), Wildcard(), _token(Var("H")))], rest=Var("I")),
        Var("O"),
    )
    rhs = _state(
        Var("Q"),
        Bag([_p(Var("x"), Var("H"))], rest=Var("P")),
        Var("x"), Var("I"), Var("O"),
    )
    return Rule("4", lhs, rhs)


def make_rules(n: int, ring: bool = False) -> RuleSet:
    """The four rules of System Message-Passing (rule 3 or 3')."""
    return RuleSet([rule_1(), rule_2(), rule_3(n, ring), rule_4()])


def make_system(
    n: int, ring: bool = False, holder: int = 0, ctx: Optional[RuleContext] = None
):
    """Return ``(rewriter, initial_state)`` for System Message-Passing."""
    return Rewriter(make_rules(n, ring), ctx), initial_state(n, holder)
