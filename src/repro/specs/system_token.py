"""System Token — token-restricted broadcasting (paper Figure 4).

State: ``Tok(Q, H, P, T)``.  The fourth field ``T`` names the node holding
the token; only the token holder may broadcast.  Rule 2 combines System
S1's rules 2 and 3: the holder appends its data to the global history,
updates its own local history, and passes the token to *some* node ``y``
(a nondeterministic choice point — later refinements narrow it to the ring
successor).

Lemma 2: the transitions of System Token are a subset of System S1's, so
the prefix property is inherited.
"""

from __future__ import annotations

from typing import Optional

from repro.specs.common import datum, initial_p, initial_q, next_nonce, proc, succ
from repro.trs.engine import Rewriter
from repro.trs.rules import Rule, RuleContext, RuleSet
from repro.trs.terms import Bag, Seq, Struct, Term, Var, Wildcard

__all__ = ["STATE", "initial_state", "make_rules", "make_system"]

STATE = "Tok"


def _q(x: Term, d: Term) -> Struct:
    return Struct("q", (x, d))


def _p(x: Term, h: Term) -> Struct:
    return Struct("p", (x, h))


def _state(q: Term, h: Term, p: Term, t: Term) -> Struct:
    return Struct(STATE, (q, h, p, t))


def initial_state(n: int, holder: int = 0) -> Struct:
    """Initially the token sits at ``holder`` and all histories are empty."""
    return _state(initial_q(n), Seq(), initial_p(n), proc(holder))


def rule_1() -> Rule:
    """Rule 1: queue a fresh datum at some node."""
    def where(binding, ctx: RuleContext):
        x = binding["x"].value
        return {"d2": binding["d"].append(datum(x, next_nonce(binding, x)))}

    lhs = _state(
        Bag([_q(Var("x"), Var("d"))], rest=Var("Q")), Var("H"), Var("P"), Var("T")
    )
    rhs = _state(
        Bag([_q(Var("x"), Var("d2"))], rest=Var("Q")), Var("H"), Var("P"), Var("T")
    )
    return Rule("1", lhs, rhs, where=where)


def rule_2(n: int, ring: bool) -> Rule:
    """Rule 2: the token holder broadcasts and passes the token to ``y``.

    With ``ring=True`` the choice point is narrowed to the ring successor
    (the System Message-Passing rule 3' discipline); otherwise ``y`` ranges
    over every node, the paper's fully nondeterministic pass.
    """
    def where(binding, ctx):
        h2 = binding["H"].extend(binding["d"].items)
        return {"H2": h2}

    def choices(binding, ctx):
        x = binding["x"].value
        if ring:
            yield {"y": proc(succ(x, n))}
        else:
            for y in range(n):
                yield {"y": proc(y)}

    lhs = _state(
        Bag([_q(Var("x"), Var("d"))], rest=Var("Q")),
        Var("H"),
        Bag([_p(Var("x"), Wildcard())], rest=Var("P")),
        Var("x"),
    )
    rhs = _state(
        Bag([_q(Var("x"), Seq())], rest=Var("Q")),
        Var("H2"),
        Bag([_p(Var("x"), Var("H2"))], rest=Var("P")),
        Var("y"),
    )
    return Rule("2", lhs, rhs, where=where, choices=choices)


def make_rules(n: int, ring: bool = False) -> RuleSet:
    """The two rules of System Token for ``n`` nodes."""
    return RuleSet([rule_1(), rule_2(n, ring)])


def make_system(
    n: int, ring: bool = False, holder: int = 0, ctx: Optional[RuleContext] = None
):
    """Return ``(rewriter, initial_state)`` for an ``n``-node System Token."""
    return Rewriter(make_rules(n, ring), ctx), initial_state(n, holder)
