"""Bounded exhaustive model checking of the specification systems.

Random reductions (used by the refinement tests) sample behaviours; this
module *enumerates* them: breadth-first exploration of every reachable
state of a small instance, checking invariants on each.  Because rules 1
(fresh data) and 4 (circulation visits) make the state spaces infinite,
exploration uses **bounding restrictions** — each is a guard-narrowing in
the sense of Section 4, so every explored behaviour is a genuine behaviour
of the unbounded system, and within the bound the verification is
*complete* (the result reports whether the frontier was exhausted).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, NamedTuple, Optional

from repro.errors import SpecError
from repro.specs.common import next_nonce
from repro.trs.engine import Rewriter
from repro.trs.rules import RuleSet
from repro.trs.terms import Seq, Struct, Term

__all__ = ["CheckResult", "GraphResult", "bound_data", "bound_requests",
           "bound_visits", "bound_visits_soft",
           "explore", "explore_graph", "check_goal_always_reachable"]


class CheckResult(NamedTuple):
    """Outcome of an exhaustive exploration."""

    states: int          #: distinct states visited
    transitions: int     #: transitions taken
    complete: bool       #: True when the frontier was exhausted (full
    #: verification up to the bounds); False when max_states was hit


class GraphResult(NamedTuple):
    """Outcome of a graph-building exploration (:func:`explore_graph`).

    Unlike :class:`CheckResult` this keeps the explored objects themselves:
    ``states`` is the set of reachable states and ``edges`` the adjacency
    map, with ``transitions`` the total edge count precomputed (it is what
    verdict artifacts and the pinned behaviour checksums record)."""

    states: "set"        #: the reachable states themselves
    edges: "dict"        #: ``edges[s]`` lists the successors of ``s``
    transitions: int     #: total transitions taken (== sum of edge lists)
    complete: bool       #: True when the frontier was exhausted


def bound_data(rules: RuleSet, per_node_limit: int,
               nodes: Optional[Iterable[int]] = None) -> RuleSet:
    """Restrict rule 1 so each node generates at most ``per_node_limit``
    fresh datums — optionally only at the given ``nodes`` — a guard
    narrowing, hence behaviour-preserving."""
    allowed = None if nodes is None else frozenset(nodes)

    def guard(binding, ctx):
        x = binding["x"].value
        if allowed is not None and x not in allowed:
            return False
        return next_nonce(binding, x) < per_node_limit

    return rules.replaced(rules["1"].restricted(guard=guard))


def _request_artifacts_exist(binding, x: int) -> bool:
    """True when node ``x`` still has search artifacts in the system: an
    ask/gimme on its behalf in flight, or a trap for it anywhere."""
    from repro.trs.terms import Atom, Bag

    target = Atom(x)
    for field in ("I", "O", "W"):
        bag = binding.get(field)
        if not isinstance(bag, Bag):
            continue
        for item in bag:
            if not isinstance(item, Struct):
                continue
            if item.functor == "trap" and item.args[1] == target:
                return True
            if item.functor in ("in", "out"):
                payload = item.args[2]
                if isinstance(payload, Struct):
                    if payload.functor == "ask" and payload.args[0] == target:
                        return True
                    if payload.functor == "gimme" and payload.args[2] == target:
                        return True
    return False


def bound_requests(rules: RuleSet, rule_name: str = "5") -> RuleSet:
    """Restrict the request rule to the Section 4.4 single-outstanding
    discipline: a node may not launch a new search while any artifact of
    its previous one (in-flight message or trap) survives — a guard
    narrowing that keeps exhaustive exploration tractable."""
    def guard(binding, ctx):
        return not _request_artifacts_exist(binding, binding["x"].value)

    return rules.replaced(rules[rule_name].restricted(guard=guard))


def _count_visits(term: Term) -> int:
    count = 0
    stack = [term]
    while stack:
        t = stack.pop()
        if isinstance(t, Struct):
            if t.functor == "visit":
                count += 1
            else:
                stack.extend(t.args)
        elif isinstance(t, Seq):
            stack.extend(t.items)
    return count


def bound_visits(rules: RuleSet, limit: int, rule_name: str = "4") -> RuleSet:
    """Restrict the circulation rule so the token makes at most ``limit``
    ring hops (counted as visit events in the holder's history)."""
    def guard(binding, ctx):
        return _count_visits(binding["H"]) < limit

    return rules.replaced(rules[rule_name].restricted(guard=guard))


def _pending_data(binding) -> bool:
    """Any node still has undelivered data (its own or in the rest of Q)."""
    from repro.trs.terms import Bag

    d = binding.get("d")
    if isinstance(d, Seq) and len(d) > 0:
        return True
    q = binding.get("Q")
    if isinstance(q, Bag):
        for entry in q:
            if (isinstance(entry, Struct) and entry.functor == "q"
                    and isinstance(entry.args[1], Seq)
                    and len(entry.args[1]) > 0):
                return True
    return False


def bound_visits_soft(rules: RuleSet, limit: int,
                      rule_name: str = "4") -> RuleSet:
    """Like :func:`bound_visits`, but the rotation stays enabled while any
    request is still unserved (pending data exists anywhere).  The idle
    system is bounded, yet the bound can never starve service — the right
    restriction for *liveness* checking (a hard visit bound can cut the
    rotation an in-flight request depends on)."""
    def guard(binding, ctx):
        return _count_visits(binding["H"]) < limit or _pending_data(binding)

    return rules.replaced(rules[rule_name].restricted(guard=guard))


def explore(
    rewriter: Rewriter,
    initial: Term,
    invariants: Iterable[Callable[[Term], bool]],
    max_states: int = 100_000,
    names: Optional[List[str]] = None,
) -> CheckResult:
    """BFS over every reachable state, checking each invariant everywhere.

    Raises :class:`SpecError` naming the violated invariant and the rule
    that produced the offending state.
    """
    invariants = list(invariants)
    labels = names or [getattr(f, "__name__", f"inv{i}")
                       for i, f in enumerate(invariants)]

    def check(state: Term, via: str) -> None:
        for label, invariant in zip(labels, invariants):
            if not invariant(state):
                raise SpecError(
                    f"invariant {label!r} violated at a state reached via "
                    f"rule {via!r}"
                )

    check(initial, "<initial>")
    seen = {initial}
    frontier = [initial]
    cursor = 0  # list + cursor: pop(0) is O(n) per dequeue
    transitions = 0
    complete = True
    while cursor < len(frontier):
        if len(seen) >= max_states:
            complete = False
            break
        state = frontier[cursor]
        cursor += 1
        for rule_name, succ in rewriter.successors(state):
            transitions += 1
            if succ in seen:
                continue
            check(succ, rule_name)
            seen.add(succ)
            frontier.append(succ)
            if len(seen) >= max_states:
                complete = False
                break
    return CheckResult(states=len(seen), transitions=transitions,
                       complete=complete)


def explore_graph(
    rewriter: Rewriter,
    initial: Term,
    max_states: int = 100_000,
) -> GraphResult:
    """BFS like :func:`explore`, but return the full transition graph as a
    :class:`GraphResult`: the state set, the adjacency map, the transition
    count, and the completeness flag.  Used by the liveness check below and
    by the ``repro verify`` DPOR validator."""
    seen = {initial}
    edges = {initial: []}
    frontier = [initial]
    cursor = 0  # list + cursor: pop(0) is O(n) per dequeue
    transitions = 0
    complete = True
    while cursor < len(frontier):
        if len(seen) >= max_states:
            complete = False
            break
        state = frontier[cursor]
        cursor += 1
        for _, succ in rewriter.successors(state):
            edges[state].append(succ)
            transitions += 1
            if succ not in seen:
                seen.add(succ)
                edges.setdefault(succ, [])
                frontier.append(succ)
                if len(seen) >= max_states:
                    complete = False
                    break
    return GraphResult(states=seen, edges=edges, transitions=transitions,
                       complete=complete)


def check_goal_always_reachable(
    rewriter: Rewriter,
    initial: Term,
    goal: Callable[[Term], bool],
    max_states: int = 100_000,
) -> CheckResult:
    """A bounded liveness check: from *every* reachable state, some state
    satisfying ``goal`` must remain reachable (no dead ends or livelock
    traps within the bound) — the machine-checkable core of "every request
    is eventually serviceable".

    Computed by backward propagation over the explored transition graph;
    raises :class:`SpecError` naming a state from which the goal is
    unreachable.
    """
    states, edges, transitions, complete = explore_graph(
        rewriter, initial, max_states)
    if not complete:
        # A truncated frontier would produce spurious "unreachable" verdicts
        # (paths may continue past the bound), so refuse to conclude.
        return CheckResult(states=len(states), transitions=transitions,
                           complete=False)
    can_reach = {s for s in states if goal(s)}
    if not can_reach:
        raise SpecError("no reachable state satisfies the goal at all")
    changed = True
    while changed:
        changed = False
        for state in states:
            if state in can_reach:
                continue
            if any(succ in can_reach for succ in edges[state]):
                can_reach.add(state)
                changed = True
    stuck = len(states) - len(can_reach)
    if stuck:
        raise SpecError(
            f"{stuck} reachable state(s) can never reach the goal"
        )
    return CheckResult(states=len(states), transitions=transitions,
                       complete=True)
