"""System S1 — local histories (paper Figure 3).

State: ``S1(Q, H, P)``.  ``P`` collects the local prefix-history variables
``(i, H_i)``.  Rules 1 and 2 are System S's rules with the extra field; the
new **rule 3** copies the global history into some node's local history at
any time — *when* the copy happens is purely a performance concern
(Section 3.2), so the rule is unconstrained.

Lemma 1: S1 satisfies the prefix property (map states to System S by
ignoring ``P``; see :mod:`repro.specs.refinement`).
"""

from __future__ import annotations

from typing import Optional

from repro.specs.common import datum, initial_p, initial_q, next_nonce
from repro.trs.engine import Rewriter
from repro.trs.rules import Rule, RuleContext, RuleSet
from repro.trs.terms import Bag, Seq, Struct, Term, Var, Wildcard

__all__ = ["STATE", "initial_state", "make_rules", "make_system"]

STATE = "S1"


def _q(x: Term, d: Term) -> Struct:
    return Struct("q", (x, d))


def _p(x: Term, h: Term) -> Struct:
    return Struct("p", (x, h))


def _state(q: Term, h: Term, p: Term) -> Struct:
    return Struct(STATE, (q, h, p))


def initial_state(n: int) -> Struct:
    """``(||_x (x, phi_x), ∅, ||_x (x, ∅))``."""
    return _state(initial_q(n), Seq(), initial_p(n))


def rule_1() -> Rule:
    """Rule 1: queue a fresh datum at some node."""
    def where(binding, ctx: RuleContext):
        x = binding["x"].value
        return {"d2": binding["d"].append(datum(x, next_nonce(binding, x)))}

    lhs = _state(Bag([_q(Var("x"), Var("d"))], rest=Var("Q")), Var("H"), Var("P"))
    rhs = _state(Bag([_q(Var("x"), Var("d2"))], rest=Var("Q")), Var("H"), Var("P"))
    return Rule("1", lhs, rhs, where=where)


def rule_2(restricted: bool) -> Rule:
    """Rule 2: broadcast pending data into the global history."""
    def where(binding, ctx):
        return {"H2": binding["H"].extend(binding["d"].items)}

    guard = None
    if restricted:
        def guard(binding, ctx):
            return len(binding["d"]) > 0

    lhs = _state(Bag([_q(Var("x"), Var("d"))], rest=Var("Q")), Var("H"), Var("P"))
    rhs = _state(Bag([_q(Var("x"), Seq())], rest=Var("Q")), Var("H2"), Var("P"))
    return Rule("2", lhs, rhs, guard=guard, where=where)


def rule_3() -> Rule:
    """Rule 3: copy the global history into some node's local history."""
    lhs = _state(
        Var("Q"), Var("H"), Bag([_p(Var("y"), Wildcard())], rest=Var("P"))
    )
    rhs = _state(Var("Q"), Var("H"), Bag([_p(Var("y"), Var("H"))], rest=Var("P")))
    return Rule("3", lhs, rhs)


def make_rules(restricted: bool = False) -> RuleSet:
    """The three rules of System S1."""
    return RuleSet([rule_1(), rule_2(restricted), rule_3()])


def make_system(n: int, restricted: bool = False, ctx: Optional[RuleContext] = None):
    """Return ``(rewriter, initial_state)`` for an ``n``-node System S1."""
    return Rewriter(make_rules(restricted), ctx), initial_state(n)
