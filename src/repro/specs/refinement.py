"""Executable refinement mappings between the specification systems.

The paper proves each system safe by mapping its states to a previously
proven system and showing every step is simulated there (Lemmas 1–3,
Theorem 1).  This module makes those arguments *machine-checkable*: each
mapping is a state function, and :func:`check_refinement` verifies, along a
concrete reduction of the fine system, that every transition's image is
reachable in the coarse system within a small number of steps (0 steps =
stuttering, e.g. pure message transmission).

Mappings implemented:

- ``s1_to_s`` — forget ``P`` (Lemma 1's trivial mapping).
- ``token_to_s1`` — forget ``T`` (Lemma 2: Token's transitions are a subset
  of S1's; its combined rule 2 is simulated by S1's rules 2 then 3).
- ``mp_to_s1`` — the drained-state idea of Lemma 3 made executable: the
  global ``H`` is the maximal local history (the token holder's, which
  always equals the in-flight token history since senders update their
  local history at send time).
- ``search_to_s1`` — additionally forgets ``W`` and the search messages.
- ``binary_search_to_s1`` — as above, plus projection of histories onto
  data events (the ring-visit events that drive ``⊂_C`` are performance
  bookkeeping invisible to S1) — the executable core of Theorem 1.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import RefinementError
from repro.specs.common import project_data
from repro.specs.properties import components
from repro.trs.engine import Rewriter
from repro.trs.terms import Bag, Seq, Struct, Term
from repro.trs.trace import Reduction

__all__ = [
    "s1_to_s",
    "token_to_s1",
    "mp_to_s1",
    "search_to_s1",
    "binary_search_to_s1",
    "check_refinement",
]


def s1_to_s(state: Term) -> Term:
    """Lemma 1's mapping: ignore the local-history component ``P``."""
    comp = components(state)
    return Struct("S", (comp["Q"], comp["H"]))


def token_to_s1(state: Term) -> Term:
    """Lemma 2's mapping: forget who holds the token."""
    comp = components(state)
    return Struct("S1", (comp["Q"], comp["H"], comp["P"]))


def _max_local_history(p: Bag) -> Seq:
    best = Seq()
    for entry in p:
        if isinstance(entry, Struct) and entry.functor == "p":
            h = entry.args[1]
            if len(h) > len(best):
                best = h
    return best


def mp_to_s1(state: Term) -> Term:
    """Lemma 3's drained-state mapping, executably: ``H`` is the maximal
    local history and the message sets are forgotten."""
    comp = components(state)
    return Struct("S1", (comp["Q"], _max_local_history(comp["P"]), comp["P"]))


def search_to_s1(state: Term) -> Term:
    """System Search refines S1 the same way (traps are performance-only)."""
    return mp_to_s1(state)


def _project_p(p: Bag) -> Bag:
    entries = []
    for entry in p:
        if isinstance(entry, Struct) and entry.functor == "p":
            entries.append(Struct("p", (entry.args[0], project_data(entry.args[1]))))
        else:
            entries.append(entry)
    return Bag(entries)


def binary_search_to_s1(state: Term) -> Term:
    """Theorem 1's mapping: forget search state and project histories onto
    broadcast-data events (ring-visit stamps are performance bookkeeping)."""
    comp = components(state)
    projected = _project_p(comp["P"])
    return Struct("S1", (comp["Q"], _max_local_history(projected), projected))


def check_refinement(
    reduction: Reduction,
    mapping: Callable[[Term], Term],
    coarse: Rewriter,
    max_depth: int = 2,
    name: Optional[str] = None,
) -> int:
    """Verify that ``mapping`` carries every transition of ``reduction``
    into a ≤ ``max_depth``-step path of the ``coarse`` system.

    Returns the number of non-stuttering simulated transitions.  Raises
    :class:`RefinementError` identifying the first failing step.
    """
    label = name or getattr(mapping, "__name__", "mapping")
    simulated = 0
    for idx, (pre, step) in enumerate(reduction.transitions()):
        image_pre = mapping(pre)
        image_post = mapping(step.state)
        if image_pre == image_post:
            continue  # stuttering step
        if not coarse.can_reach(image_pre, image_post, max_depth):
            raise RefinementError(
                f"{label}: step {idx} (rule {step.rule_name!r}) is not "
                f"simulated by the coarse system within {max_depth} steps"
            )
        simulated += 1
    return simulated
