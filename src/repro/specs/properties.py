"""Safety-property checkers for the specification systems.

Two machine-checkable properties:

- the **prefix property** (Definition 2) — every history present anywhere
  in the system (local ``P`` entries, the global ``H`` where one exists,
  and histories carried by in-flight token / loan / gimme messages) is
  prefix-comparable with every other, i.e. the histories form a chain whose
  maximum is the global history;
- **token uniqueness** — in the message-passing systems exactly one token
  exists: either some node holds it (``T ≠ ⊥``) or exactly one token/loan
  message is in flight.

Checkers accept states of any of the six systems, dispatching on the state
functor.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import SpecError
from repro.specs.common import BOT
from repro.trs.terms import Atom, Bag, Seq, Struct, Term

__all__ = [
    "components",
    "collect_histories",
    "prefix_chain",
    "prefix_property",
    "token_count",
    "token_uniqueness",
    "search_direction_sound",
    "global_history",
]

_FIELDS: Dict[str, Tuple[str, ...]] = {
    "S": ("Q", "H"),
    "S1": ("Q", "H", "P"),
    "Tok": ("Q", "H", "P", "T"),
    "MP": ("Q", "P", "T", "I", "O"),
    "Srch": ("Q", "P", "T", "I", "O", "W"),
    "BS": ("Q", "P", "T", "I", "O", "W"),
}

_HISTORY_PAYLOADS = ("token", "loan")


def components(state: Term) -> Dict[str, Term]:
    """Return the named components of a system state term."""
    if not isinstance(state, Struct) or state.functor not in _FIELDS:
        raise SpecError(f"not a known system state: {state!r}")
    names = _FIELDS[state.functor]
    if len(state.args) != len(names):
        raise SpecError(f"malformed {state.functor} state: {state!r}")
    return dict(zip(names, state.args))


def _message_histories(msgs: Bag) -> List[Seq]:
    """Histories carried by in-flight messages (token, loan, gimme)."""
    out: List[Seq] = []
    for m in msgs:
        if not (isinstance(m, Struct) and m.functor in ("in", "out")):
            continue
        payload = m.args[2]
        if isinstance(payload, Struct):
            if payload.functor in _HISTORY_PAYLOADS:
                out.append(payload.args[0])
            elif payload.functor == "gimme":
                out.append(payload.args[1])
    return out


def collect_histories(state: Term) -> List[Seq]:
    """Every history present in the state, in no particular order."""
    comp = components(state)
    histories: List[Seq] = []
    if "H" in comp:
        histories.append(comp["H"])
    if "P" in comp:
        for entry in comp["P"]:
            if isinstance(entry, Struct) and entry.functor == "p":
                histories.append(entry.args[1])
    for field in ("I", "O"):
        if field in comp:
            histories.extend(_message_histories(comp[field]))
    return histories


def prefix_chain(histories: List[Seq]) -> bool:
    """True when the histories are pairwise prefix-comparable.

    Sorting by length makes the check linear in comparisons: a chain exists
    iff each history is a prefix of the next-longer one.
    """
    ordered = sorted(histories, key=len)
    for a, b in zip(ordered, ordered[1:]):
        if not a.is_prefix_of(b):
            return False
    return True


def prefix_property(state: Term) -> bool:
    """Definition 2, machine-checked: local histories form a prefix chain
    dominated by the global history."""
    return prefix_chain(collect_histories(state))


def global_history(state: Term) -> Seq:
    """The maximal history in the state (the global history).

    For System S/S1/Token this is the ``H`` component; for the distributed
    systems it is the longest history present (the token's).
    """
    comp = components(state)
    if "H" in comp:
        return comp["H"]
    histories = collect_histories(state)
    if not histories:
        return Seq()
    return max(histories, key=len)


def token_count(state: Term) -> int:
    """The number of tokens in the system (held + in flight)."""
    comp = components(state)
    if "T" not in comp:
        raise SpecError(f"{state.functor} has no token component")
    count = 0 if comp["T"] == BOT else 1
    for field in ("I", "O"):
        if field not in comp:
            continue
        for m in comp[field]:
            if not (isinstance(m, Struct) and m.functor in ("in", "out")):
                continue
            payload = m.args[2]
            if isinstance(payload, Struct) and payload.functor in _HISTORY_PAYLOADS:
                count += 1
    return count


def token_uniqueness(state: Term) -> bool:
    """Exactly one token exists (trivially true for System Token)."""
    return token_count(state) == 1


def search_direction_sound(state: Term) -> bool:
    """Rule 6's direction choice is always decidable (System BinarySearch).

    Rule 6 forwards a ``gimme`` clockwise or counter-clockwise depending on
    whether the receiver's history is a ``⊂_C`` ring-prefix of the carried
    snapshot or vice versa (Figure 8); when the two are incomparable the
    where-clause has no correct direction and vetoes, silently dropping the
    search.  This checks that the veto branch is unreachable: for every
    in-flight ``gimme`` the destination's local history is ring-comparable
    with the carried history, and the remaining span is positive (a span-0
    search is absorbed by rule 6a, never re-sent).
    """
    comp = components(state)
    if "W" not in comp:   # only the search systems carry gimme traffic
        return True
    local: Dict[Term, Seq] = {}
    for entry in comp["P"]:
        if isinstance(entry, Struct) and entry.functor == "p":
            history = entry.args[1]
            if isinstance(history, Seq):
                local[entry.args[0]] = history
    from repro.specs.common import is_ring_prefix

    for field in ("I", "O"):
        for m in comp[field]:
            if not (isinstance(m, Struct) and m.functor in ("in", "out")):
                continue
            payload = m.args[2]
            if not (isinstance(payload, Struct)
                    and payload.functor == "gimme"):
                continue
            span, carried = payload.args[0], payload.args[1]
            if isinstance(span, Atom) and int(span.value) < 1:
                return False
            # ``in(x, y, m)`` is already at its destination x;
            # ``out(x, y, m)`` is on its way to y.
            dest = m.args[0] if m.functor == "in" else m.args[1]
            history = local.get(dest)
            if history is None or not isinstance(carried, Seq):
                continue
            if not (is_ring_prefix(history, carried)
                    or is_ring_prefix(carried, history)):
                return False
    return True
