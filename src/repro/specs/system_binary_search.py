"""System BinarySearch — ring rotation + logarithmic token search
(paper Figure 7).

State: ``BS(Q, P, T, I, O, W)``.  Rules 1–3 are System Search's; the rest:

- **Rule 4** — circular rotation: the holder broadcasts pending data,
  appends a ``visit(x)`` ring-circulation event, and passes the token to
  ``x⁺¹``.  The visit events are the alphabet ``C`` that the ``⊂_C``
  history comparison projects onto.
- **Rule 5** — a requester sets its own trap and launches a search
  "directly across the ring": ``gimme(span, H_x, x)`` to ``x⁺ˢ`` with the
  initial span ``s = ⌊N/2⌋``.
- **Rule 6** — a node receiving ``gimme(s, H_z, z)`` sets a local trap for
  ``z`` and forwards the search half as far: to ``x⁻ˢᐟ²`` when its own
  history is a ring-prefix of the requester's (the token passed the
  requester more recently, so it lies behind — Figure 8a), otherwise to
  ``x⁺ˢᐟ²`` (Figure 8b).  When the span reaches zero the search is absorbed
  (rule 6a): the trap alone will catch the rotating token.
- **Rule 7** — a holder with a trap *loans* the token (the decorated ``ŷ``)
  to the trapped requester; the loan must be returned to the sender so the
  rotation resumes where it was intercepted.
- **Rule 8** — the requester uses the loaned token (broadcasting its
  pending data) and immediately returns it to the lender.

The span interpretation makes the probe offsets from the requester
``N/2, ±N/4, ±N/8, …`` — a binary search over the ring costing at most
``⌈log₂ N⌉`` forwards per request (Lemma 6).
"""

from __future__ import annotations

from typing import Optional

from repro.specs.common import (
    next_nonce,
    BOT,
    datum,
    hop,
    initial_p,
    initial_q,
    is_ring_prefix,
    proc,
    succ,
    token_msg,
    visit,
)
from repro.trs.engine import Rewriter
from repro.trs.rules import Rule, RuleContext, RuleSet
from repro.trs.terms import Atom, Bag, Seq, Struct, Term, Var, Wildcard

__all__ = ["STATE", "initial_state", "make_rules", "make_system"]

STATE = "BS"


def _q(x: Term, d: Term) -> Struct:
    return Struct("q", (x, d))


def _p(x: Term, h: Term) -> Struct:
    return Struct("p", (x, h))


def _out(x: Term, y: Term, m: Term) -> Struct:
    return Struct("out", (x, y, m))


def _in(x: Term, y: Term, m: Term) -> Struct:
    return Struct("in", (x, y, m))


def _token(h: Term) -> Struct:
    return Struct("token", (h,))


def _loan(h: Term) -> Struct:
    return Struct("loan", (h,))


def _gimme(n: Term, h: Term, z: Term) -> Struct:
    return Struct("gimme", (n, h, z))


def _trap(x: Term, z: Term) -> Struct:
    return Struct("trap", (x, z))


def _state(q, p, t, i, o, w) -> Struct:
    return Struct(STATE, (q, p, t, i, o, w))


def initial_state(n: int, holder: int = 0) -> Struct:
    """All requests/histories empty; token at ``holder``; no traps."""
    return _state(initial_q(n), initial_p(n), proc(holder), Bag(), Bag(), Bag())


def rule_1() -> Rule:
    """Rule 1: queue a fresh datum at some node."""
    def where(binding, ctx: RuleContext):
        x = binding["x"].value
        return {"d2": binding["d"].append(datum(x, next_nonce(binding, x)))}

    lhs = _state(
        Bag([_q(Var("x"), Var("d"))], rest=Var("Q")),
        Var("P"), Var("T"), Var("I"), Var("O"), Var("W"),
    )
    rhs = _state(
        Bag([_q(Var("x"), Var("d2"))], rest=Var("Q")),
        Var("P"), Var("T"), Var("I"), Var("O"), Var("W"),
    )
    return Rule("1", lhs, rhs, where=where)


def rule_2() -> Rule:
    """Rule 2: transmit an in-flight message."""
    lhs = _state(
        Var("Q"), Var("P"), Var("T"), Var("I"),
        Bag([_out(Var("x"), Var("y"), Var("m"))], rest=Var("O")), Var("W"),
    )
    rhs = _state(
        Var("Q"), Var("P"), Var("T"),
        Bag([_in(Var("y"), Var("x"), Var("m"))], rest=Var("I")),
        Var("O"), Var("W"),
    )
    return Rule("2", lhs, rhs)


def rule_3() -> Rule:
    """Rule 3: receive the rotating token and become the holder."""
    lhs = _state(
        Var("Q"),
        Bag([_p(Var("x"), Wildcard())], rest=Var("P")),
        BOT,
        Bag([_in(Var("x"), Wildcard(), _token(Var("H")))], rest=Var("I")),
        Var("O"), Var("W"),
    )
    rhs = _state(
        Var("Q"),
        Bag([_p(Var("x"), Var("H"))], rest=Var("P")),
        Var("x"), Var("I"), Var("O"), Var("W"),
    )
    return Rule("3", lhs, rhs)


def rule_4(n: int) -> Rule:
    """Rule 4: circular rotation — broadcast, stamp a visit, pass to x⁺¹."""
    def where(binding, ctx):
        x = binding["x"].value
        h2 = binding["H"].extend(binding["d"].items).append(visit(x))
        return {"H2": h2, "tok": token_msg(h2), "y": proc(succ(x, n))}

    lhs = _state(
        Bag([_q(Var("x"), Var("d"))], rest=Var("Q")),
        Bag([_p(Var("x"), Var("H"))], rest=Var("P")),
        Var("x"), Var("I"), Var("O"), Var("W"),
    )
    rhs = _state(
        Bag([_q(Var("x"), Seq())], rest=Var("Q")),
        Bag([_p(Var("x"), Var("H2"))], rest=Var("P")),
        BOT, Var("I"),
        Bag([_out(Var("x"), Var("y"), Var("tok"))], rest=Var("O")),
        Var("W"),
    )
    return Rule("4", lhs, rhs, where=where)


def rule_5(n: int, restricted: bool) -> Rule:
    """Rule 5: launch a binary search across the ring and trap locally.

    Restricted variant: fire only when the node has pending data and no own
    trap yet (single outstanding request, Section 4.4) — the default for
    executable reductions; the unrestricted rule may fire at any time, as in
    the paper.
    """
    def where(binding, ctx):
        x = binding["x"].value
        span = n // 2
        if span < 1:
            return None
        target = hop(x, n, span)
        return {
            "y": proc(target),
            "g": _gimme(Atom(span), binding["H"], proc(x)),
        }

    guard = None
    if restricted:
        def guard(binding, ctx):
            x = binding["x"]
            if len(binding["d"]) == 0:
                return False
            return _trap(x, x) not in binding["W"]

    lhs = _state(
        Bag([_q(Var("x"), Var("d"))], rest=Var("Q")),
        Bag([_p(Var("x"), Var("H"))], rest=Var("P")),
        Var("T"), Var("I"), Var("O"), Var("W"),
    )
    rhs = _state(
        Bag([_q(Var("x"), Var("d"))], rest=Var("Q")),
        Bag([_p(Var("x"), Var("H"))], rest=Var("P")),
        Var("T"), Var("I"),
        Bag([_out(Var("x"), Var("y"), Var("g"))], rest=Var("O")),
        Bag([_trap(Var("x"), Var("x"))], rest=Var("W")),
    )
    return Rule("5", lhs, rhs, guard=guard, where=where)


def rule_6(n: int):
    """Rule 6 (+ absorbing 6a): trap locally, halve the span, and forward
    in the direction determined by the ``⊂_C`` history comparison."""
    def gimme_lhs(span, hz):
        return _state(
            Var("Q"),
            Bag([_p(Var("x"), Var("H"))], rest=Var("P")),
            Var("T"),
            Bag([_in(Var("x"), Wildcard(), _gimme(span, hz, Var("z")))],
                rest=Var("I")),
            Var("O"), Var("W"),
        )

    # Forwarding compares histories; the absorbing variants don't, so they
    # bind only what their guards read.
    lhs = gimme_lhs(Var("s"), Var("Hz"))
    absorb_lhs = gimme_lhs(Var("s"), Wildcard())
    self_lhs = gimme_lhs(Wildcard(), Wildcard())

    def fwd_guard(binding, ctx):
        return binding["s"].value // 2 >= 1 and binding["x"] != binding["z"]

    def fwd_where(binding, ctx):
        x = binding["x"].value
        span = binding["s"].value // 2
        h, hz = binding["H"], binding["Hz"]
        if is_ring_prefix(h, hz):
            # Figure 8(a): the token passed the requester after us — it is
            # behind, continue counter-clockwise.
            target = hop(x, n, -span)
        elif is_ring_prefix(hz, h):
            # Figure 8(b): we saw the token after the requester — it is
            # ahead, continue clockwise.
            target = hop(x, n, span)
        else:
            # Histories are incomparable only if safety were broken.
            return None
        return {
            "u": proc(target),
            "g2": _gimme(Atom(span), binding["Hz"], binding["z"]),
        }

    fwd_rhs = _state(
        Var("Q"),
        Bag([_p(Var("x"), Var("H"))], rest=Var("P")),
        Var("T"), Var("I"),
        Bag([_out(Var("x"), Var("u"), Var("g2"))], rest=Var("O")),
        Bag([_trap(Var("x"), Var("z"))], rest=Var("W")),
    )
    forward = Rule("6", lhs, fwd_rhs, guard=fwd_guard, where=fwd_where)

    def absorb_guard(binding, ctx):
        return binding["s"].value // 2 < 1 and binding["x"] != binding["z"]

    absorb_rhs = _state(
        Var("Q"),
        Bag([_p(Var("x"), Var("H"))], rest=Var("P")),
        Var("T"), Var("I"), Var("O"),
        Bag([_trap(Var("x"), Var("z"))], rest=Var("W")),
    )
    absorb = Rule("6a", absorb_lhs, absorb_rhs, guard=absorb_guard)

    def self_guard(binding, ctx):
        return binding["x"] == binding["z"]

    self_rhs = _state(
        Var("Q"),
        Bag([_p(Var("x"), Var("H"))], rest=Var("P")),
        Var("T"), Var("I"), Var("O"), Var("W"),
    )
    self_absorb = Rule("6s", self_lhs, self_rhs, guard=self_guard)
    return forward, absorb, self_absorb


def rule_7() -> Rule:
    """Rule 7: loan the token to a trapped requester (decorated ŷ)."""
    def guard(binding, ctx):
        return binding["x"] != binding["y"]

    lhs = _state(
        Var("Q"),
        Bag([_p(Var("x"), Var("H"))], rest=Var("P")),
        Var("x"), Var("I"), Var("O"),
        Bag([_trap(Var("x"), Var("y"))], rest=Var("W")),
    )
    rhs = _state(
        Var("Q"),
        Bag([_p(Var("x"), Var("H"))], rest=Var("P")),
        BOT, Var("I"),
        Bag([_out(Var("x"), Var("y"), _loan(Var("H")))], rest=Var("O")),
        Var("W"),
    )
    return Rule("7", lhs, rhs, guard=guard)


def rule_7s() -> Rule:
    """Rule 7s: a holder clears its own trap (satisfied locally)."""
    lhs = _state(
        Var("Q"), Var("P"), Var("x"), Var("I"), Var("O"),
        Bag([_trap(Var("x"), Var("x"))], rest=Var("W")),
    )
    rhs = _state(Var("Q"), Var("P"), Var("x"), Var("I"), Var("O"), Var("W"))
    return Rule("7s", lhs, rhs)


def rule_8() -> Rule:
    """Rule 8: use the loaned token (broadcast) and return it to sender."""
    def where(binding, ctx):
        h2 = binding["H"].extend(binding["d"].items)
        return {"H2": h2, "tok": token_msg(h2)}

    lhs = _state(
        Bag([_q(Var("x"), Var("d"))], rest=Var("Q")),
        Bag([_p(Var("x"), Wildcard())], rest=Var("P")),
        BOT,
        Bag([_in(Var("x"), Var("y"), _loan(Var("H")))], rest=Var("I")),
        Var("O"), Var("W"),
    )
    rhs = _state(
        Bag([_q(Var("x"), Seq())], rest=Var("Q")),
        Bag([_p(Var("x"), Var("H2"))], rest=Var("P")),
        BOT, Var("I"),
        Bag([_out(Var("x"), Var("y"), Var("tok"))], rest=Var("O")),
        Var("W"),
    )
    return Rule("8", lhs, rhs, where=where)


def make_rules(n: int, restricted: bool = True) -> RuleSet:
    """The 8 paper rules (plus the absorbing/self-service helpers 6a/6s/7s)."""
    forward, absorb, self_absorb = rule_6(n)
    return RuleSet([
        rule_1(),
        rule_2(),
        rule_3(),
        rule_4(n),
        rule_5(n, restricted),
        forward,
        absorb,
        self_absorb,
        rule_7(),
        rule_7s(),
        rule_8(),
    ])


def make_system(
    n: int, restricted: bool = True, holder: int = 0, ctx: Optional[RuleContext] = None
):
    """Return ``(rewriter, initial_state)`` for System BinarySearch."""
    return Rewriter(make_rules(n, restricted), ctx), initial_state(n, holder)
