"""System S — the base, abstract protocol (paper Figure 2).

State: ``S(Q, H)`` where ``Q`` is the bag of ``(x, d_x)`` pairs and ``H`` is
the ordered global history of broadcasts.

- **Rule 1** — a node wishing to broadcast appends a fresh datum to its
  pending data: ``(Q|(x,d_x), -) -> (Q|(x, d_x ⊕ new_x), -)``.
- **Rule 2** — some node's data is broadcast by appending it to the global
  history: ``(Q|(x,d_x), H) -> (Q|(x,phi_x), H ⊕ d_x)``.  Following the
  ``phi``-identity convention (see :mod:`repro.specs.common`) the pair is
  reset to the empty request rather than removed; the two readings are
  equivalent modulo ``phi`` and resetting keeps the refinements from the
  later systems exact.

System S trivially satisfies the prefix property (there are no local
histories yet); it is the safety anchor every refinement maps back to.
"""

from __future__ import annotations

from typing import Optional

from repro.specs.common import datum, initial_q, next_nonce
from repro.trs.engine import Rewriter
from repro.trs.rules import Rule, RuleContext, RuleSet
from repro.trs.terms import Bag, Seq, Struct, Term, Var

__all__ = ["STATE", "initial_state", "make_rules", "make_system"]

STATE = "S"


def _pair(x: Term, d: Term) -> Struct:
    return Struct("q", (x, d))


def _state(q: Term, h: Term) -> Struct:
    return Struct(STATE, (q, h))


def initial_state(n: int) -> Struct:
    """``(||_x (x, phi_x), ∅)``."""
    return _state(initial_q(n), Seq())


def _new_datum(binding, ctx: RuleContext):
    x = binding["x"].value
    return {"d2": binding["d"].append(datum(x, next_nonce(binding, x)))}


def _broadcast(binding, ctx: RuleContext):
    h = binding["H"]
    d = binding["d"]
    return {"H2": h.extend(d.items)}


def rule_1() -> Rule:
    """Rule 1: queue a fresh datum at some node."""
    lhs = _state(Bag([_pair(Var("x"), Var("d"))], rest=Var("Q")), Var("H"))
    rhs = _state(Bag([_pair(Var("x"), Var("d2"))], rest=Var("Q")), Var("H"))
    return Rule("1", lhs, rhs, where=_new_datum)


def rule_2(restricted: bool) -> Rule:
    """Rule 2: broadcast some node's pending data into the global history.

    The restricted variant fires only when there is data to broadcast,
    pruning stuttering steps from reductions; every restricted behaviour is
    an unrestricted behaviour.
    """
    lhs = _state(Bag([_pair(Var("x"), Var("d"))], rest=Var("Q")), Var("H"))
    rhs = _state(Bag([_pair(Var("x"), Seq())], rest=Var("Q")), Var("H2"))
    guard = None
    if restricted:
        def guard(binding, ctx):
            return len(binding["d"]) > 0

    return Rule("2", lhs, rhs, guard=guard, where=_broadcast)


def make_rules(restricted: bool = False) -> RuleSet:
    """The two rules of System S."""
    return RuleSet([rule_1(), rule_2(restricted)])


def make_system(n: int, restricted: bool = False, ctx: Optional[RuleContext] = None):
    """Return ``(rewriter, initial_state)`` for an ``n``-node System S."""
    return Rewriter(make_rules(restricted), ctx), initial_state(n)
