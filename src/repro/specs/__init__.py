"""The paper's protocol specifications as executable TRSs.

Six systems, in refinement order (Sections 3–4):

1. :mod:`repro.specs.system_s` — System S, the abstract broadcast protocol.
2. :mod:`repro.specs.system_s1` — System S1, local prefix histories.
3. :mod:`repro.specs.system_token` — System Token, broadcast gated by a token.
4. :mod:`repro.specs.system_message_passing` — System Message-Passing,
   explicit send/receive (rule 3' gives circular rotation).
5. :mod:`repro.specs.system_search` — System Search, nondeterministic token
   search with traps.
6. :mod:`repro.specs.system_binary_search` — System BinarySearch, the
   paper's contribution: ring rotation + logarithmic search.

:mod:`repro.specs.properties` machine-checks the prefix property and token
uniqueness; :mod:`repro.specs.refinement` machine-checks the Lemma 1–3 /
Theorem 1 refinement mappings along concrete reductions.
"""

from repro.specs import (
    common,
    modelcheck,
    properties,
    refinement,
    system_binary_search,
    system_message_passing,
    system_s,
    system_s1,
    system_search,
    system_token,
)
from repro.specs.properties import (
    prefix_property,
    token_count,
    token_uniqueness,
)
from repro.specs.refinement import check_refinement

__all__ = [
    "check_refinement",
    "common",
    "modelcheck",
    "prefix_property",
    "properties",
    "refinement",
    "system_binary_search",
    "system_message_passing",
    "system_s",
    "system_s1",
    "system_search",
    "system_token",
    "token_count",
    "token_uniqueness",
]
