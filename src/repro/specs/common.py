"""Shared term encodings for the paper's protocol specifications.

Encoding conventions (uniform across all six systems):

- Processor ids are ``Atom(int)`` drawn from ``0..n-1``; the ring successor
  ``x⁺¹`` is ``(x+1) mod n`` (Figure 1's cycle graph).
- A ``Q`` entry ``(x, d_x)`` is ``q(x, d)`` where ``d`` is a :class:`Seq` of
  pending data; the paper's ``phi_x`` (empty request, left identity of
  ``⊕``) is the empty sequence.  Following that identity, broadcast rules
  *reset* the pair to ``q(x, ())`` — equivalent, modulo ``phi``, to the
  paper's literal removal of the pair.
- A datum is ``d(x, k)`` with a per-reduction fresh nonce ``k`` (rule 1's
  ``new_x``).
- A ``P`` entry ``(x, H_x)`` is ``p(x, H)``; histories are sequences of
  events: data events ``d(x, k)`` and, for System BinarySearch, ring-visit
  events ``visit(x)`` appended at each circulation hop.  The paper's
  ``⊂_C`` comparison projects histories onto those circulation events.
- Output messages ``(x, (y, m))`` are ``out(x, y, m)``; input messages are
  ``in(x, y, m)`` ("x has received from y the message m").
- Message payloads: ``token(H)`` — the token carrying the history;
  ``loan(H)`` — the decorated ``ŷ`` token of rule 7 that must be returned
  after use; ``gimme(n, H, z)`` — a binary-search request on behalf of
  ``z`` with remaining span ``n`` and the requester's history snapshot;
  ``ask(z)`` — System Search's undecorated search message ``tau_z``.
- A trap ``(x, tau_z)`` in ``W`` is ``trap(x, z)``.
- The no-token marker ``⊥`` is ``Atom("bot")``.
"""

from __future__ import annotations

from typing import Iterable, List
from weakref import finalize as _finalize

from repro.errors import SpecError
from repro.trs.terms import Atom, Bag, Seq, Struct, Term

__all__ = [
    "BOT",
    "proc",
    "q_pair",
    "p_pair",
    "datum",
    "visit",
    "out_msg",
    "in_msg",
    "token_msg",
    "loan_msg",
    "gimme_msg",
    "ask_msg",
    "trap",
    "initial_q",
    "initial_p",
    "succ",
    "pred",
    "hop",
    "project_ring",
    "project_data",
    "is_prefix",
    "is_ring_prefix",
    "next_nonce",
    "pending_of",
    "history_of",
    "ids_of",
]

BOT = Atom("bot")


def proc(x: int) -> Atom:
    """The processor-id atom for ``x``."""
    return Atom(x)


def q_pair(x: int, data: Iterable[Term] = ()) -> Struct:
    """A ``Q`` entry ``(x, d_x)``; empty data encodes ``phi_x``."""
    return Struct("q", (proc(x), Seq(data)))


def p_pair(x: int, history: Iterable[Term] = ()) -> Struct:
    """A ``P`` entry ``(x, H_x)``."""
    return Struct("p", (proc(x), Seq(history)))


def datum(x: int, nonce: int) -> Struct:
    """The ``k``-th fresh datum produced by node ``x`` (rule 1's new_x)."""
    return Struct("d", (proc(x), Atom(nonce)))


def visit(x: int) -> Struct:
    """A ring-circulation event: the token was passed on by node ``x``."""
    return Struct("visit", (proc(x),))


def out_msg(x: int, y: int, payload: Term) -> Struct:
    """``O`` entry: node ``x`` is sending ``payload`` to node ``y``."""
    return Struct("out", (proc(x), proc(y), payload))


def in_msg(x: int, y: int, payload: Term) -> Struct:
    """``I`` entry: node ``x`` has received ``payload`` from node ``y``."""
    return Struct("in", (proc(x), proc(y), payload))


def token_msg(history: Seq) -> Struct:
    """The token, carrying the global history."""
    return Struct("token", (history,))


def loan_msg(history: Seq) -> Struct:
    """The decorated token of rule 7: must be returned to sender after use."""
    return Struct("loan", (history,))


def gimme_msg(n: int, history: Seq, z: int) -> Struct:
    """BinarySearch request on behalf of ``z`` with remaining span ``n``."""
    return Struct("gimme", (Atom(n), history, proc(z)))


def ask_msg(z: int) -> Struct:
    """System Search's plain search message ``tau_z``."""
    return Struct("ask", (proc(z),))


def trap(x: int, z: int) -> Struct:
    """``W`` entry: node ``x`` holds a trap set on behalf of node ``z``."""
    return Struct("trap", (proc(x), proc(z)))


def initial_q(n: int) -> Bag:
    """``||_{x in P} (x, phi_x)`` — every node with an empty request."""
    return Bag([q_pair(x) for x in range(n)])


def initial_p(n: int) -> Bag:
    """``||_{x in P} (x, ∅)`` — every node with an empty local history."""
    return Bag([p_pair(x) for x in range(n)])


def succ(x: int, n: int, k: int = 1) -> int:
    """``x⁺ᵏ`` on the ring of ``n`` nodes."""
    return (x + k) % n


def pred(x: int, n: int, k: int = 1) -> int:
    """``x⁻ᵏ`` on the ring of ``n`` nodes."""
    return (x - k) % n


def hop(x: int, n: int, offset: int) -> int:
    """``x⁺ᵒ`` for signed ``offset`` (negative = counter-clockwise)."""
    return (x + offset) % n


def project_ring(history: Seq) -> Seq:
    """Project a history onto ring-circulation (``visit``) events — the
    ``C`` of the paper's ``⊂_C`` relation."""
    return Seq(
        e for e in history if isinstance(e, Struct) and e.functor == "visit"
    )


def project_data(history: Seq) -> Seq:
    """Project a history onto broadcast-data events (drops visits)."""
    return Seq(e for e in history if isinstance(e, Struct) and e.functor == "d")


def is_prefix(a: Seq, b: Seq) -> bool:
    """The paper's ``A ⊂ B`` (prefix, non-strict)."""
    return a.is_prefix_of(b)


def is_ring_prefix(a: Seq, b: Seq) -> bool:
    """The paper's ``A ⊂_C B``: prefix after projection onto ring events."""
    return project_ring(a).is_prefix_of(project_ring(b))


def next_nonce(binding, x: int) -> int:
    """The next fresh datum index for node ``x``, derived from the state.

    Rule 1's ``new_x`` must be fresh *and* deterministic from the state so
    that refinement mappings commute exactly (the fine and coarse systems
    generate identical datum terms).  We scan every term bound by the match
    — rule 1 binds the entire state — for ``d(x, k)`` structs and return
    ``1 + max(k)`` (0 when none exist).
    """
    target = proc(x)
    best = -1
    for v in binding.values():
        if isinstance(v, Term):
            k = _nonce_table(v).get(target, -1)
            if k > best:
                best = k
    return best + 1


_NONCE_MEMO: dict = {}
_EMPTY_TABLE: dict = {}


def _nonce_table(t: Term) -> dict:
    """Map each node atom to the largest ``k`` of any ``d(node, k)`` struct
    occurring anywhere inside ``t``.

    Terms are interned (hash-consed), so the table is memoized per term
    identity; state components untouched by a rewrite hit the cache, which
    turns :func:`next_nonce`'s full-state scan into a few dict lookups.
    """
    key = id(t)
    tbl = _NONCE_MEMO.get(key)
    if tbl is not None:
        return tbl
    if isinstance(t, Struct):
        kids = t.args
    elif isinstance(t, (Seq, Bag)):
        kids = t.items
    else:
        return _EMPTY_TABLE
    tbl = _EMPTY_TABLE
    for kid in kids:
        sub = _nonce_table(kid)
        if sub:
            if tbl is _EMPTY_TABLE:
                tbl = dict(sub)
            else:
                for node, k in sub.items():
                    if k > tbl.get(node, -1):
                        tbl[node] = k
    if (
        isinstance(t, Struct)
        and t.functor == "d"
        and len(t.args) == 2
        and isinstance(t.args[1], Atom)
    ):
        node, k = t.args[0], t.args[1].value
        if tbl is _EMPTY_TABLE:
            tbl = {node: k}
        elif k > tbl.get(node, -1):
            tbl[node] = k
    _NONCE_MEMO[key] = tbl
    _finalize(t, _NONCE_MEMO.pop, key, None)
    return tbl


def _entry(bag_term: Bag, functor: str, x: int) -> Struct:
    for item in bag_term:
        if (
            isinstance(item, Struct)
            and item.functor == functor
            and item.args[0] == proc(x)
        ):
            return item
    raise SpecError(f"no {functor!r} entry for node {x} in {bag_term!r}")


def pending_of(q: Bag, x: int) -> Seq:
    """Return node ``x``'s pending data sequence from a ``Q`` bag."""
    entry = _entry(q, "q", x)
    data = entry.args[1]
    if not isinstance(data, Seq):
        raise SpecError(f"malformed Q entry: {entry!r}")
    return data


def history_of(p: Bag, x: int) -> Seq:
    """Return node ``x``'s local history from a ``P`` bag."""
    entry = _entry(p, "p", x)
    history = entry.args[1]
    if not isinstance(history, Seq):
        raise SpecError(f"malformed P entry: {entry!r}")
    return history


def ids_of(bag_term: Bag, functor: str) -> List[int]:
    """Return the node ids of all ``functor`` entries in a bag."""
    out = []
    for item in bag_term:
        if isinstance(item, Struct) and item.functor == functor:
            first = item.args[0]
            if isinstance(first, Atom):
                out.append(first.value)
    return sorted(out)
