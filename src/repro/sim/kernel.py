"""Deterministic discrete-event simulation kernel.

The paper's performance model (Section 4) charges **zero time for rules
affecting only local state and a constant time for message-passing rules**.
The kernel realises that model: local handling runs synchronously at the
current virtual time, message deliveries are events scheduled one delay
ahead.  Event ordering is a ``(time, priority, seq)`` heap — ``seq`` makes
runs bit-for-bit reproducible for a given seed.

Hot-path layout: the heap stores plain ``(time, priority, seq, fn, args)``
tuples so ordering is decided by C-level tuple comparison (``seq`` is
unique, so ``fn``/``args`` never get compared).  Cancellation goes through
an :class:`Event` handle registered in a side table keyed by ``seq``;
cancelled entries stay in the heap (lazy deletion) until they are popped
or until dead entries outnumber live ones, at which point the heap is
compacted in one O(n) pass.  :meth:`Simulator.post` is the fire-and-forget
fast path (no handle) used for the overwhelmingly-common never-cancelled
events such as message deliveries.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = ["Event", "Simulator"]

#: Heap entry: (time, priority, seq, fn, args).
_Entry = Tuple[float, int, int, Callable, Tuple]


class Event:
    """Cancellation handle for a scheduled callback.

    Returned by :meth:`Simulator.schedule`; the heap itself stores plain
    tuples, so this object exists only so the caller can :meth:`cancel`.
    """

    __slots__ = ("_sim", "seq", "time", "cancelled")

    def __init__(self, sim: "Simulator", seq: int, time: float) -> None:
        self._sim = sim
        self.seq = seq
        self.time = time
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent; a no-op after it
        has already fired)."""
        if not self.cancelled:
            self.cancelled = True
            self._sim._on_cancel(self.seq)


class Simulator:
    """A single-threaded virtual-time event loop."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: List[_Entry] = []
        # seq -> Event for handle-bearing entries still in the heap.
        self._handles: dict = {}
        self._live = 0  # non-cancelled entries in the heap
        self._dead = 0  # cancelled entries still in the heap
        self._running = False
        self._stopped = False
        self.executed_total = 0  # lifetime events fired (for benchmarks)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued — O(1)."""
        return self._live

    def post(self, delay: float, fn: Callable, *args: Any, priority: int = 0) -> None:
        """Schedule ``fn(*args)`` with no cancellation handle.

        The fast path for fire-and-forget events (message deliveries,
        workload ticks): no :class:`Event` object, no side-table entry.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._queue, (self._now + delay, priority, self._seq, fn, args)
        )
        self._seq += 1
        self._live += 1

    def schedule(self, delay: float, fn: Callable, *args: Any, priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now.

        Lower ``priority`` runs first among same-time events.  Returns a
        cancellation handle; use :meth:`post` when you will never cancel.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (time, priority, seq, fn, args))
        handle = Event(self, seq, time)
        self._handles[seq] = handle
        self._live += 1
        return handle

    def schedule_at(self, time: float, fn: Callable, *args: Any, priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        return self.schedule(time - self._now, fn, *args, priority=priority)

    def stop(self) -> None:
        """Stop the run loop after the current event."""
        self._stopped = True

    # -- cancellation bookkeeping -------------------------------------------------

    def _on_cancel(self, seq: int) -> None:
        """Called by :meth:`Event.cancel`; adjusts live/dead accounting and
        compacts the heap when dead entries outnumber live ones."""
        if seq in self._handles:  # still queued (not yet fired)
            self._live -= 1
            self._dead += 1
            if self._dead * 2 > len(self._queue):
                self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (one O(n) pass).

        Mutates ``self._queue`` in place: the run loop holds a direct
        reference to the list, and cancellation can happen mid-run.
        """
        handles = self._handles
        keep: List[_Entry] = []
        for entry in self._queue:
            handle = handles.get(entry[2])
            if handle is not None and handle.cancelled:
                del handles[entry[2]]
            else:
                keep.append(entry)
        self._queue[:] = keep
        heapq.heapify(self._queue)
        self._dead = 0

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Process events in order; return the number of events executed.

        Stops when the queue is empty, when virtual time would exceed
        ``until`` (the clock is then advanced exactly to ``until``), after
        ``max_events``, or when :meth:`stop` is called from a handler.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        self._stopped = False
        executed = 0
        # Hot loop: bind everything once.
        queue = self._queue
        handles = self._handles
        heappop = heapq.heappop
        try:
            while queue:
                if self._stopped:
                    break
                if max_events is not None and executed >= max_events:
                    break
                if until is not None and queue[0][0] > until:
                    # Peek, don't pop: the head stays queued for later runs.
                    self._now = until
                    break
                entry = heappop(queue)
                time = entry[0]
                if handles:
                    handle = handles.pop(entry[2], None)
                    if handle is not None and handle.cancelled:
                        self._dead -= 1
                        continue
                if time < self._now:
                    raise SimulationError(
                        f"event at t={time} is in the past (now={self._now})"
                    )
                self._now = time
                self._live -= 1
                entry[3](*entry[4])
                executed += 1
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
            self.executed_total += executed
        return executed
