"""Deterministic discrete-event simulation kernel.

The paper's performance model (Section 4) charges **zero time for rules
affecting only local state and a constant time for message-passing rules**.
The kernel realises that model: local handling runs synchronously at the
current virtual time, message deliveries are events scheduled one delay
ahead.  Event ordering is a ``(time, priority, seq)`` heap — ``seq`` makes
runs bit-for-bit reproducible for a given seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = ["Event", "Simulator"]


class Event:
    """A scheduled callback.  Cancelled events stay in the heap but are
    skipped when popped (lazy deletion)."""

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, priority: int, seq: int, fn: Callable, args: Tuple) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (other.time, other.priority, other.seq)


class Simulator:
    """A single-threaded virtual-time event loop."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: List[Event] = []
        self._running = False
        self._stopped = False

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    def schedule(self, delay: float, fn: Callable, *args: Any, priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now.

        Lower ``priority`` runs first among same-time events.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(self._now + delay, priority, self._seq, fn, tuple(args))
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, fn: Callable, *args: Any, priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        return self.schedule(time - self._now, fn, *args, priority=priority)

    def stop(self) -> None:
        """Stop the run loop after the current event."""
        self._stopped = True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Process events in order; return the number of events executed.

        Stops when the queue is empty, when virtual time would exceed
        ``until`` (the clock is then advanced exactly to ``until``), after
        ``max_events``, or when :meth:`stop` is called from a handler.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._queue:
                if self._stopped:
                    break
                if max_events is not None and executed >= max_events:
                    break
                event = heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                if until is not None and event.time > until:
                    heapq.heappush(self._queue, event)
                    self._now = until
                    break
                if event.time < self._now:
                    raise SimulationError(
                        f"event at t={event.time} is in the past (now={self._now})"
                    )
                self._now = event.time
                event.fn(*event.args)
                executed += 1
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return executed
