"""Discrete-event driver for sans-IO protocol cores.

The driver owns the IO boundary: it attaches a core to the network,
interprets its effects (sends, timers, application deliveries), and exposes
``request``/``release`` entry points.  Application events are fanned out to
subscriber callbacks — the cluster uses these for metrics.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional

from repro.core.base import ProtocolCore
from repro.core.effects import CancelTimer, Deliver, Effect, Send, SetTimer, Trace
from repro.errors import SimulationError
from repro.lint.sanitizer import ClusterSanitizer
from repro.sim.kernel import Event, Simulator
from repro.sim.network import Network

__all__ = ["NodeDriver"]


class NodeDriver:
    """Runs one protocol core inside the discrete-event simulation.

    When a :class:`~repro.lint.sanitizer.ClusterSanitizer` is attached
    (the cluster wires one by default, see ``REPRO_SANITIZE``), the driver
    reports every handled event to it so cluster-level safety invariants
    are audited as the simulation runs.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        core: ProtocolCore,
        sanitizer: Optional[ClusterSanitizer] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.core = core
        self.node_id = core.node_id
        self.sanitizer = sanitizer
        self._timers: Dict[Hashable, Event] = {}
        self._subscribers: List[Callable[[int, str, tuple, float], None]] = []
        self._crashed = False
        network.attach(self.node_id, self._on_network_message)
        if sanitizer is not None:
            sanitizer.register(core)

    # -- wiring ---------------------------------------------------------------

    def subscribe(self, callback: Callable[[int, str, tuple, float], None]) -> None:
        """Register ``callback(node_id, kind, payload, now)`` for application
        events delivered by the core."""
        self._subscribers.append(callback)

    def start(self) -> None:
        """Run the core's start handler (call once, after wiring)."""
        self._apply(self.core.on_start(self.sim.now), "on_start")

    # -- application entry points ------------------------------------------------

    def request(self) -> None:
        """The application at this node asks for the token."""
        if self._crashed:
            return
        self._apply(self.core.on_request(self.sim.now), "on_request")

    def release(self) -> None:
        """The application releases a held grant."""
        if self._crashed:
            return
        self._apply(self.core.on_release(self.sim.now), "on_release")

    # -- failure injection ---------------------------------------------------------

    def crash(self) -> None:
        """Crash-stop this node: cancel timers, drop future deliveries."""
        self._crashed = True
        self.network.crash(self.node_id)
        if self.sanitizer is not None:
            self.sanitizer.mark_crashed(self.node_id)
        for event in self._timers.values():
            event.cancel()
        self._timers.clear()

    def recover(self) -> None:
        """Clear the crash flag (the core keeps its pre-crash state unless
        the caller replaces it)."""
        self._crashed = False
        self.network.recover(self.node_id)
        if self.sanitizer is not None:
            self.sanitizer.mark_recovered(self.node_id)

    @property
    def crashed(self) -> bool:
        """True while this node is crash-stopped."""
        return self._crashed

    # -- effect interpretation ---------------------------------------------------

    def _on_network_message(self, src: int, msg: object) -> None:
        if self._crashed:
            return
        self._apply(self.core.on_message(src, msg, self.sim.now), "on_message", msg)

    def _on_timer(self, key: Hashable) -> None:
        if self._crashed:
            return
        self._timers.pop(key, None)
        self._apply(self.core.on_timer(key, self.sim.now), "on_timer", key)

    def _apply(
        self, effects: List[Effect], origin: str = "<direct>", payload: object = None
    ) -> None:
        # Hot path: effects are final dataclasses, so exact type checks are
        # both correct and cheaper than isinstance; Send dominates.
        node_id = self.node_id
        net_send = self.network.send
        for effect in effects:
            kind = type(effect)
            if kind is Send:
                net_send(node_id, effect.dst, effect.msg)
            elif kind is SetTimer:
                previous = self._timers.pop(effect.key, None)
                if previous is not None:
                    previous.cancel()
                self._timers[effect.key] = self.sim.schedule(
                    effect.delay, self._on_timer, effect.key
                )
            elif kind is CancelTimer:
                event = self._timers.pop(effect.key, None)
                if event is not None:
                    event.cancel()
            elif kind is Deliver:
                for callback in self._subscribers:
                    callback(node_id, effect.kind, effect.payload, self.sim.now)
            elif kind is Trace:
                pass  # tracing is a no-op in the DES driver
            else:
                self._apply_slow(effect)
        if self.sanitizer is not None:
            self.sanitizer.after_apply(self.core, origin, payload, self.sim.now)

    def _apply_slow(self, effect: Effect) -> None:
        """isinstance fallback for subclassed effect types."""
        if isinstance(effect, Send):
            self.network.send(self.node_id, effect.dst, effect.msg)
        elif isinstance(effect, SetTimer):
            previous = self._timers.pop(effect.key, None)
            if previous is not None:
                previous.cancel()
            self._timers[effect.key] = self.sim.schedule(
                effect.delay, self._on_timer, effect.key
            )
        elif isinstance(effect, CancelTimer):
            event = self._timers.pop(effect.key, None)
            if event is not None:
                event.cancel()
        elif isinstance(effect, Deliver):
            for callback in self._subscribers:
                callback(self.node_id, effect.kind, effect.payload, self.sim.now)
        elif isinstance(effect, Trace):
            pass
        else:
            raise SimulationError(f"unknown effect {effect!r}")
