"""Discrete-event simulation substrate: kernel, network, node driver."""

from repro.sim.driver import NodeDriver
from repro.sim.kernel import Event, Simulator
from repro.sim.network import (
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    Network,
    UniformDelay,
)

__all__ = [
    "ConstantDelay",
    "DelayModel",
    "Event",
    "ExponentialDelay",
    "Network",
    "NodeDriver",
    "Simulator",
    "UniformDelay",
]
