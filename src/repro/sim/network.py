"""Simulated network substrate.

A complete graph of nodes exchanging point-to-point messages with a
pluggable delay model.  The paper distinguishes two message classes
(Section 1): **expensive** messages (the token) whose delivery correctness
depends on, and **cheap** messages (search hints, traps, probes) that only
affect performance.  The network honours that split: loss and duplication
injection apply *only* to messages whose ``reliable`` attribute is false —
tests use this to demonstrate that safety never depends on cheap messages.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import NetworkError
from repro.sim.kernel import Simulator

__all__ = [
    "DelayModel",
    "ConstantDelay",
    "UniformDelay",
    "ExponentialDelay",
    "Network",
]


class DelayModel:
    """Base delay model: per-message latency in virtual time units."""

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        """Draw the latency for one ``src`` → ``dst`` message."""
        raise NotImplementedError


class ConstantDelay(DelayModel):
    """Every message takes exactly ``delay`` units — the paper's
    constant-cost model, and the default for all experiments."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay <= 0:
            raise NetworkError(f"delay must be positive, got {delay}")
        self.delay = delay

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        return self.delay


class UniformDelay(DelayModel):
    """Latency uniform in ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 < low <= high:
            raise NetworkError(f"need 0 < low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        return rng.uniform(self.low, self.high)


class ExponentialDelay(DelayModel):
    """Exponential latency with the given mean, floored at ``minimum``."""

    def __init__(self, mean: float, minimum: float = 0.01) -> None:
        if mean <= 0:
            raise NetworkError(f"mean must be positive, got {mean}")
        self.mean = mean
        self.minimum = minimum

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        return max(self.minimum, rng.expovariate(1.0 / self.mean))


class Network:
    """Point-to-point messaging over a complete graph.

    ``attach`` registers a delivery callback per node id.  ``send``
    schedules delivery after a sampled delay; loss/duplication apply only
    to unreliable messages.  ``partition``/``heal`` block node pairs
    symmetrically (blocked reliable messages are queued and delivered on
    heal — the paper assumes expensive messages eventually arrive; blocked
    cheap messages are dropped).
    """

    def __init__(
        self,
        sim: Simulator,
        rng: random.Random,
        delay: Optional[DelayModel] = None,
        loss_rate: float = 0.0,
        dup_rate: float = 0.0,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise NetworkError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if not 0.0 <= dup_rate < 1.0:
            raise NetworkError(f"dup_rate must be in [0, 1), got {dup_rate}")
        self.sim = sim
        self.rng = rng
        self.delay = delay if delay is not None else ConstantDelay(1.0)
        self.loss_rate = loss_rate
        self.dup_rate = dup_rate
        self._handlers: Dict[int, Callable[[int, object], None]] = {}
        self._blocked: Set[Tuple[int, int]] = set()
        self._parked: List[Tuple[int, int, object]] = []
        self._down: Set[int] = set()
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0
        self.on_send: List[Callable[[int, int, object], None]] = []

    def attach(self, node_id: int, handler: Callable[[int, object], None]) -> None:
        """Register ``handler(src, msg)`` as node ``node_id``'s inbox."""
        if node_id in self._handlers:
            raise NetworkError(f"node {node_id} already attached")
        self._handlers[node_id] = handler

    def detach(self, node_id: int) -> None:
        """Remove a node (its queued deliveries are discarded on arrival)."""
        self._handlers.pop(node_id, None)

    def crash(self, node_id: int) -> None:
        """Mark a node as crashed: everything sent to it disappears."""
        self._down.add(node_id)

    def recover(self, node_id: int) -> None:
        """Clear a node's crashed flag."""
        self._down.discard(node_id)

    def is_down(self, node_id: int) -> bool:
        """True when the node is marked crashed."""
        return node_id in self._down

    def partition(self, a: int, b: int) -> None:
        """Block the (a, b) link in both directions."""
        self._blocked.add((min(a, b), max(a, b)))

    def heal(self, a: int, b: int) -> None:
        """Unblock the (a, b) link and flush parked reliable messages."""
        self._blocked.discard((min(a, b), max(a, b)))
        flush = [(s, d, m) for (s, d, m) in self._parked
                 if {s, d} == {a, b}]
        self._parked = [p for p in self._parked if p not in flush]
        for src, dst, msg in flush:
            self._schedule_delivery(src, dst, msg)

    def _is_blocked(self, a: int, b: int) -> bool:
        return (min(a, b), max(a, b)) in self._blocked

    def send(self, src: int, dst: int, msg: object) -> None:
        """Send ``msg`` from ``src`` to ``dst`` (self-sends are allowed and
        still incur one delay — a message is a message)."""
        if src not in self._handlers and src not in self._down:
            raise NetworkError(f"unknown sender {src}")
        self.sent_count += 1
        for hook in self.on_send:
            hook(src, dst, msg)
        reliable = bool(getattr(msg, "reliable", True))
        if self._blocked and self._is_blocked(src, dst):
            if reliable:
                self._parked.append((src, dst, msg))
            else:
                self.dropped_count += 1
            return
        if not reliable:
            if self.loss_rate and self.rng.random() < self.loss_rate:
                self.dropped_count += 1
                return
            if self.dup_rate and self.rng.random() < self.dup_rate:
                self._schedule_delivery(src, dst, msg)
        self._schedule_delivery(src, dst, msg)

    def _schedule_delivery(self, src: int, dst: int, msg: object) -> None:
        # Deliveries are never cancelled: use the kernel's handle-free fast
        # path.  The constant-delay model (the experiments' default) skips
        # the per-message sample() call entirely.
        delay = self.delay
        if type(delay) is ConstantDelay:
            latency = delay.delay
        else:
            latency = delay.sample(self.rng, src, dst)
        self.sim.post(latency, self._deliver, src, dst, msg)

    def _deliver(self, src: int, dst: int, msg: object) -> None:
        if dst in self._down:
            self.dropped_count += 1
            return
        handler = self._handlers.get(dst)
        if handler is None:
            self.dropped_count += 1
            return
        self.delivered_count += 1
        handler(src, msg)
