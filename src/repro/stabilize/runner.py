"""Driving stabilization episodes: the bench/CLI measurement helper.

:func:`measure_convergence` runs one stabilizing cluster through a
series of corruption injections spaced far enough apart that each
episode closes before the next begins, and reports the convergence-time
distribution the ``stabilize_n9`` bench pins.  Everything is
deterministic: corruption arguments are explicit, background requests
follow an arithmetic schedule, and network delays are constant — two
calls with the same arguments produce the same samples bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cluster import Cluster
from repro.core.config import ProtocolConfig
from repro.faults.corruption import corrupt_core
from repro.metrics.stats import percentile
from repro.sim.network import ConstantDelay
from repro.stabilize.bound import convergence_bound
from repro.stabilize.oracle import ConvergenceOracle

__all__ = ["default_stabilize_config", "measure_convergence"]


def default_stabilize_config() -> ProtocolConfig:
    """The reference configuration for stabilization measurements."""
    return ProtocolConfig(
        trap_gc="rotation",
        regen_timeout=40.0,
        census_window=5.0,
        loan_timeout=30.0,
        stabilize_watch=20.0,
        stabilize_reset=True,
    )


def measure_convergence(
    n: int,
    corruptions: Sequence[Tuple[str, int, int]],
    seed: int = 0,
    config: Optional[ProtocolConfig] = None,
    delay: float = 1.0,
    request_period: float = 20.0,
) -> Dict[str, object]:
    """Convergence-time distribution over a corruption series.

    ``corruptions`` is a sequence of ``(kind, victim, arg)`` triples;
    each is injected ``1.25 x convergence_bound`` after the previous so
    episodes never overlap, with a light deterministic request load
    running throughout (an idle cluster would hide queue/served
    corruption entirely).  Returns the episode samples plus the
    percentiles the bench records.
    """
    if config is None:
        config = default_stabilize_config()
    bound = convergence_bound(config, n, delay)
    spacing = bound * 1.25
    cluster = Cluster.build(
        "stabilizing", n,
        seed=seed,
        config=config,
        delay=ConstantDelay(delay),
        sanitize=False,
    )
    oracle = ConvergenceOracle(cluster, bound=bound)
    oracle.attach()

    horizon = spacing * (len(corruptions) + 2)
    tick = 0
    t = request_period
    while t < horizon:
        cluster.sim.schedule_at(t, cluster.request, (tick * 3 + 1) % n)
        tick += 1
        t += request_period

    def _inject(kind: str, victim: int, arg: int) -> None:
        corrupt_core(cluster.drivers[victim].core, kind, arg, n=n)
        oracle.inject(cluster.sim.now)

    for i, (kind, victim, arg) in enumerate(corruptions):
        cluster.sim.schedule_at(spacing * (i + 1), _inject,
                                kind, victim % n, arg)

    cluster.run(until=horizon, max_events=2_000_000)
    oracle.finalize(cluster.sim.now)

    samples: List[float] = list(oracle.tracker.samples)
    return {
        "n": n,
        "bound": bound,
        "injections": oracle.injections,
        "episodes": len(samples),
        "samples": samples,
        "stabilization_p50": percentile(samples, 50.0),
        "stabilization_p99": percentile(samples, 99.0),
        "max_stabilization_time": max(samples) if samples else 0.0,
        "grants": cluster.responsiveness.grants(),
    }
