"""repro.stabilize — the self-stabilization layer.

Dijkstra-style self-stabilization for the adaptive token-passing
protocols: from *any* state — any number of tokens, any clock or epoch
scramble, any queue garbage — the cluster must converge back to the
single-token legitimate states within a bounded time, and stay there.

Three pieces:

- :class:`~repro.stabilize.core.StabilizingCore` — the stabilizing
  protocol variant (local repair, epoch-fenced token reduction, and a
  staggered token watchdog) layered on the fault-tolerant core;
- :class:`~repro.stabilize.oracle.ConvergenceOracle` — the convergence
  verdict: bounded convergence + closure over the token-unit census,
  with :func:`~repro.stabilize.bound.convergence_bound` supplying the
  bound from the protocol timers;
- :func:`~repro.stabilize.runner.measure_convergence` — the
  deterministic episode driver behind the ``stabilize_n9`` bench.

The corruption injector itself lives in :mod:`repro.faults.corruption`
(it is a fault model, not a protocol), and ``repro stabilize`` /
``repro fuzz --profile stabilize`` exercise all of it end to end.
"""

from repro.stabilize.bound import convergence_bound, delay_ceiling
from repro.stabilize.core import StabilizingCore
from repro.stabilize.oracle import ConvergenceOracle
from repro.stabilize.runner import default_stabilize_config, measure_convergence

__all__ = [
    "ConvergenceOracle",
    "StabilizingCore",
    "convergence_bound",
    "default_stabilize_config",
    "delay_ceiling",
    "measure_convergence",
]
