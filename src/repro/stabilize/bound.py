"""Convergence-time bound for the stabilizing protocol.

Self-stabilization promises convergence within a *bounded* number of
steps from any state; the oracle needs that bound as wall-clock virtual
time.  :func:`convergence_bound` derives it from the knobs that govern
the worst recovery chain the corruption injector can set up:

- a corrupted epoch fence can sit up to ``4n`` epochs above the fleet
  (see :mod:`repro.faults.corruption`), so up to ``~5`` watchdog mint
  cycles may be needed before a minted epoch outranks it — though the
  stale-token absorption rule usually short-circuits this in one lap;
- each mint cycle costs at most two (staggered) watchdog periods plus a
  census window, and each duplicate-reduction lap costs ``n`` maximum
  message delays;
- an outstanding loan adds ``loan_timeout`` before the lender reclaims,
  and demand-driven detection adds ``regen_timeout``.

The result is deliberately generous — the bound certifies *eventual*
convergence, the ``stabilize_n9`` bench pins the actual percentiles.
"""

from __future__ import annotations

from repro.core.config import ProtocolConfig

__all__ = ["convergence_bound", "delay_ceiling"]


def delay_ceiling(delay_spec: dict) -> float:
    """Upper bound on one message delay for a bounded delay model.

    The watchdog (and therefore the bound) is only meaningful when
    delays are bounded: an exponential tail can always impersonate a
    dead token.  Exponential models get a pragmatic 6x-mean ceiling —
    callers that need certainty use constant/uniform models.
    """
    kind = delay_spec.get("kind", "constant")
    if kind == "constant":
        return float(delay_spec.get("delay", 1.0))
    if kind == "uniform":
        return float(delay_spec.get("high", 2.0))
    return 6.0 * float(delay_spec.get("mean", 1.0))


def convergence_bound(config: ProtocolConfig, n: int,
                      delay_max: float) -> float:
    """Virtual-time budget within which every injected state must have
    converged back to the single-token predicate.  An explicit
    ``config.stabilize_bound`` wins; otherwise derive from the timers."""
    if config.stabilize_bound > 0:
        return config.stabilize_bound
    watch = config.stabilize_watch or 25.0
    census = config.census_window
    laps = (4 * n + 8) * delay_max
    return (6.0 * watch + 6.0 * census + laps
            + config.loan_timeout + config.regen_timeout)
