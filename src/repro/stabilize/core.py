"""The self-stabilizing protocol variant.

:class:`StabilizingCore` layers three convergence mechanisms over the
fault-tolerant adaptive core, so that from *any* state the corruption
injector (:mod:`repro.faults.corruption`) can produce, the cluster
returns to — and stays in — the single-token legitimate states:

1. **Local detection-and-correction** (Herman's safe-register checks,
   arXiv:1101.1680, transposed to message passing): every handler entry
   first repairs locally-refutable inconsistencies — a token lent to
   oneself, a grant sequence ahead of the request sequence, negative
   clocks, a service flag with nothing to serve.  When a repair fires
   and ``config.stabilize_reset`` is on, the node additionally reloads
   its *derivable* volatile state (traps, queued searches, served-map
   carry, census bookkeeping) from scratch — the reloading-wave reset of
   arXiv:1109.3561 in local form: all of it is an optimization cache the
   protocol rebuilds through normal operation.

2. **Epoch-fenced token reduction** (k tokens -> 1): a node that holds
   or has lent a token *absorbs* any other token it encounters — an
   arriving same-epoch ``TokenMsg``, a stale-epoch ``TokenMsg``, or a
   loan addressed to itself — merging clocks and served-maps and minting
   a strictly higher epoch that retires every remaining copy on first
   contact.  Two same-epoch tokens rotating antipodally never meet, so
   the distinguished ring head additionally tracks the round number of
   each arrival: within one epoch, rounds at the head are strictly
   increasing in legitimate runs, and a non-increasing arrival is proof
   of duplication — absorbed on the spot.  A *stale* token arriving at a
   token-less node is absorbed rather than discarded, so a corrupted
   epoch fence swallows at most one in-flight copy instead of eating
   every regeneration attempt.

3. **A token watchdog** (the regeneration safety net made unconditional):
   demand-driven detection — the paper's design, kept — only notices a
   lost token when somebody wants it, and a corrupted state can kill the
   token with nobody ready.  Every node therefore runs a who-has census
   on a staggered ``config.stabilize_watch`` cadence, holder or not, and
   mints a fenced replacement after two consecutive censuses that show
   neither a claimed token nor visit-clock progress.  Staggering plus
   the two-census progress requirement keeps the watchdog quiet while
   any token lives, *provided message delays are bounded* by roughly the
   watch period — the classic partial-synchrony caveat of every
   timeout-based detector.
"""

from __future__ import annotations

from typing import Hashable, List, Optional

from repro.core.config import ProtocolConfig
from repro.core.effects import Deliver, Effect, Send, SetTimer
from repro.core.messages import LoanMsg, TokenMsg, WhoHasMsg, WhoHasReplyMsg
from repro.core.traps import TrapStore
from repro.faults.detector import Census
from repro.faults.regeneration import FaultTolerantCore

__all__ = ["StabilizingCore"]

_WATCH = "stab_watch"
_WCENSUS = "stab_census"


class StabilizingCore(FaultTolerantCore):
    """Fault-tolerant adaptive protocol + self-stabilization."""

    protocol_name = "stabilizing"

    def __init__(self, node_id: int, config: ProtocolConfig,
                 initial_holder: int = 0) -> None:
        super().__init__(node_id, config, initial_holder)
        #: Duplicate detection at the ring head: highest round number
        #: seen arriving, per epoch (reset whenever the epoch moves).
        self._round_seen = 0
        self._seen_epoch = 0
        #: Watchdog census state, separate from the demand-driven one so
        #: a ready requester's census never collides with the watchdog's.
        self._watch_census: Optional[Census] = None
        self._watch_base: Optional[int] = None
        #: Counters for tests/metrics.
        self.repairs = 0
        self.absorptions = 0

    # -- local detection and correction --------------------------------------

    def _repair(self, now: float) -> bool:
        """Clamp locally-refutable inconsistencies; returns True when any
        repair fired (triggering the optional volatile-state reload)."""
        fixed = 0
        if self.lent_to == self.node_id:
            self.lent_to = None
            self.has_token = True
            fixed += 1
        if self.has_token and self.lent_to is not None:
            self.lent_to = None
            fixed += 1
        if self.clock < 0:
            self.clock = 0
            fixed += 1
        if self.last_visit < -1:
            self.last_visit = -1
            fixed += 1
        if self.round_no < 0:
            self.round_no = 0
            fixed += 1
        if self.has_token and self.clock < self.last_visit:
            self.clock = self.last_visit
            fixed += 1
        if self.granted_seq > self.req_seq:
            self.granted_seq = self.req_seq
            fixed += 1
        if self.outstanding and not self.ready:
            self.outstanding = False
            fixed += 1
        if self._serving and not (self.has_token
                                  or self._loan_pending is not None):
            self._serving = False
            fixed += 1
        if not fixed:
            return False
        self.repairs += fixed
        if self.config.stabilize_reset:
            # Reloading-wave-lite: every structure below is a rebuildable
            # optimization cache; dropping it costs performance, never
            # safety (dummy loans and re-searches recover the rest).
            self.traps = TrapStore()
            self._gimme_queue = []
            self._gimme_inflight = False
            self._served_carry = ()
            self._ms_in = self._ms_base = None
            self._ms_out = ()
            self._census = None
            self._watch_census = None
        return True

    # -- token reduction ------------------------------------------------------

    def _absorb(self, msg: object, now: float) -> List[Effect]:
        """Take an encountered token unit as our own and fence the world:
        the minted epoch strictly outranks every other copy, so survivors
        retire on first contact (k tokens -> 1)."""
        self.absorptions += 1
        self.has_token = True
        self.lent_to = None
        self.clock = max(self.clock, getattr(msg, "clock", 0))
        self.last_visit = self.clock
        self.round_no = max(self.round_no, getattr(msg, "round_no", 0))
        self._merge_served(getattr(msg, "served", ()))
        self.epoch = self._next_epoch(self.node_id)
        self._gc_traps()
        effects: List[Effect] = [
            Deliver("stabilized", (self.node_id, self.epoch)),
            Deliver("token_visit", (self.node_id, self.clock)),
        ]
        effects.extend(self._release_gimme_budget(now))
        effects.extend(self._advance(now))
        return effects

    def on_message(self, src: int, msg: object, now: float) -> List[Effect]:
        self._repair(now)
        if isinstance(msg, TokenMsg) and \
                getattr(msg, "epoch", 0) < self.epoch:
            if self.has_token or self.lent_to is not None:
                return []  # reduction: the stale copy dies on contact
            # Rescue the unit: a corrupted-high fence would otherwise
            # swallow every token that ever reaches this node.
            return self._absorb(msg, now)
        return super().on_message(src, msg, now)

    def _on_token(self, msg: TokenMsg, now: float) -> List[Effect]:
        duplicate = self.has_token or self.lent_to is not None
        if self.node_id == self.ring_first():
            if self._seen_epoch != self.epoch:
                self._seen_epoch = self.epoch
                self._round_seen = msg.round_no
            elif msg.round_no <= self._round_seen:
                # Within one epoch, arrivals at the ring head carry
                # strictly increasing rounds; a repeat means two copies
                # are rotating (possibly antipodally, never colliding).
                duplicate = True
            else:
                self._round_seen = msg.round_no
        if duplicate:
            return self._absorb(msg, now)
        return super()._on_token(msg, now)

    def _on_loan(self, src: int, msg: LoanMsg, now: float) -> List[Effect]:
        if msg.requester == self.node_id and (
                self.has_token or self.lent_to is not None):
            # A loan reaching a node that already has a token is a second
            # unit; returning it would perpetuate the duplication.
            return self._absorb(msg, now)
        return super()._on_loan(src, msg, now)

    # -- watchdog -------------------------------------------------------------

    def on_start(self, now: float) -> List[Effect]:
        effects = super().on_start(now)
        if self.config.stabilize_watch > 0:
            effects.append(SetTimer(_WATCH, self._watch_period()))
        return effects

    def _watch_period(self) -> float:
        """Per-node staggered cadence so censuses (and mints) serialize."""
        n = max(self.ring_size(), 1)
        return self.config.stabilize_watch * (1.0 + self.node_id / (2.0 * n))

    def on_request(self, now: float) -> List[Effect]:
        self._repair(now)
        return super().on_request(now)

    def on_timer(self, key: Hashable, now: float) -> List[Effect]:
        self._repair(now)
        if key == _WATCH:
            return self._on_watch(now)
        if isinstance(key, tuple) and key and key[0] == _WCENSUS:
            return self._on_watch_deadline(key[1], now)
        return super().on_timer(key, now)

    def _on_watch(self, now: float) -> List[Effect]:
        if self.config.stabilize_watch <= 0:
            return []
        effects: List[Effect] = [SetTimer(_WATCH, self._watch_period())]
        if self.has_token or self.lent_to is not None \
                or self._loan_pending is not None:
            self._watch_base = None
            return effects
        if self._watch_census is not None:
            return effects  # previous census still collecting
        population = [x for x in self._ring_members() if x != self.node_id]
        if not population:
            # Solitary node: nothing to poll; mint directly if tokenless.
            effects.extend(self._watch_mint(now, self.last_visit))
            return effects
        self._probe_seq += 1
        self._watch_census = Census(self.node_id, self._probe_seq,
                                    population)
        effects.extend(
            Send(x, WhoHasMsg(origin=self.node_id,
                              probe_seq=self._probe_seq))
            for x in population
        )
        effects.append(SetTimer((_WCENSUS, self._probe_seq),
                                self.config.census_window))
        return effects

    def _on_who_has_reply(self, src: int,
                          msg: WhoHasReplyMsg) -> List[Effect]:
        census = self._watch_census
        if census is not None and msg.probe_seq == census.probe_seq:
            census.record(src, msg.last_clock, msg.has_token)
            return []
        return super()._on_who_has_reply(src, msg)

    def _on_watch_deadline(self, probe_seq: int, now: float) -> List[Effect]:
        census = self._watch_census
        if census is None or census.probe_seq != probe_seq:
            return []
        self._watch_census = None
        if self.has_token or self.lent_to is not None \
                or self._loan_pending is not None:
            self._watch_base = None
            return []
        if census.token_alive(False):
            self._watch_base = None
            return []
        _, fleet_max = census.freshest(self.last_visit)
        if self._watch_base is not None and fleet_max <= self._watch_base:
            # Two consecutive censuses: no claimed token, no clock
            # progress.  With bounded delays a live token cannot hide
            # through both — mint a fenced replacement.
            self._watch_base = None
            return self._watch_mint(now, fleet_max)
        self._watch_base = fleet_max
        return []

    def _watch_mint(self, now: float, fleet_max: int) -> List[Effect]:
        if self.has_token or self.lent_to is not None:
            return []
        self.epoch = self._next_epoch(self.node_id)
        self.has_token = True
        self.clock = max(self.clock, fleet_max) + self.ring_size()
        self.round_no = self.clock // max(self.ring_size(), 1)
        self.last_visit = self.clock
        effects: List[Effect] = [
            Deliver("regenerated", (self.node_id, self.epoch)),
            Deliver("token_visit", (self.node_id, self.clock)),
        ]
        effects.extend(self._release_gimme_budget(now))
        effects.extend(self._advance(now))
        return effects
