"""The convergence oracle: closure + bounded convergence checking.

The plain :class:`~repro.fuzz.oracle.InvariantOracle` proves *safety
from legal states*: its shadow history, hop-clock, and conservation
checks assume the run started legitimately and flag the first deviation.
Under arbitrary-state corruption every one of those checks would fire
instantly and tell us nothing — the interesting property is no longer
"nothing illegal ever happens" but Dijkstra's pair:

- **convergence** — from any injected state, the cluster re-enters the
  legitimate-state predicate within a bounded stabilization time;
- **closure** — once legitimate (and absent further injections), it
  stays legitimate forever.

:class:`ConvergenceOracle` reuses the parent's token-unit census (the
per-epoch holder/borrower/in-flight bookkeeping and its delivery-time
interception) but replaces the verdict: the **legitimate-state
predicate** is *exactly one token unit in the whole system, across all
epochs* — one holder, or one borrower, or one lineage message in
flight.  Anything else (zero units, or k > 1 in any combination) is
illegitimate, and the oracle tracks how long illegitimacy persists
after the most recent injection.

Episode protocol: the run starts with an implicit injection at t=0 (the
initial state is just another arbitrary state); every fault the harness
applies calls :meth:`inject`.  An episode *closes* once the bound has
elapsed with the predicate holding; the interval from injection to the
last entry into legitimacy is the ``stabilization_time`` sample.  After
an episode closes, any illegitimacy before the next injection is a
**closure** violation; illegitimacy persisting past the bound is a
**convergence** violation.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.cluster import Cluster
from repro.core.messages import GimmeMsg, TokenMsg
from repro.fuzz.oracle import InvariantOracle
from repro.metrics.tracing import StabilizationTracker

__all__ = ["ConvergenceOracle"]


class ConvergenceOracle(InvariantOracle):
    """Closure/convergence verdict over the token-unit census."""

    def __init__(self, cluster: Cluster, protocol: str = "stabilizing",
                 bound: float = 0.0) -> None:
        super().__init__(cluster, protocol=protocol, strict=False)
        self.bound = bound
        self.tracker = StabilizationTracker()
        self.injections = 0
        #: Time of the injection whose episode is still open (t=0: the
        #: arbitrary initial state counts as the first injection).
        self._pending: Optional[float] = 0.0
        #: Start of the current unbroken stretch of legitimacy.
        self._legit_since: Optional[float] = None
        #: True once at least one episode has closed (closure armed).
        self._settled = False

    # -- injections -----------------------------------------------------------

    def inject(self, now: float) -> None:
        """A fault (corruption or classic) was just applied: (re)open the
        episode and resync the shadow state the mutation invalidated."""
        self.injections += 1
        self._pending = now
        self._legit_since = None
        for node, driver in self.cluster.drivers.items():
            last = getattr(driver.core, "last_visit", None)
            if last is not None:
                self._seen[node] = last
        self._observe(now)

    # -- neutralized parent checks --------------------------------------------
    #
    # Send-side semantic checks (shadow divergence, hop clocks, search
    # stamps/directions) presume legal history; corrupted state violates
    # them by construction, so they carry no signal here.  The lineage
    # *counting* in _on_send/_deliver is kept — the unit census needs it.

    def _check_token_send(self, src: int, dst: int, msg: TokenMsg) -> None:
        return

    def _check_gimme_send(self, src: int, dst: int, msg: GimmeMsg) -> None:
        return

    # -- the verdict ----------------------------------------------------------

    def _unit_total(self) -> int:
        units = self._units()
        return sum(len(owners) for owners in units.values())

    def _check_conservation(self) -> None:
        self.checks += 1
        self._observe(self.cluster.sim.now)

    def _observe(self, now: float) -> None:
        total = self._unit_total()
        legitimate = total == 1
        if self._pending is not None:
            if legitimate:
                if self._legit_since is None:
                    self._legit_since = now
                if now - self._pending >= self.bound:
                    # Converged and held for the whole bound: close.
                    self.tracker.record(self._pending, self._legit_since)
                    self._pending = None
                    self._settled = True
            else:
                self._legit_since = None
                if now - self._pending > self.bound:
                    self._fail(
                        "convergence",
                        f"{total} token units "
                        f"{now - self._pending:.1f} after the last "
                        f"injection (bound {self.bound:.1f}): the cluster "
                        f"failed to stabilize",
                        units=self._units(), total=total,
                        injected_at=self._pending,
                    )
        elif not legitimate:
            self._fail(
                "closure",
                f"left the legitimate predicate after stabilizing: "
                f"{total} token units with no injection pending",
                units=self._units(), total=total,
            )

    def finalize(self, now: float) -> None:
        """End-of-run verdict: an open episode must be legitimate (the
        harness guarantees every injection leaves at least ``bound`` of
        horizon, so illegitimacy here is a genuine failure)."""
        if self._pending is None:
            return
        total = self._unit_total()
        if total != 1:
            self._fail(
                "convergence",
                f"run ended {now - self._pending:.1f} after the last "
                f"injection with {total} token units",
                units=self._units(), total=total,
                injected_at=self._pending,
            )
        self.tracker.record(self._pending, self._legit_since)
        self._pending = None
        self._settled = True

    def stabilization(self) -> Dict[str, float]:
        """The ``stabilization_time`` metric block for reports."""
        doc = self.tracker.summary()
        doc["injections"] = float(self.injections)
        doc["bound"] = self.bound
        return doc
