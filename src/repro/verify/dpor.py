"""Dynamic partial-order reduction for the bounded explorers.

Interleavings of independent transitions reach the same state in any
order, so full BFS re-executes the same diamonds over and over.  This
module prunes them with two DPOR modes layered on the machine-checked
independence relation of :mod:`repro.verify.independence`:

- ``sleep`` — sleep sets only (Godefroid).  A transition goes to sleep in
  a child when an independent sibling already explored it from the
  parent; sleeping transitions are skipped, never the states they lead
  to.  Guarantee: the *exact* reachable-state set of full exploration
  (asserted by :func:`validate_dpor` and the tier-1 tests) with fewer
  executed transitions.  Because every state must still be discovered,
  the saving is bounded by the graph's edges-per-state ratio.
- ``persistent`` — sleep sets plus persistent-set selection: at each
  state only a conflict-closed subset of the enabled transitions is
  expanded.  This prunes intermediate interleaving states too, breaking
  the edges-per-state ceiling (≥5x on BinarySearch at n=4); the visited
  set is a subset of the reachable states that still covers every
  deadlock, and the paper's safety properties are re-checked on every
  state it does visit.

Since states are cached (this is stateful DPOR), a state reached again
with a *smaller* sleep set must be re-expanded: transitions that slept on
the first visit may be live on the second.  The stored sleep set of a
state therefore shrinks monotonically (intersection on revisit), and a
visit re-enqueues whenever it wakes a previously sleeping transition.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, FrozenSet, List, NamedTuple, Optional, Tuple

from repro.errors import VerifyError
from repro.specs.modelcheck import explore_graph
from repro.trs.engine import Rewriter
from repro.trs.terms import Term
from repro.verify.independence import (IndependenceRelation, InstanceFootprint,
                                       instance_footprint)

__all__ = ["DporResult", "explore_dpor", "validate_dpor"]

_MODES = ("sleep", "persistent")


class DporResult(NamedTuple):
    """Outcome of a reduced exploration."""

    mode: str                      #: "sleep" or "persistent"
    states: int                    #: distinct states visited
    executed: int                  #: transitions actually executed
    complete: bool                 #: frontier exhausted within max_states
    state_set: FrozenSet[Term]     #: the visited states themselves


def _enabled(rewriter: Rewriter, relation: IndependenceRelation,
             state: Term) -> "Dict[Tuple[Any, ...], InstanceFootprint]":
    """Enabled transition instances of ``state``, keyed by instance key.

    Instances sharing a key differ only in rest-variable partitioning and
    denote the same transition; the key includes choice-point bindings, so
    genuinely distinct choices stay distinct."""
    bykey: Dict[Tuple[Any, ...], InstanceFootprint] = {}
    for rule, binding in rewriter.instantiations(state):
        inst = instance_footprint(relation.footprints[rule.name], binding)
        bykey.setdefault(inst.key, inst)
    return bykey


def explore_dpor(
    rewriter: Rewriter,
    initial: Term,
    mode: str = "sleep",
    max_states: int = 1_000_000,
    relation: Optional[IndependenceRelation] = None,
    invariants: Optional[List[Callable[[Term], bool]]] = None,
) -> DporResult:
    """Explore from ``initial`` with partial-order reduction.

    ``invariants`` (if given) are checked on every visited state; a
    violation raises :class:`VerifyError` naming the failing checker.
    """
    if mode not in _MODES:
        raise VerifyError(f"unknown DPOR mode {mode!r}; expected one of "
                          f"{_MODES}")
    relation = relation or IndependenceRelation(rewriter.ruleset)
    checks = list(invariants or [])

    def check(state: Term) -> None:
        for inv in checks:
            if not inv(state):
                name = getattr(inv, "__name__", repr(inv))
                raise VerifyError(
                    f"invariant {name!r} violated during {mode} DPOR")

    check(initial)
    seen = {initial}
    #: stored[s] — the sleep set s was last expanded under; shrinks
    #: monotonically as revisits intersect in smaller sets.
    stored: Dict[Term, FrozenSet[Tuple[Any, ...]]] = {}
    #: expanded[s] — (key, instance) pairs already executed from s, in
    #: execution order (later children sleep on earlier independent ones).
    expanded: Dict[Term, List[Tuple[Tuple[Any, ...], InstanceFootprint]]] = {}
    work: "deque" = deque([(initial, frozenset())])
    executed = 0
    complete = True
    while work:
        state, sleep_in = work.popleft()
        bykey = _enabled(rewriter, relation, state)
        done = expanded.setdefault(state, [])
        done_keys = {k for k, _ in done}
        if state in stored:
            stored[state] = stored[state] & sleep_in
        else:
            stored[state] = frozenset(sleep_in)
        to_expand = [k for k in bykey
                     if k not in sleep_in and k not in done_keys]
        if mode == "persistent" and to_expand:
            # Persistent set: close the first candidate over instance
            # conflicts among *all* enabled transitions, then expand only
            # candidates inside the closure.  Everything outside commutes
            # with the whole set and is covered from a successor.
            pset = {to_expand[0]}
            changed = True
            while changed:
                changed = False
                for k, inst in bykey.items():
                    if k in pset:
                        continue
                    for p in pset:
                        if not relation.instances_independent(
                                inst, bykey[p]):
                            pset.add(k)
                            changed = True
                            break
            to_expand = [k for k in to_expand if k in pset]
        for key in to_expand:
            inst = bykey[key]
            succ = rewriter.apply(
                state, rewriter.ruleset[inst.rule_name], inst.binding)
            if succ is None:        # where-clause veto: not actually enabled
                continue
            executed += 1
            child_sleep = set()
            for z in sleep_in:
                zt = bykey.get(z)
                if zt is not None and relation.instances_independent(zt, inst):
                    child_sleep.add(z)
            for pk, pt in done:
                if relation.instances_independent(pt, inst):
                    child_sleep.add(pk)
            done.append((key, inst))
            frozen = frozenset(child_sleep)
            if succ not in seen:
                check(succ)
                seen.add(succ)
                work.append((succ, frozen))
                if len(seen) >= max_states:
                    return DporResult(mode, len(seen), executed, False,
                                      frozenset(seen))
            else:
                old = stored.get(succ)
                if old is None or not (old <= frozen):
                    # The revisit wakes transitions that slept before (or
                    # the state is still queued unexpanded) — re-enqueue.
                    work.append((succ, frozen))
    return DporResult(mode, len(seen), executed, complete, frozenset(seen))


def validate_dpor(
    rewriter: Rewriter,
    initial: Term,
    max_states: int = 1_000_000,
    relation: Optional[IndependenceRelation] = None,
) -> Dict[str, Any]:
    """Self-check: sleep-set DPOR must visit *exactly* the reachable states.

    Runs full exploration and sleep-mode DPOR side by side and compares
    the state sets.  Returns a report dict; ``report["exact"]`` is the
    verdict, with missing/extra counts for diagnosis when it fails."""
    graph = explore_graph(rewriter, initial, max_states=max_states)
    reduced = explore_dpor(rewriter, initial, mode="sleep",
                           max_states=max_states, relation=relation)
    full_set = frozenset(graph.states)
    missing = full_set - reduced.state_set
    extra = reduced.state_set - full_set
    return {
        "exact": (graph.complete and reduced.complete
                  and not missing and not extra),
        "full_states": len(full_set),
        "full_transitions": graph.transitions,
        "full_complete": graph.complete,
        "dpor_states": reduced.states,
        "dpor_executed": reduced.executed,
        "dpor_complete": reduced.complete,
        "missing": len(missing),
        "extra": len(extra),
    }
