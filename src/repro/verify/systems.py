"""Registry of verifiable systems for ``repro verify``.

Each :class:`VerifySystem` packages, for one system of the refinement
chain, everything the verifier needs *per instance size*: the rule set,
the initial state, the Section-4 bounding restrictions that make
exhaustive exploration terminate, which safety properties apply, and
whether the system is a unidirectional token-passing ring (the topology
the cutoff table of :mod:`repro.verify.cutoff` is stated for).

The bounds mirror the lint registry's sampling bounds but are
*parameterized by ring size n* — cutoff certification re-explores the
same system at every n up to the cutoff.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import VerifyError
from repro.specs import (system_binary_search, system_message_passing,
                         system_s, system_s1, system_search, system_token)
from repro.specs.modelcheck import bound_data, bound_requests, bound_visits
from repro.trs.rules import RuleSet
from repro.trs.terms import Term

__all__ = ["VerifySystem", "SYSTEMS", "get_system", "system_names"]


class VerifySystem:
    """One system of the chain, packaged for verification."""

    def __init__(
        self,
        key: str,
        title: str,
        ring: bool,
        bounded: Callable[[int], RuleSet],
        initial: Callable[[int], Term],
        properties: Tuple[str, ...],
        bounds: Optional[Dict[str, object]] = None,
        default_n: int = 3,
        cert_max_states: int = 200_000,
    ) -> None:
        self.key = key
        self.title = title
        #: True for the unidirectional token-passing ring systems — the
        #: topology the cutoff table applies to.
        self.ring = ring
        self.bounded = bounded      #: n -> bounded RuleSet
        self.initial = initial      #: n -> initial state
        self.properties = properties
        #: machine-readable record of the Section-4 guard narrowings the
        #: bounded rule set applies (goes into verdict artifacts).
        self.bounds = dict(bounds or {})
        self.default_n = default_n
        self.cert_max_states = cert_max_states


def _bs_bounded(n: int) -> RuleSet:
    rules = system_binary_search.make_rules(n, restricted=True)
    rules = bound_data(rules, 1, nodes=(1,))
    rules = bound_requests(rules, "5")
    return bound_visits(rules, 5, "4")


def _search_bounded(n: int) -> RuleSet:
    # No visit bound: Search's circulation (rule 4') extends the history
    # only when broadcasting pending data, which bound_data already caps.
    rules = system_search.make_rules(n, restricted=True)
    rules = bound_data(rules, 1, nodes=(1,))
    return bound_requests(rules, "5")


SYSTEMS: Dict[str, VerifySystem] = {
    s.key: s for s in (
        VerifySystem(
            "s", "System S (centralized)", ring=False,
            bounded=lambda n: bound_data(
                system_s.make_rules(restricted=True), 1),
            initial=system_s.initial_state,
            properties=("prefix-property",),
            bounds={"data_per_node": 1},
        ),
        VerifySystem(
            "s1", "System S1 (local histories)", ring=False,
            bounded=lambda n: bound_data(
                system_s1.make_rules(restricted=True), 1),
            initial=system_s1.initial_state,
            properties=("prefix-property",),
            bounds={"data_per_node": 1},
        ),
        VerifySystem(
            "token", "System Token (circulating token)", ring=True,
            bounded=lambda n: bound_data(
                system_token.make_rules(n, ring=True), 1),
            initial=system_token.initial_state,
            properties=("prefix-property",),
            bounds={"data_per_node": 1},
        ),
        VerifySystem(
            "message_passing", "System MP (token messages)", ring=True,
            bounded=lambda n: bound_data(
                system_message_passing.make_rules(n, ring=True), 1,
                nodes=(1,)),
            initial=system_message_passing.initial_state,
            properties=("prefix-property", "token-uniqueness"),
            bounds={"data_per_node": 1, "data_nodes": [1]},
        ),
        VerifySystem(
            "search", "System Search (linear gimme search)", ring=True,
            bounded=_search_bounded,
            initial=system_search.initial_state,
            properties=("prefix-property", "token-uniqueness",
                        "search-direction"),
            bounds={"data_per_node": 1, "data_nodes": [1],
                    "single_outstanding_request": True},
        ),
        VerifySystem(
            "binary_search", "System BinarySearch (Figure 8)", ring=True,
            bounded=_bs_bounded,
            initial=system_binary_search.initial_state,
            properties=("prefix-property", "token-uniqueness",
                        "search-direction"),
            bounds={"data_per_node": 1, "data_nodes": [1],
                    "single_outstanding_request": True,
                    "visit_limit": 5},
        ),
    )
}


def system_names() -> List[str]:
    return sorted(SYSTEMS)


def get_system(key: str) -> VerifySystem:
    try:
        return SYSTEMS[key]
    except KeyError:
        raise VerifyError(
            f"unknown system {key!r}; expected one of {system_names()}"
        ) from None
