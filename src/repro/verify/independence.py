"""Rule- and instance-level independence of TRS transitions.

Two transitions are **independent** when they commute from every state
that enables both: executing them in either order reaches the same state,
and neither disables the other.  Independence is what partial-order
reduction (:mod:`repro.verify.dpor`) prunes with, so a wrong relation
silently loses states — this module therefore pairs the *static* analysis
with a *dynamic* machine-check:

- :class:`IndependenceRelation` classifies every unordered rule pair by
  symbolic overlap of their footprints (:mod:`repro.verify.footprint`):
  ``independent`` when no consumed/read item patterns unify and no scalar
  component is written by one and touched by the other — every pair of
  instances commutes; otherwise ``conditional`` — commutation is decided
  per instance from the *ground* items the bindings actually matched.
- :func:`check_commutation` executes the diamond ``s → a → b`` vs
  ``s → b → a`` for a concrete instance pair and reports any divergence.
- :func:`validate_relation` sweeps sampled reachable states and
  diamond-checks every pair the relation claims independent — the
  machine-check that catches both analyzer bugs and bad assumptions
  (a deliberately wrong relation fails here; see the canary test).

Rules with opaque guard/where callables are *ambiguous*: their true read
set may exceed the patterns (rule 1's ``next_nonce`` scans the whole
state).  The relation records them as assumptions — surfaced as lint
findings and discharged dynamically — rather than pretending the static
footprint is the whole story.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.trs.engine import Rewriter
from repro.trs.rules import RuleContext, RuleSet
from repro.trs.terms import Bag, Seq, Struct, Term, Var, Wildcard
from repro.verify.footprint import (FRAME, BagFootprint, RuleFootprint,
                                    ScalarFootprint, footprints,
                                    probe_callable_reads)

__all__ = [
    "INDEPENDENT", "CONDITIONAL",
    "may_equal", "IndependenceRelation", "InstanceFootprint",
    "instance_footprint", "check_commutation", "validate_relation",
]

INDEPENDENT = "independent"
CONDITIONAL = "conditional"


def may_equal(a: Term, b: Term) -> bool:
    """Conservative unifiability: could patterns ``a`` and ``b`` denote the
    same ground item?  Variables and wildcards match anything (no binding
    consistency is tracked — over-approximation is the safe direction)."""
    if isinstance(a, (Var, Wildcard)) or isinstance(b, (Var, Wildcard)):
        return True
    if a == b:
        return True
    if isinstance(a, Struct) and isinstance(b, Struct):
        return (a.functor == b.functor and len(a.args) == len(b.args)
                and all(may_equal(x, y) for x, y in zip(a.args, b.args)))
    if isinstance(a, Seq) and isinstance(b, Seq):
        return (len(a.items) == len(b.items)
                and all(may_equal(x, y) for x, y in zip(a.items, b.items)))
    return False


def _items_overlap(xs: Sequence[Tuple[int, Term]],
                   ys: Sequence[Tuple[int, Term]]) -> bool:
    """Any pair of (field, item) entries in the same field that may match
    the same ground item?"""
    for fx, tx in xs:
        for fy, ty in ys:
            if fx == fy and may_equal(tx, ty):
                return True
    return False


class InstanceFootprint:
    """The ground footprint of one transition instance ``(rule, binding)``.

    ``key`` identifies the instance independently of how the bag-rest
    variables partition the untouched remainder: the rule name plus the
    bindings of the rule's key variables (and of any choice-point
    variables the binding carries beyond the LHS)."""

    __slots__ = ("rule_name", "binding", "key", "consumed", "read",
                 "scalar_writes", "scalar_touches")

    def __init__(
        self,
        rule_name: str,
        binding: Dict[str, Term],
        key: Tuple[Any, ...],
        consumed: Tuple[Tuple[int, Term], ...],
        read: Tuple[Tuple[int, Term], ...],
        scalar_writes: frozenset,
        scalar_touches: frozenset,
    ) -> None:
        self.rule_name = rule_name
        self.binding = binding
        self.key = key
        self.consumed = consumed
        self.read = read
        self.scalar_writes = scalar_writes
        self.scalar_touches = scalar_touches


def _ground(pattern: Term, binding: Dict[str, Term]) -> Term:
    """Substitute ``binding`` into ``pattern`` (wildcards and unbound
    variables survive — :func:`may_equal` treats them as wild)."""
    if isinstance(pattern, Var):
        return binding.get(pattern.name, pattern)
    if isinstance(pattern, Struct):
        args = tuple(_ground(a, binding) for a in pattern.args)
        return pattern if args == pattern.args else Struct(pattern.functor, args)
    if isinstance(pattern, Seq):
        items = tuple(_ground(a, binding) for a in pattern.items)
        return pattern if items == pattern.items else Seq(items)
    if isinstance(pattern, Bag):
        items = tuple(_ground(a, binding) for a in pattern.items)
        return pattern if items == pattern.items else Bag(items)
    return pattern


def instance_footprint(fp: RuleFootprint,
                       binding: Dict[str, Term]) -> InstanceFootprint:
    """Ground ``fp`` under ``binding`` and compute the instance key."""
    key_names = set(fp.key_vars)
    # Choice points merge extra bindings beyond the LHS variables (e.g.
    # System Token's rule 2 choosing the recipient ``y``); they change the
    # successor, so they are part of the instance identity.
    key_names.update(set(binding) - set(fp.rule.lhs_variables))
    key = (fp.name,) + tuple(
        (name, binding.get(name)) for name in sorted(key_names))
    consumed: List[Tuple[int, Term]] = []
    read: List[Tuple[int, Term]] = []
    writes: List[int] = []
    touches: List[int] = []
    for field in fp.fields:
        if isinstance(field, BagFootprint):
            for item in field.consumed:
                consumed.append((field.index, _ground(item, binding)))
            for item in field.read:
                read.append((field.index, _ground(item, binding)))
        elif isinstance(field, ScalarFootprint):
            if field.access == FRAME:
                continue
            touches.append(field.index)
            if field.access != "read":
                writes.append(field.index)
    return InstanceFootprint(fp.name, dict(binding), key, tuple(consumed),
                             tuple(read), frozenset(writes),
                             frozenset(touches))


class IndependenceRelation:
    """The machine-checkable independence relation of one rule set.

    Built statically from footprints; refined per instance; validated
    dynamically by :func:`validate_relation`.  ``overrides`` force a rule
    pair's instances (in)dependent — the hook the canary test uses to
    prove the validator catches a wrong relation."""

    def __init__(
        self,
        ruleset: RuleSet,
        ctx: Optional[RuleContext] = None,
        probe_states: Optional[Sequence[Term]] = None,
        overrides: Optional[Dict[Tuple[str, str], bool]] = None,
    ) -> None:
        self.ruleset = ruleset
        self.footprints = footprints(ruleset)
        self.overrides = {
            self._pair_key(a, b): v
            for (a, b), v in (overrides or {}).items()
        }
        #: rule -> component indices its opaque callables were observed to
        #: read beyond the matched items (empty when never probed).
        self.callable_reads: Dict[str, Set[int]] = {}
        if probe_states:
            for name, fp in self.footprints.items():
                if fp.opaque:
                    self.callable_reads[name] = probe_callable_reads(
                        fp, probe_states, ctx)
        self.pairs: Dict[Tuple[str, str], Dict[str, str]] = {}
        names = list(self.footprints)
        for i, a in enumerate(names):
            for b in names[i:]:
                self.pairs[self._pair_key(a, b)] = self._classify(
                    self.footprints[a], self.footprints[b])

    @staticmethod
    def _pair_key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def _classify(self, fa: RuleFootprint,
                  fb: RuleFootprint) -> Dict[str, str]:
        """Symbolic commutation check of a rule pair (pattern level)."""
        reasons: List[str] = []
        for sa in fa.scalar_fields():
            for sb in fb.scalar_fields():
                if sa.index != sb.index:
                    continue
                if sa.access == FRAME or sb.access == FRAME:
                    continue
                if "write" in (sa.access, sb.access):
                    reasons.append(
                        f"both touch scalar component {sa.index} "
                        f"and at least one writes it")
        for ba in fa.bag_fields():
            for bb in fb.bag_fields():
                if ba.index != bb.index:
                    continue
                pairs = [
                    (ba.consumed, bb.consumed, "consume/consume"),
                    (ba.consumed, bb.read, "consume/read"),
                    (ba.read, bb.consumed, "read/consume"),
                ]
                for xs, ys, kind in pairs:
                    if _items_overlap(
                            [(ba.index, t) for t in xs],
                            [(bb.index, t) for t in ys]):
                        reasons.append(
                            f"{kind} item patterns may overlap in bag "
                            f"component {ba.index}")
        if reasons:
            return {"status": CONDITIONAL, "reason": "; ".join(reasons)}
        return {"status": INDEPENDENT,
                "reason": "disjoint footprints at the pattern level"}

    # -- queries -------------------------------------------------------------

    def pair(self, a: str, b: str) -> Dict[str, str]:
        return self.pairs[self._pair_key(a, b)]

    def ambiguous_rules(self) -> Dict[str, Tuple[str, ...]]:
        """Rules whose static footprint under-approximates their reads."""
        return {name: fp.opaque
                for name, fp in sorted(self.footprints.items()) if fp.opaque}

    def instances_independent(self, ia: InstanceFootprint,
                              ib: InstanceFootprint) -> bool:
        """Do these two concrete transition instances commute?

        Instance refinement of the pair classification: statically
        independent pairs commute outright; conditional pairs commute when
        the ground items they consumed/read are disjoint and no scalar is
        written by one and touched by the other.  Production cannot
        conflict — adding items never disables a co-enabled instance nor
        changes what it rewrites (multiset semantics)."""
        override = self.overrides.get(
            self._pair_key(ia.rule_name, ib.rule_name))
        if override is not None:
            return override
        if self.pair(ia.rule_name, ib.rule_name)["status"] == INDEPENDENT:
            return True
        if ia.scalar_writes & ib.scalar_touches:
            return False
        if ib.scalar_writes & ia.scalar_touches:
            return False
        if _items_overlap(ia.consumed, ib.consumed):
            return False
        if _items_overlap(ia.consumed, ib.read):
            return False
        if _items_overlap(ib.consumed, ia.read):
            return False
        return True

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable relation (sorted keys; artifact-friendly)."""
        return {
            "rules": sorted(self.footprints),
            "pairs": {
                f"{a}|{b}": dict(verdict)
                for (a, b), verdict in sorted(self.pairs.items())
            },
            "ambiguous": {
                name: list(reasons)
                for name, reasons in self.ambiguous_rules().items()
            },
        }

    def summary(self) -> Dict[str, int]:
        statuses = [v["status"] for v in self.pairs.values()]
        return {
            "rules": len(self.footprints),
            "pairs": len(statuses),
            "independent": statuses.count(INDEPENDENT),
            "conditional": statuses.count(CONDITIONAL),
            "ambiguous_rules": len(self.ambiguous_rules()),
        }


def enumerate_instances(rewriter: Rewriter, relation: IndependenceRelation,
                        state: Term) -> List[InstanceFootprint]:
    """All enabled transition instances of ``state``, deduplicated by key
    (instances differing only in rest-variable partitioning collapse)."""
    out: List[InstanceFootprint] = []
    seen: Set[Tuple[Any, ...]] = set()
    for rule, binding in rewriter.instantiations(state):
        inst = instance_footprint(relation.footprints[rule.name], binding)
        if inst.key not in seen:
            seen.add(inst.key)
            out.append(inst)
    return out


def check_commutation(
    rewriter: Rewriter,
    state: Term,
    ia: InstanceFootprint,
    ib: InstanceFootprint,
) -> Optional[str]:
    """Execute the diamond for two co-enabled instances; None on success.

    Failure reasons: one order disables the other instance, a where-clause
    vetoes on one path only, or the two orders reach different states."""
    rule_a = rewriter.ruleset[ia.rule_name]
    rule_b = rewriter.ruleset[ib.rule_name]

    def fire(src: Term, inst: InstanceFootprint) -> Optional[Term]:
        rule = rewriter.ruleset[inst.rule_name]
        fp = _relation_fp(rewriter, inst.rule_name)
        for binding in rule.instantiations(src, rewriter.ctx):
            if instance_footprint(fp, binding).key == inst.key:
                return rewriter.apply(src, rule, binding)
        return None

    sa = rewriter.apply(state, rule_a, ia.binding)
    sb = rewriter.apply(state, rule_b, ib.binding)
    if sa is None or sb is None:
        return None   # a vetoed instance is not enabled; nothing to check
    sab = fire(sa, ib)
    sba = fire(sb, ia)
    if sab is None:
        return (f"{ib.rule_name} is disabled (or vetoes) after "
                f"{ia.rule_name}")
    if sba is None:
        return (f"{ia.rule_name} is disabled (or vetoes) after "
                f"{ib.rule_name}")
    if sab != sba:
        return (f"orders diverge: {ia.rule_name};{ib.rule_name} and "
                f"{ib.rule_name};{ia.rule_name} reach different states")
    return None


_FP_CACHE: Dict[int, Dict[str, RuleFootprint]] = {}


def _relation_fp(rewriter: Rewriter, rule_name: str) -> RuleFootprint:
    cache = _FP_CACHE.get(id(rewriter.ruleset))
    if cache is None:
        cache = footprints(rewriter.ruleset)
        _FP_CACHE[id(rewriter.ruleset)] = cache
    return cache[rule_name]


def _sample_states(rewriter: Rewriter, initial: Term,
                   max_states: int) -> List[Term]:
    seen = {initial}
    order = [initial]
    cursor = 0
    while cursor < len(order) and len(seen) < max_states:
        state = order[cursor]
        cursor += 1
        for _, succ in rewriter.successors(state):
            if succ not in seen:
                seen.add(succ)
                order.append(succ)
                if len(seen) >= max_states:
                    break
    return order


def validate_relation(
    rewriter: Rewriter,
    relation: IndependenceRelation,
    initial: Term,
    max_states: int = 150,
    max_checks: int = 4_000,
) -> Tuple[List[Dict[str, str]], int]:
    """Diamond-check every claimed-independent instance pair over a sample
    of reachable states.  Returns ``(violations, checks_performed)`` —
    an empty violation list is the machine-check that the relation (and
    its ambiguity assumptions) holds on the sampled coverage."""
    violations: List[Dict[str, str]] = []
    checks = 0
    for state in _sample_states(rewriter, initial, max_states):
        instances = enumerate_instances(rewriter, relation, state)
        for i, ia in enumerate(instances):
            for ib in instances[i + 1:]:
                if not relation.instances_independent(ia, ib):
                    continue
                if checks >= max_checks:
                    return violations, checks
                checks += 1
                failure = check_commutation(rewriter, state, ia, ib)
                if failure is not None:
                    violations.append({
                        "rule_a": ia.rule_name,
                        "rule_b": ib.rule_name,
                        "key_a": repr(ia.key),
                        "key_b": repr(ib.key),
                        "reason": failure,
                    })
    return violations, checks


def iter_conditional_pairs(
        relation: IndependenceRelation) -> Iterator[Tuple[str, str, str]]:
    """``(rule_a, rule_b, reason)`` for every conditional pair, sorted."""
    for (a, b), verdict in sorted(relation.pairs.items()):
        if verdict["status"] == CONDITIONAL:
            yield a, b, verdict["reason"]
